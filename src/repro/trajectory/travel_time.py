"""Travel-time (ΔT) prediction.

Once a destination is predicted, the recommender needs the remaining
available time ΔT to "allocate the most relevant content for the available
time" (paper Figure 2).  The predictor blends two estimates:

* history: the median duration of the matching route cluster, scaled by the
  fraction of the route not yet driven;
* road network: the planner's travel time from the current position to the
  destination, with a congestion profile by time of day.

The blend weight moves toward the history estimate as the cluster support
grows.  The estimate carries an uncertainty band derived from the cluster's
duration spread, which the scheduler uses to avoid over-filling ΔT.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.errors import PredictionError
from repro.geo import GeoPoint
from repro.roadnet.routing import RoutePlanner
from repro.trajectory.clustering import RouteCluster
from repro.util.timeutils import time_of_day_bucket

#: Default congestion multipliers by time-of-day bucket.
DEFAULT_CONGESTION: Dict[str, float] = {
    "night": 1.0,
    "morning": 1.35,
    "afternoon": 1.2,
    "evening": 1.4,
}


@dataclass(frozen=True)
class TravelTimeEstimate:
    """A ΔT estimate with an uncertainty band."""

    expected_s: float
    low_s: float
    high_s: float
    history_component_s: Optional[float]
    network_component_s: Optional[float]
    history_weight: float

    @property
    def usable_s(self) -> float:
        """Conservative available time the scheduler should plan against.

        Planning against the lower bound keeps the recommended block from
        outlasting the drive, mirroring the paper's goal of fitting content
        to the available time.
        """
        return self.low_s


class TravelTimePredictor:
    """Blends historical and road-network travel time estimates."""

    def __init__(
        self,
        planner: Optional[RoutePlanner] = None,
        *,
        congestion: Optional[Dict[str, float]] = None,
        min_history_support: int = 2,
    ) -> None:
        self._planner = planner
        self._congestion = dict(DEFAULT_CONGESTION)
        if congestion:
            self._congestion.update(congestion)
        self._min_history_support = min_history_support

    def estimate(
        self,
        current_position: GeoPoint,
        destination: GeoPoint,
        *,
        now_s: float,
        cluster: Optional[RouteCluster] = None,
        fraction_completed: Optional[float] = None,
    ) -> TravelTimeEstimate:
        """Estimate the remaining travel time from the current position.

        ``cluster`` is the matched historical route cluster, if any;
        ``fraction_completed`` is the share of that route already driven
        (estimated by the caller from distance along the representative
        route).  At least one of the two evidence sources must be available.
        """
        history_s: Optional[float] = None
        history_spread_s = 0.0
        if cluster is not None and cluster.support >= self._min_history_support:
            remaining_fraction = 1.0 - min(1.0, max(0.0, fraction_completed or 0.0))
            history_s = cluster.median_duration_s * remaining_fraction
            history_spread_s = cluster.duration_stddev_s * max(0.25, remaining_fraction)

        network_s: Optional[float] = None
        if self._planner is not None:
            bucket = time_of_day_bucket(now_s).name
            factor = self._congestion.get(bucket, 1.0)
            try:
                network_s = self._planner.travel_time_s(current_position, destination) * factor
            except Exception:  # noqa: BLE001 - no route is a legitimate outcome
                network_s = None

        if history_s is None and network_s is None:
            raise PredictionError(
                "travel time estimation needs either a route cluster or a road network"
            )

        if history_s is not None and network_s is not None:
            support = cluster.support if cluster is not None else 0
            history_weight = min(0.85, support / (support + 3.0))
            expected = history_weight * history_s + (1.0 - history_weight) * network_s
        elif history_s is not None:
            history_weight = 1.0
            expected = history_s
        else:
            history_weight = 0.0
            expected = float(network_s)

        spread = max(history_spread_s, 0.12 * expected)
        low = max(0.0, expected - spread)
        high = expected + spread
        return TravelTimeEstimate(
            expected_s=expected,
            low_s=low,
            high_s=high,
            history_component_s=history_s,
            network_component_s=network_s,
            history_weight=history_weight,
        )

    def relative_error(self, estimate: TravelTimeEstimate, actual_s: float) -> float:
        """Absolute relative error of an estimate against the realized duration."""
        if actual_s <= 0:
            raise PredictionError("actual_s must be > 0")
        return abs(estimate.expected_s - actual_s) / actual_s

"""Stay-point detection via density-based clustering (DBSCAN).

The paper computes "major staying points on the driving paths ... using a
density based location clustering", citing Ester et al.'s DBSCAN.  This
module implements DBSCAN from scratch over geographic points (distance in
meters via haversine, accelerated by the grid index) and uses it to turn a
user's trip endpoints and dwell locations into named stay points (home,
work, ...) for the mobility model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import TrajectoryError
from repro.geo import GeoPoint, GridIndex
from repro.geo.geodesy import centroid
from repro.trajectory.model import Trajectory

#: Cluster label assigned by DBSCAN to noise points.
NOISE = -1


def dbscan(
    points: Sequence[GeoPoint],
    *,
    eps_m: float = 150.0,
    min_samples: int = 3,
) -> List[int]:
    """Run DBSCAN over geographic points.

    Returns a list of cluster labels aligned with ``points``: labels are
    ``0..k-1`` for the ``k`` discovered clusters and :data:`NOISE` (-1) for
    noise points.
    """
    if eps_m <= 0:
        raise TrajectoryError(f"eps_m must be > 0, got {eps_m}")
    if min_samples < 1:
        raise TrajectoryError(f"min_samples must be >= 1, got {min_samples}")
    n = len(points)
    labels = [None] * n  # type: List[Optional[int]]
    if n == 0:
        return []

    # Index points for fast eps-neighbourhood queries: each region query is
    # a grid-cell lookup (unsorted, distances discarded) instead of a scan
    # over all points.
    index: GridIndex[int] = GridIndex(max(eps_m, 50.0))
    for i, point in enumerate(points):
        index.insert(i, point)

    def region_query(i: int) -> List[int]:
        return index.query_radius_items(points[i], eps_m)

    cluster_id = 0
    for i in range(n):
        if labels[i] is not None:
            continue
        neighbours = region_query(i)
        if len(neighbours) < min_samples:
            labels[i] = NOISE
            continue
        labels[i] = cluster_id
        seeds = [j for j in neighbours if j != i]
        # One membership set maintained across the whole expansion: the seed
        # implementation rebuilt set(seeds) for every core point, an O(n²)
        # inner scan on dense clusters.
        enqueued = set(seeds)
        enqueued.add(i)
        position = 0
        while position < len(seeds):
            j = seeds[position]
            position += 1
            if labels[j] == NOISE:
                labels[j] = cluster_id  # border point
            if labels[j] is not None:
                continue
            labels[j] = cluster_id
            j_neighbours = region_query(j)
            if len(j_neighbours) >= min_samples:
                for k in j_neighbours:
                    if k not in enqueued:
                        seeds.append(k)
                        enqueued.add(k)
        cluster_id += 1
    return [label if label is not None else NOISE for label in labels]


@dataclass(frozen=True)
class StayPoint:
    """A significant location extracted from a user's movement history."""

    stay_point_id: int
    center: GeoPoint
    support: int            # number of observations assigned to the cluster
    total_dwell_s: float    # accumulated dwell time across observations
    label: Optional[str] = None  # optional semantic label ("home", "work")

    def with_label(self, label: str) -> "StayPoint":
        """Return a copy carrying a semantic label."""
        return StayPoint(self.stay_point_id, self.center, self.support, self.total_dwell_s, label)


def detect_stay_points(
    observations: Sequence[GeoPoint],
    *,
    dwell_s: Optional[Sequence[float]] = None,
    eps_m: float = 150.0,
    min_samples: int = 3,
) -> List[StayPoint]:
    """Cluster dwell observations into stay points.

    ``observations`` are locations where the user dwelled (trip endpoints,
    long stops); ``dwell_s`` optionally gives the dwell duration of each
    observation (defaults to 1 second each, making ``total_dwell_s`` a count).
    Returns stay points ordered by decreasing support.
    """
    if dwell_s is not None and len(dwell_s) != len(observations):
        raise TrajectoryError("dwell_s must align with observations")
    labels = dbscan(observations, eps_m=eps_m, min_samples=min_samples)
    clusters: Dict[int, List[int]] = {}
    for index, label in enumerate(labels):
        if label == NOISE:
            continue
        clusters.setdefault(label, []).append(index)
    stay_points: List[StayPoint] = []
    for label, member_indices in clusters.items():
        members = [observations[i] for i in member_indices]
        dwell_total = (
            sum(dwell_s[i] for i in member_indices) if dwell_s is not None else float(len(members))
        )
        stay_points.append(
            StayPoint(
                stay_point_id=label,
                center=centroid(members),
                support=len(members),
                total_dwell_s=dwell_total,
            )
        )
    stay_points.sort(key=lambda sp: sp.support, reverse=True)
    # Re-number so ids reflect importance order.
    return [
        StayPoint(rank, sp.center, sp.support, sp.total_dwell_s, sp.label)
        for rank, sp in enumerate(stay_points)
    ]


def stay_points_from_trips(
    trips: Sequence[Trajectory],
    *,
    eps_m: float = 150.0,
    min_samples: int = 2,
) -> List[StayPoint]:
    """Derive stay points from trip endpoints (origins and destinations)."""
    observations: List[GeoPoint] = []
    for trip in trips:
        observations.append(trip.origin)
        observations.append(trip.destination)
    return detect_stay_points(observations, eps_m=eps_m, min_samples=min_samples)


def nearest_stay_point(
    stay_points: Sequence[StayPoint], position: GeoPoint, *, max_distance_m: float = 500.0
) -> Optional[StayPoint]:
    """The stay point closest to ``position`` within ``max_distance_m``."""
    best: Optional[StayPoint] = None
    best_distance = max_distance_m
    for stay_point in stay_points:
        distance = stay_point.center.distance_m(position)
        if distance <= best_distance:
            best_distance = distance
            best = stay_point
    return best

"""Trajectory simplification (RDP applied to time-stamped trajectories)."""

from __future__ import annotations

from repro.geo.rdp import compression_ratio, rdp_indices
from repro.trajectory.model import Trajectory


def simplify_trajectory(trajectory: Trajectory, tolerance_m: float = 25.0) -> Trajectory:
    """Return a trajectory containing only the RDP-retained samples.

    The simplification keeps the original timestamps and speeds of the
    retained samples so the compact model can still be analysed temporally.
    """
    indices = rdp_indices(trajectory.positions(), tolerance_m)
    points = [trajectory[index] for index in indices]
    return Trajectory(trajectory.user_id, points)


def simplification_ratio(trajectory: Trajectory, tolerance_m: float = 25.0) -> float:
    """Fraction of points removed when simplifying with the given tolerance."""
    simplified = simplify_trajectory(trajectory, tolerance_m)
    return compression_ratio(len(trajectory), len(simplified))

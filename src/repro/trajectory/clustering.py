"""Clustering of a user's historical trips into recurring routes.

The proactive recommender needs to recognise "this looks like the usual
morning commute" from the first minutes of a drive.  We group historical
trips by (origin stay point, destination stay point) and, within a group,
verify geometric coherence with the route-similarity measure.  Each cluster
keeps summary statistics (typical departure time, typical duration and its
spread) that the travel-time predictor uses.

Coherence used to be the last O(trips²)-with-resampling path on the ingest
loop: every pairwise :func:`~repro.trajectory.features.route_similarity`
call re-sampled both polylines.  Clusters now maintain a *running* pairwise
similarity sum over cached per-trip
:class:`~repro.trajectory.features.RouteSignature` objects, so
:meth:`RouteCluster.geometric_coherence` needs no similarity work to read
once the sum is synced (only an O(members) pointer-identity check that the
trip list was not mutated directly), updates in O(members) when a trip
joins via :meth:`RouteCluster.add_trip`, and the per-pair scores stay
bit-identical to the reference measure.  :class:`RouteClusterIndex` additionally replaces
the linear (origin, destination) scan of :func:`find_cluster` with a dict
lookup for callers that resolve clusters per trip.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TrajectoryError
from repro.trajectory.features import route_signature, route_similarity_signatures
from repro.trajectory.model import Trajectory
from repro.trajectory.staypoints import StayPoint, nearest_stay_point
from repro.util.timeutils import SECONDS_PER_DAY


@dataclass
class RouteCluster:
    """A group of similar historical trips between two stay points.

    ``trips`` stays a plain public list for compatibility, but callers on
    hot paths should append through :meth:`add_trip`, which keeps the
    running pairwise-similarity sum maintained (O(members) per join once
    coherence is being consumed, a plain append before that).  Trips
    appended directly are folded in lazily on the next
    :meth:`geometric_coherence` read.
    """

    cluster_id: int
    origin_stay_point: int
    destination_stay_point: int
    trips: List[Trajectory] = field(default_factory=list)
    #: Running sum of pairwise route similarities over the trips already
    #: folded in (see ``_synced_trips``); derived-only state, never passed
    #: to the constructor and excluded from equality/repr.
    _similarity_sum: float = field(default=0.0, init=False, compare=False, repr=False)
    #: The trip *objects* folded into ``_similarity_sum``, in list order, so
    #: direct ``trips`` mutations are detected (by identity, immune to
    #: ``id()`` reuse after garbage collection) and re-synced lazily.
    _synced_trips: List[Trajectory] = field(
        default_factory=list, init=False, compare=False, repr=False
    )
    #: Set on the first ``geometric_coherence`` read.  Until then joins stay
    #: plain appends (pure ingest pays nothing for a sum nobody reads);
    #: afterwards ``add_trip`` folds each join eagerly so reads are O(1).
    _sum_consumed: bool = field(default=False, init=False, compare=False, repr=False)

    @property
    def support(self) -> int:
        """Number of trips in the cluster."""
        return len(self.trips)

    @property
    def representative(self) -> Trajectory:
        """The trip whose duration is closest to the cluster median."""
        if not self.trips:
            raise TrajectoryError("route cluster has no trips")
        median = self.median_duration_s
        return min(self.trips, key=lambda trip: abs(trip.duration_s - median))

    @property
    def median_duration_s(self) -> float:
        """Median trip duration."""
        return statistics.median(trip.duration_s for trip in self.trips)

    @property
    def duration_stddev_s(self) -> float:
        """Standard deviation of trip duration (0 for fewer than 2 trips)."""
        if len(self.trips) < 2:
            return 0.0
        return statistics.pstdev(trip.duration_s for trip in self.trips)

    @property
    def median_length_m(self) -> float:
        """Median trip length."""
        return statistics.median(trip.length_m for trip in self.trips)

    @property
    def typical_departure_s(self) -> float:
        """Circular mean of departure second-of-day across the trips."""
        angles = [
            2.0 * math.pi * (trip.start.timestamp_s % SECONDS_PER_DAY) / SECONDS_PER_DAY
            for trip in self.trips
        ]
        sin_sum = sum(math.sin(angle) for angle in angles)
        cos_sum = sum(math.cos(angle) for angle in angles)
        if sin_sum == 0.0 and cos_sum == 0.0:
            return self.trips[0].start.timestamp_s % SECONDS_PER_DAY
        mean_angle = math.atan2(sin_sum, cos_sum) % (2.0 * math.pi)
        return mean_angle / (2.0 * math.pi) * SECONDS_PER_DAY

    @property
    def time_of_day_histogram(self) -> Dict[str, int]:
        """Trips per time-of-day bucket."""
        histogram: Dict[str, int] = {}
        for trip in self.trips:
            bucket = trip.start_time_of_day
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return histogram

    def add_trip(self, trip: Trajectory) -> None:
        """Append a trip, keeping the running similarity sum maintained.

        Until the first :meth:`geometric_coherence` read this is a plain
        append — pure ingest never pays for a sum nobody consumes.  Once
        coherence is being read, each join folds the new trip eagerly: one
        cached signature lookup plus one flattened similarity per existing
        member (O(members)), so reads between joins stay O(1) — never the
        O(members²) recompute the seed performed per read.
        """
        if not self._sum_consumed:
            self.trips.append(trip)
            return
        self._sync_similarity()
        signature = route_signature(trip)
        total = self._similarity_sum
        for member in self.trips:
            total += route_similarity_signatures(route_signature(member), signature)
        self._similarity_sum = total
        self.trips.append(trip)
        self._synced_trips.append(trip)

    def _sync_similarity(self) -> None:
        """Fold trips appended directly to ``trips`` into the running sum.

        The synced prefix is identified by trip identity (comparing the
        retained trip objects themselves, not ``id()`` values that could be
        reused after garbage collection); any other mutation (removal,
        reorder, replacement) resets the sum and re-accumulates — still over
        cached signatures, so a full resync is O(pairs) flattened loops, not
        O(pairs) polyline resamples.
        """
        trips = self.trips
        synced = self._synced_trips
        prefix_intact = len(synced) <= len(trips) and all(
            synced_trip is trip for synced_trip, trip in zip(synced, trips)
        )
        if not prefix_intact:
            self._similarity_sum = 0.0
            self._synced_trips = synced = []
        for index in range(len(synced), len(trips)):
            signature = route_signature(trips[index])
            total = self._similarity_sum
            for member in trips[:index]:
                total += route_similarity_signatures(route_signature(member), signature)
            self._similarity_sum = total
            synced.append(trips[index])

    def copy(self) -> "RouteCluster":
        """A snapshot-grade copy that carries the running similarity state."""
        clone = RouteCluster(
            cluster_id=self.cluster_id,
            origin_stay_point=self.origin_stay_point,
            destination_stay_point=self.destination_stay_point,
            trips=list(self.trips),
        )
        clone._similarity_sum = self._similarity_sum
        clone._synced_trips = list(self._synced_trips)
        clone._sum_consumed = self._sum_consumed
        return clone

    def geometric_coherence(self) -> float:
        """Mean pairwise route similarity of the trips (1 trip → 1.0).

        Reads the maintained sum: no similarity work when every trip joined
        through :meth:`add_trip` since the last read (the read still pays an
        O(members) pointer-identity validation of the trip list); trips
        appended before the first read (or directly to ``trips``) are
        folded in lazily over the shared signature cache.  Per-pair scores
        are bit-identical to the reference :func:`route_similarity` loop
        the seed computed here, only the summation order differs.
        """
        self._sum_consumed = True
        if len(self.trips) < 2:
            return 1.0
        self._sync_similarity()
        pairs = len(self.trips) * (len(self.trips) - 1) // 2
        return self._similarity_sum / pairs


def cluster_trips(
    trips: Sequence[Trajectory],
    stay_points: Sequence[StayPoint],
    *,
    max_endpoint_distance_m: float = 500.0,
    min_support: int = 1,
) -> List[RouteCluster]:
    """Group trips by their (origin, destination) stay-point pair.

    Trips whose endpoints do not match any stay point are dropped (they are
    one-off journeys the proactive model cannot learn from yet).  Clusters
    are returned ordered by decreasing support.
    """
    if min_support < 1:
        raise TrajectoryError("min_support must be >= 1")
    groups: Dict[Tuple[int, int], List[Trajectory]] = {}
    for trip in trips:
        origin_sp = nearest_stay_point(
            stay_points, trip.origin, max_distance_m=max_endpoint_distance_m
        )
        destination_sp = nearest_stay_point(
            stay_points, trip.destination, max_distance_m=max_endpoint_distance_m
        )
        if origin_sp is None or destination_sp is None:
            continue
        if origin_sp.stay_point_id == destination_sp.stay_point_id:
            continue
        key = (origin_sp.stay_point_id, destination_sp.stay_point_id)
        groups.setdefault(key, []).append(trip)

    clusters: List[RouteCluster] = []
    for (origin_id, destination_id), members in groups.items():
        if len(members) < min_support:
            continue
        clusters.append(
            RouteCluster(
                cluster_id=len(clusters),
                origin_stay_point=origin_id,
                destination_stay_point=destination_id,
                trips=list(members),
            )
        )
    clusters.sort(key=lambda cluster: cluster.support, reverse=True)
    for rank, cluster in enumerate(clusters):
        cluster.cluster_id = rank
    return clusters


class RouteClusterIndex:
    """Secondary index mapping (origin, destination) stay-point pairs to clusters.

    Callers resolving a cluster per trip (streaming ingest, context
    building) used to linear-scan the cluster list per lookup; this keeps a
    dict keyed by the endpoint pair instead.  First registration wins for a
    duplicate pair, matching :func:`find_cluster`'s first-match scan.
    """

    __slots__ = ("_by_endpoints",)

    def __init__(self, clusters: Iterable[RouteCluster] = ()) -> None:
        self._by_endpoints: Dict[Tuple[int, int], RouteCluster] = {}
        for cluster in clusters:
            self.add(cluster)

    def add(self, cluster: RouteCluster) -> None:
        """Register a cluster under its endpoint pair (first add wins)."""
        key = (cluster.origin_stay_point, cluster.destination_stay_point)
        self._by_endpoints.setdefault(key, cluster)

    def find(
        self, origin_stay_point: int, destination_stay_point: int
    ) -> Optional[RouteCluster]:
        """The cluster for an endpoint pair, or None."""
        return self._by_endpoints.get((origin_stay_point, destination_stay_point))

    def __len__(self) -> int:
        return len(self._by_endpoints)


def find_cluster(
    clusters: Sequence[RouteCluster],
    origin_stay_point: int,
    destination_stay_point: int,
    *,
    index: Optional[RouteClusterIndex] = None,
) -> Optional[RouteCluster]:
    """Look up the cluster for an (origin, destination) stay-point pair.

    With an ``index`` (a :class:`RouteClusterIndex` built over the same
    clusters) the lookup is O(1); without one it falls back to the linear
    reference scan.
    """
    if index is not None:
        return index.find(origin_stay_point, destination_stay_point)
    for cluster in clusters:
        if (
            cluster.origin_stay_point == origin_stay_point
            and cluster.destination_stay_point == destination_stay_point
        ):
            return cluster
    return None

"""Clustering of a user's historical trips into recurring routes.

The proactive recommender needs to recognise "this looks like the usual
morning commute" from the first minutes of a drive.  We group historical
trips by (origin stay point, destination stay point) and, within a group,
verify geometric coherence with the route-similarity measure.  Each cluster
keeps summary statistics (typical departure time, typical duration and its
spread) that the travel-time predictor uses.
"""

from __future__ import annotations

import math
import statistics
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.trajectory.features import TrajectoryFeatures, route_similarity
from repro.trajectory.model import Trajectory
from repro.trajectory.staypoints import StayPoint, nearest_stay_point
from repro.util.timeutils import SECONDS_PER_DAY


@dataclass
class RouteCluster:
    """A group of similar historical trips between two stay points."""

    cluster_id: int
    origin_stay_point: int
    destination_stay_point: int
    trips: List[Trajectory] = field(default_factory=list)

    @property
    def support(self) -> int:
        """Number of trips in the cluster."""
        return len(self.trips)

    @property
    def representative(self) -> Trajectory:
        """The trip whose duration is closest to the cluster median."""
        if not self.trips:
            raise TrajectoryError("route cluster has no trips")
        median = self.median_duration_s
        return min(self.trips, key=lambda trip: abs(trip.duration_s - median))

    @property
    def median_duration_s(self) -> float:
        """Median trip duration."""
        return statistics.median(trip.duration_s for trip in self.trips)

    @property
    def duration_stddev_s(self) -> float:
        """Standard deviation of trip duration (0 for fewer than 2 trips)."""
        if len(self.trips) < 2:
            return 0.0
        return statistics.pstdev(trip.duration_s for trip in self.trips)

    @property
    def median_length_m(self) -> float:
        """Median trip length."""
        return statistics.median(trip.length_m for trip in self.trips)

    @property
    def typical_departure_s(self) -> float:
        """Circular mean of departure second-of-day across the trips."""
        angles = [
            2.0 * math.pi * (trip.start.timestamp_s % SECONDS_PER_DAY) / SECONDS_PER_DAY
            for trip in self.trips
        ]
        sin_sum = sum(math.sin(angle) for angle in angles)
        cos_sum = sum(math.cos(angle) for angle in angles)
        if sin_sum == 0.0 and cos_sum == 0.0:
            return self.trips[0].start.timestamp_s % SECONDS_PER_DAY
        mean_angle = math.atan2(sin_sum, cos_sum) % (2.0 * math.pi)
        return mean_angle / (2.0 * math.pi) * SECONDS_PER_DAY

    @property
    def time_of_day_histogram(self) -> Dict[str, int]:
        """Trips per time-of-day bucket."""
        histogram: Dict[str, int] = {}
        for trip in self.trips:
            bucket = trip.start_time_of_day
            histogram[bucket] = histogram.get(bucket, 0) + 1
        return histogram

    def geometric_coherence(self) -> float:
        """Mean pairwise route similarity of the trips (1 trip → 1.0)."""
        if len(self.trips) < 2:
            return 1.0
        total = 0.0
        pairs = 0
        for index, trip_a in enumerate(self.trips):
            for trip_b in self.trips[index + 1 :]:
                total += route_similarity(trip_a, trip_b)
                pairs += 1
        return total / pairs if pairs else 1.0


def cluster_trips(
    trips: Sequence[Trajectory],
    stay_points: Sequence[StayPoint],
    *,
    max_endpoint_distance_m: float = 500.0,
    min_support: int = 1,
) -> List[RouteCluster]:
    """Group trips by their (origin, destination) stay-point pair.

    Trips whose endpoints do not match any stay point are dropped (they are
    one-off journeys the proactive model cannot learn from yet).  Clusters
    are returned ordered by decreasing support.
    """
    if min_support < 1:
        raise TrajectoryError("min_support must be >= 1")
    groups: Dict[Tuple[int, int], List[Trajectory]] = {}
    for trip in trips:
        origin_sp = nearest_stay_point(
            stay_points, trip.origin, max_distance_m=max_endpoint_distance_m
        )
        destination_sp = nearest_stay_point(
            stay_points, trip.destination, max_distance_m=max_endpoint_distance_m
        )
        if origin_sp is None or destination_sp is None:
            continue
        if origin_sp.stay_point_id == destination_sp.stay_point_id:
            continue
        key = (origin_sp.stay_point_id, destination_sp.stay_point_id)
        groups.setdefault(key, []).append(trip)

    clusters: List[RouteCluster] = []
    for (origin_id, destination_id), members in groups.items():
        if len(members) < min_support:
            continue
        clusters.append(
            RouteCluster(
                cluster_id=len(clusters),
                origin_stay_point=origin_id,
                destination_stay_point=destination_id,
                trips=list(members),
            )
        )
    clusters.sort(key=lambda cluster: cluster.support, reverse=True)
    for rank, cluster in enumerate(clusters):
        cluster.cluster_id = rank
    return clusters


def find_cluster(
    clusters: Sequence[RouteCluster],
    origin_stay_point: int,
    destination_stay_point: int,
) -> Optional[RouteCluster]:
    """Look up the cluster for an (origin, destination) stay-point pair."""
    for cluster in clusters:
        if (
            cluster.origin_stay_point == origin_stay_point
            and cluster.destination_stay_point == destination_stay_point
        ):
            return cluster
    return None

"""Destination prediction from a partially observed drive.

When the listener's car starts moving, PPHCR must predict where she is going
so it can estimate the available time ΔT and pick geographically relevant
content (paper Figure 2).  The predictor combines three evidence sources:

* a prior from historical visit frequency per destination stay point,
* a time-of-day factor (morning drives usually go to work, evening ones home),
* a direction/progress likelihood comparing the observed partial drive with
  the representative historical route toward each candidate destination.

The result is a ranked list of candidate destinations with normalized
probabilities; the proactive engine only acts when the top probability
clears a confidence threshold.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import PredictionError
from repro.geo import GeoPoint
from repro.geo.geodesy import haversine_m, initial_bearing_deg
from repro.trajectory.clustering import RouteCluster
from repro.trajectory.model import Trajectory
from repro.trajectory.staypoints import StayPoint, nearest_stay_point
from repro.util.timeutils import SECONDS_PER_DAY, time_of_day_bucket


@dataclass(frozen=True)
class DestinationPrediction:
    """One candidate destination with its probability."""

    stay_point_id: int
    center: GeoPoint
    probability: float
    expected_remaining_distance_m: float
    supporting_trips: int


class DestinationPredictor:
    """Predicts the destination of an in-progress drive."""

    def __init__(
        self,
        stay_points: Sequence[StayPoint],
        clusters: Sequence[RouteCluster],
        *,
        time_of_day_weight: float = 1.0,
        direction_weight: float = 2.0,
        smoothing: float = 0.5,
    ) -> None:
        if not stay_points:
            raise PredictionError("destination prediction requires at least one stay point")
        self._stay_points = {sp.stay_point_id: sp for sp in stay_points}
        self._clusters = list(clusters)
        self._time_of_day_weight = time_of_day_weight
        self._direction_weight = direction_weight
        self._smoothing = smoothing

    def predict(
        self,
        partial_drive: Trajectory,
        *,
        max_candidates: int = 5,
    ) -> List[DestinationPrediction]:
        """Rank candidate destinations for a partially observed drive."""
        if len(partial_drive) < 2:
            raise PredictionError("partial drive must contain at least two points")
        origin_sp = nearest_stay_point(
            list(self._stay_points.values()), partial_drive.origin, max_distance_m=800.0
        )
        current = partial_drive.destination
        observed_bearing = initial_bearing_deg(partial_drive.origin, current)
        bucket = time_of_day_bucket(partial_drive.start.timestamp_s).name

        scores: Dict[int, float] = {}
        supports: Dict[int, int] = {}
        for cluster in self._clusters:
            if origin_sp is not None and cluster.origin_stay_point != origin_sp.stay_point_id:
                continue
            destination_id = cluster.destination_stay_point
            destination = self._stay_points.get(destination_id)
            if destination is None:
                continue
            prior = cluster.support + self._smoothing
            tod_factor = self._time_of_day_factor(cluster, bucket)
            direction_factor = self._direction_factor(
                partial_drive.origin, current, observed_bearing, destination.center
            )
            score = (
                prior
                * (tod_factor ** self._time_of_day_weight)
                * (direction_factor ** self._direction_weight)
            )
            scores[destination_id] = scores.get(destination_id, 0.0) + score
            supports[destination_id] = supports.get(destination_id, 0) + cluster.support

        if not scores:
            # Fall back to a pure spatial heuristic over all stay points.
            for stay_point in self._stay_points.values():
                if origin_sp is not None and stay_point.stay_point_id == origin_sp.stay_point_id:
                    continue
                direction_factor = self._direction_factor(
                    partial_drive.origin, current, observed_bearing, stay_point.center
                )
                scores[stay_point.stay_point_id] = (stay_point.support + self._smoothing) * (
                    direction_factor ** self._direction_weight
                )
                supports[stay_point.stay_point_id] = 0

        total = sum(scores.values())
        if total <= 0:
            raise PredictionError("no destination candidate received positive score")
        predictions = [
            DestinationPrediction(
                stay_point_id=destination_id,
                center=self._stay_points[destination_id].center,
                probability=score / total,
                expected_remaining_distance_m=haversine_m(
                    current, self._stay_points[destination_id].center
                ),
                supporting_trips=supports.get(destination_id, 0),
            )
            for destination_id, score in scores.items()
        ]
        predictions.sort(key=lambda prediction: prediction.probability, reverse=True)
        return predictions[:max_candidates]

    def most_likely(self, partial_drive: Trajectory) -> DestinationPrediction:
        """The single most likely destination."""
        return self.predict(partial_drive, max_candidates=1)[0]

    # Internal -------------------------------------------------------------

    @staticmethod
    def _time_of_day_factor(cluster: RouteCluster, bucket: str) -> float:
        histogram = cluster.time_of_day_histogram
        total = sum(histogram.values())
        if total == 0:
            return 1.0
        share = histogram.get(bucket, 0) / total
        # Keep the factor strictly positive so a new time of day is not ruled out.
        return 0.15 + 0.85 * share

    @staticmethod
    def _direction_factor(
        origin: GeoPoint, current: GeoPoint, observed_bearing: float, candidate: GeoPoint
    ) -> float:
        """How consistent the observed heading and progress are with the candidate."""
        travelled = haversine_m(origin, current)
        if travelled < 30.0:
            return 0.5  # too early to say anything about direction
        candidate_bearing = initial_bearing_deg(origin, candidate)
        angle = abs((candidate_bearing - observed_bearing + 180.0) % 360.0 - 180.0)
        angular = max(0.0, math.cos(math.radians(angle)))
        # Progress consistency: moving toward the candidate should not overshoot it.
        total_distance = haversine_m(origin, candidate)
        if total_distance < 1.0:
            progress = 0.0
        else:
            progress = min(1.5, travelled / total_distance)
        overshoot_penalty = 1.0 if progress <= 1.0 else max(0.0, 1.5 - progress) / 0.5
        return 0.05 + 0.95 * angular * overshoot_penalty

"""Trajectory data model: time-stamped point sequences and trip splitting."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.errors import TrajectoryError
from repro.geo import BoundingBox, GeoPoint, Polyline
from repro.geo.geodesy import haversine_m
from repro.spatialdb.tracking_store import GpsFix
from repro.util.timeutils import time_of_day_bucket


@dataclass(frozen=True)
class TrajectoryPoint:
    """A time-stamped position sample inside a trajectory."""

    timestamp_s: float
    position: GeoPoint
    speed_mps: float = 0.0


class Trajectory:
    """A time-ordered sequence of position samples for one user.

    Unlike a :class:`~repro.geo.polyline.Polyline`, a trajectory carries
    time, so speed profiles and stop detection are meaningful.
    """

    def __init__(self, user_id: str, points: Sequence[TrajectoryPoint]) -> None:
        if not points:
            raise TrajectoryError("a trajectory requires at least one point")
        for earlier, later in zip(points, points[1:]):
            if later.timestamp_s < earlier.timestamp_s:
                raise TrajectoryError("trajectory points must be time-ordered")
        self._user_id = user_id
        self._points: List[TrajectoryPoint] = list(points)

    @classmethod
    def from_fixes(cls, user_id: str, fixes: Iterable[GpsFix]) -> "Trajectory":
        """Build a trajectory from tracking-store fixes."""
        points = [
            TrajectoryPoint(fix.timestamp_s, fix.position, fix.speed_mps) for fix in fixes
        ]
        return cls(user_id, points)

    @property
    def user_id(self) -> str:
        """Owner of the trajectory."""
        return self._user_id

    @property
    def points(self) -> List[TrajectoryPoint]:
        """Copy of the sample list."""
        return list(self._points)

    def __len__(self) -> int:
        return len(self._points)

    def __getitem__(self, index: int) -> TrajectoryPoint:
        return self._points[index]

    @property
    def start(self) -> TrajectoryPoint:
        """First sample."""
        return self._points[0]

    @property
    def end(self) -> TrajectoryPoint:
        """Last sample."""
        return self._points[-1]

    @property
    def origin(self) -> GeoPoint:
        """First position."""
        return self._points[0].position

    @property
    def destination(self) -> GeoPoint:
        """Last position."""
        return self._points[-1].position

    @property
    def duration_s(self) -> float:
        """Elapsed time from first to last sample."""
        return self._points[-1].timestamp_s - self._points[0].timestamp_s

    @property
    def length_m(self) -> float:
        """Path length over all samples."""
        total = 0.0
        for earlier, later in zip(self._points, self._points[1:]):
            total += haversine_m(earlier.position, later.position)
        return total

    @property
    def mean_speed_mps(self) -> float:
        """Length divided by duration (0 if the trajectory has no duration)."""
        duration = self.duration_s
        if duration <= 0:
            return 0.0
        return self.length_m / duration

    @property
    def start_time_of_day(self) -> str:
        """Name of the time-of-day bucket in which the trajectory starts."""
        return time_of_day_bucket(self._points[0].timestamp_s).name

    def positions(self) -> List[GeoPoint]:
        """All positions in order."""
        return [point.position for point in self._points]

    def to_polyline(self) -> Polyline:
        """Geometry of the trajectory."""
        return Polyline(self.positions())

    def bounding_box(self) -> BoundingBox:
        """Smallest box covering the trajectory."""
        return BoundingBox.from_points(self.positions())

    def slice_time(self, start_s: float, end_s: float) -> "Trajectory":
        """Sub-trajectory restricted to ``[start_s, end_s)``."""
        points = [p for p in self._points if start_s <= p.timestamp_s < end_s]
        if not points:
            raise TrajectoryError(
                f"time slice [{start_s}, {end_s}) contains no trajectory points"
            )
        return Trajectory(self._user_id, points)

    def displacement_m(self) -> float:
        """Straight-line distance between origin and destination."""
        return haversine_m(self.origin, self.destination)

    def speeds_mps(self) -> List[float]:
        """Per-segment speeds derived from consecutive samples."""
        speeds: List[float] = []
        for earlier, later in zip(self._points, self._points[1:]):
            dt = later.timestamp_s - earlier.timestamp_s
            if dt <= 0:
                speeds.append(0.0)
            else:
                speeds.append(haversine_m(earlier.position, later.position) / dt)
        return speeds


def split_into_trips(
    trajectory: Trajectory,
    *,
    stop_duration_s: float = 300.0,
    stop_radius_m: float = 75.0,
    max_gap_s: float = 300.0,
    min_trip_points: int = 5,
    min_trip_length_m: float = 400.0,
) -> List[Trajectory]:
    """Split a long trace into individual trips separated by stops.

    A trip boundary occurs when either

    * the device goes silent for more than ``max_gap_s`` (the phone stops
      reporting because the car is parked), or
    * the user dwells for at least ``stop_duration_s`` within
      ``stop_radius_m`` of one spot while fixes keep arriving.

    Trips shorter than ``min_trip_points`` samples or ``min_trip_length_m``
    meters are discarded as noise.
    """
    points = trajectory.points
    if len(points) < 2:
        return []
    trips: List[Trajectory] = []
    current: List[TrajectoryPoint] = [points[0]]
    index = 1
    while index < len(points):
        point = points[index]
        anchor = current[-1]
        # Boundary 1: a long reporting gap means the drive ended.
        if point.timestamp_s - anchor.timestamp_s > max_gap_s:
            _maybe_append_trip(trips, trajectory.user_id, current, min_trip_points, min_trip_length_m)
            current = [point]
            index += 1
            continue
        # Boundary 2: a dwell period while fixes keep arriving.
        lookahead = index
        while (
            lookahead < len(points)
            and haversine_m(anchor.position, points[lookahead].position) <= stop_radius_m
        ):
            lookahead += 1
        stopped_duration = (
            points[lookahead - 1].timestamp_s - anchor.timestamp_s if lookahead > index else 0.0
        )
        if stopped_duration >= stop_duration_s:
            # Close the current trip at the anchor and skip the stop.
            _maybe_append_trip(trips, trajectory.user_id, current, min_trip_points, min_trip_length_m)
            current = [points[lookahead - 1]]
            index = lookahead
        else:
            current.append(point)
            index += 1
    _maybe_append_trip(trips, trajectory.user_id, current, min_trip_points, min_trip_length_m)
    return trips


def _maybe_append_trip(
    trips: List[Trajectory],
    user_id: str,
    points: List[TrajectoryPoint],
    min_trip_points: int,
    min_trip_length_m: float,
) -> None:
    if len(points) < min_trip_points:
        return
    candidate = Trajectory(user_id, points)
    if candidate.length_m < min_trip_length_m:
        return
    trips.append(candidate)

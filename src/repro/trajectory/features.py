"""Compact trajectory features.

This is the paper's "compact, discrete model which describes destination,
trajectory, speed, frequency, time of the day and complexity": for every
trip we extract a small feature record, and for a user's trip history we
aggregate per-destination frequencies.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.geo.geodesy import haversine_m, initial_bearing_deg
from repro.trajectory.model import Trajectory
from repro.trajectory.simplify import simplify_trajectory
from repro.trajectory.staypoints import StayPoint, nearest_stay_point


@dataclass(frozen=True)
class TrajectoryFeatures:
    """Per-trip compact feature record."""

    user_id: str
    origin: GeoPoint
    destination: GeoPoint
    start_time_s: float
    duration_s: float
    length_m: float
    mean_speed_mps: float
    max_speed_mps: float
    time_of_day: str
    complexity: float            # [0, 1): turning-angle density of the simplified path
    simplified_points: int
    raw_points: int
    origin_stay_point: Optional[int] = None
    destination_stay_point: Optional[int] = None

    @property
    def compression_ratio(self) -> float:
        """Fraction of raw points removed by RDP simplification."""
        if self.raw_points <= 0:
            return 0.0
        return 1.0 - self.simplified_points / self.raw_points


def trajectory_complexity(trajectory: Trajectory, *, tolerance_m: float = 25.0) -> float:
    """Complexity of a trajectory in [0, 1).

    The paper computes complexity by "analysing the trajectory simplified
    using the Ramer-Douglas-Peucker algorithm".  We follow the same recipe:
    simplify, then accumulate the absolute turning angles of the simplified
    polyline per kilometre and squash to [0, 1).  A straight motorway drive
    scores near 0, a dense old-town loop scores near 1.
    """
    simplified = simplify_trajectory(trajectory, tolerance_m)
    points = simplified.positions()
    if len(points) < 3 or trajectory.length_m <= 0:
        return 0.0
    total_turning_deg = 0.0
    for a, b, c in zip(points, points[1:], points[2:]):
        bearing_in = initial_bearing_deg(a, b)
        bearing_out = initial_bearing_deg(b, c)
        turn = abs((bearing_out - bearing_in + 180.0) % 360.0 - 180.0)
        total_turning_deg += turn
    turning_per_km = total_turning_deg / (trajectory.length_m / 1000.0)
    # 180 deg/km of accumulated turning maps to complexity 0.5.
    return turning_per_km / (180.0 + turning_per_km)


def extract_features(
    trajectory: Trajectory,
    *,
    stay_points: Optional[Sequence[StayPoint]] = None,
    tolerance_m: float = 25.0,
) -> TrajectoryFeatures:
    """Extract the compact per-trip feature record."""
    if len(trajectory) < 2:
        raise TrajectoryError("feature extraction requires at least two points")
    simplified = simplify_trajectory(trajectory, tolerance_m)
    speeds = trajectory.speeds_mps()
    origin_sp = destination_sp = None
    if stay_points:
        origin_match = nearest_stay_point(stay_points, trajectory.origin)
        destination_match = nearest_stay_point(stay_points, trajectory.destination)
        origin_sp = origin_match.stay_point_id if origin_match else None
        destination_sp = destination_match.stay_point_id if destination_match else None
    return TrajectoryFeatures(
        user_id=trajectory.user_id,
        origin=trajectory.origin,
        destination=trajectory.destination,
        start_time_s=trajectory.start.timestamp_s,
        duration_s=trajectory.duration_s,
        length_m=trajectory.length_m,
        mean_speed_mps=trajectory.mean_speed_mps,
        max_speed_mps=max(speeds) if speeds else 0.0,
        time_of_day=trajectory.start_time_of_day,
        complexity=trajectory_complexity(trajectory, tolerance_m=tolerance_m),
        simplified_points=len(simplified),
        raw_points=len(trajectory),
        origin_stay_point=origin_sp,
        destination_stay_point=destination_sp,
    )


@dataclass(frozen=True)
class DestinationFrequency:
    """How often a user travels to a particular stay point."""

    stay_point_id: int
    count: int
    share: float
    by_time_of_day: Dict[str, int]


def destination_frequencies(
    features: Sequence[TrajectoryFeatures],
) -> List[DestinationFrequency]:
    """Aggregate trip features into per-destination visit frequencies."""
    with_destination = [f for f in features if f.destination_stay_point is not None]
    if not with_destination:
        return []
    counts: Counter = Counter(f.destination_stay_point for f in with_destination)
    total = sum(counts.values())
    result: List[DestinationFrequency] = []
    for stay_point_id, count in counts.most_common():
        by_tod: Dict[str, int] = {}
        for feature in with_destination:
            if feature.destination_stay_point == stay_point_id:
                by_tod[feature.time_of_day] = by_tod.get(feature.time_of_day, 0) + 1
        result.append(
            DestinationFrequency(
                stay_point_id=stay_point_id,
                count=count,
                share=count / total,
                by_time_of_day=by_tod,
            )
        )
    return result


def route_similarity(a: Trajectory, b: Trajectory, *, samples: int = 20) -> float:
    """Similarity in [0, 1] between two trips' geometries.

    Both geometries are resampled to ``samples`` points by arc length and
    compared point-wise; the mean distance is converted to a similarity via
    ``1 / (1 + mean_km)``.  Good enough to group a commuter's repeated
    home-to-work drives without a full Fréchet computation.
    """
    if samples < 2:
        raise TrajectoryError("samples must be >= 2")
    line_a = a.to_polyline()
    line_b = b.to_polyline()
    if line_a.length_m == 0.0 or line_b.length_m == 0.0:
        return 0.0
    total = 0.0
    for index in range(samples):
        fraction = index / (samples - 1)
        pa = line_a.point_at_distance(fraction * line_a.length_m)
        pb = line_b.point_at_distance(fraction * line_b.length_m)
        total += haversine_m(pa, pb)
    mean_km = (total / samples) / 1000.0
    return 1.0 / (1.0 + mean_km)

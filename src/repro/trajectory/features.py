"""Compact trajectory features.

This is the paper's "compact, discrete model which describes destination,
trajectory, speed, frequency, time of the day and complexity": for every
trip we extract a small feature record, and for a user's trip history we
aggregate per-destination frequencies.
"""

from __future__ import annotations

import math
import weakref
from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import TrajectoryError
from repro.geo import GeoPoint
from repro.geo.geodesy import EARTH_RADIUS_M, haversine_m, initial_bearing_deg
from repro.trajectory.model import Trajectory
from repro.trajectory.simplify import simplify_trajectory
from repro.trajectory.staypoints import StayPoint, nearest_stay_point

#: Arc-length sample count shared by the reference and signature similarity
#: paths (and by the signature cache's default key).
ROUTE_SIMILARITY_SAMPLES = 20


@dataclass(frozen=True)
class TrajectoryFeatures:
    """Per-trip compact feature record."""

    user_id: str
    origin: GeoPoint
    destination: GeoPoint
    start_time_s: float
    duration_s: float
    length_m: float
    mean_speed_mps: float
    max_speed_mps: float
    time_of_day: str
    complexity: float            # [0, 1): turning-angle density of the simplified path
    simplified_points: int
    raw_points: int
    origin_stay_point: Optional[int] = None
    destination_stay_point: Optional[int] = None

    @property
    def compression_ratio(self) -> float:
        """Fraction of raw points removed by RDP simplification."""
        if self.raw_points <= 0:
            return 0.0
        return 1.0 - self.simplified_points / self.raw_points


def trajectory_complexity(trajectory: Trajectory, *, tolerance_m: float = 25.0) -> float:
    """Complexity of a trajectory in [0, 1).

    The paper computes complexity by "analysing the trajectory simplified
    using the Ramer-Douglas-Peucker algorithm".  We follow the same recipe:
    simplify, then accumulate the absolute turning angles of the simplified
    polyline per kilometre and squash to [0, 1).  A straight motorway drive
    scores near 0, a dense old-town loop scores near 1.
    """
    simplified = simplify_trajectory(trajectory, tolerance_m)
    points = simplified.positions()
    if len(points) < 3 or trajectory.length_m <= 0:
        return 0.0
    total_turning_deg = 0.0
    for a, b, c in zip(points, points[1:], points[2:]):
        bearing_in = initial_bearing_deg(a, b)
        bearing_out = initial_bearing_deg(b, c)
        turn = abs((bearing_out - bearing_in + 180.0) % 360.0 - 180.0)
        total_turning_deg += turn
    turning_per_km = total_turning_deg / (trajectory.length_m / 1000.0)
    # 180 deg/km of accumulated turning maps to complexity 0.5.
    return turning_per_km / (180.0 + turning_per_km)


def extract_features(
    trajectory: Trajectory,
    *,
    stay_points: Optional[Sequence[StayPoint]] = None,
    tolerance_m: float = 25.0,
) -> TrajectoryFeatures:
    """Extract the compact per-trip feature record."""
    if len(trajectory) < 2:
        raise TrajectoryError("feature extraction requires at least two points")
    simplified = simplify_trajectory(trajectory, tolerance_m)
    speeds = trajectory.speeds_mps()
    origin_sp = destination_sp = None
    if stay_points:
        origin_match = nearest_stay_point(stay_points, trajectory.origin)
        destination_match = nearest_stay_point(stay_points, trajectory.destination)
        origin_sp = origin_match.stay_point_id if origin_match else None
        destination_sp = destination_match.stay_point_id if destination_match else None
    return TrajectoryFeatures(
        user_id=trajectory.user_id,
        origin=trajectory.origin,
        destination=trajectory.destination,
        start_time_s=trajectory.start.timestamp_s,
        duration_s=trajectory.duration_s,
        length_m=trajectory.length_m,
        mean_speed_mps=trajectory.mean_speed_mps,
        max_speed_mps=max(speeds) if speeds else 0.0,
        time_of_day=trajectory.start_time_of_day,
        complexity=trajectory_complexity(trajectory, tolerance_m=tolerance_m),
        simplified_points=len(simplified),
        raw_points=len(trajectory),
        origin_stay_point=origin_sp,
        destination_stay_point=destination_sp,
    )


@dataclass(frozen=True)
class DestinationFrequency:
    """How often a user travels to a particular stay point."""

    stay_point_id: int
    count: int
    share: float
    by_time_of_day: Dict[str, int]


def destination_frequencies(
    features: Sequence[TrajectoryFeatures],
) -> List[DestinationFrequency]:
    """Aggregate trip features into per-destination visit frequencies."""
    with_destination = [f for f in features if f.destination_stay_point is not None]
    if not with_destination:
        return []
    # One pass builds both the visit counts and every destination's
    # time-of-day histogram (the former per-destination rescan made this
    # O(destinations x trips)).  Counter insertion order matches the old
    # generator-built Counter, so most_common() tie-breaks identically.
    counts: Counter = Counter()
    histograms: Dict[int, Dict[str, int]] = {}
    for feature in with_destination:
        stay_point_id = feature.destination_stay_point
        counts[stay_point_id] += 1
        by_tod = histograms.setdefault(stay_point_id, {})
        by_tod[feature.time_of_day] = by_tod.get(feature.time_of_day, 0) + 1
    total = sum(counts.values())
    return [
        DestinationFrequency(
            stay_point_id=stay_point_id,
            count=count,
            share=count / total,
            by_time_of_day=histograms[stay_point_id],
        )
        for stay_point_id, count in counts.most_common()
    ]


def route_similarity(a: Trajectory, b: Trajectory, *, samples: int = ROUTE_SIMILARITY_SAMPLES) -> float:
    """Similarity in [0, 1] between two trips' geometries.

    Both geometries are resampled to ``samples`` points by arc length and
    compared point-wise; the mean distance is converted to a similarity via
    ``1 / (1 + mean_km)``.  Good enough to group a commuter's repeated
    home-to-work drives without a full Fréchet computation.

    This is the readable reference path: it resamples both polylines from
    scratch on every call.  Callers comparing the same trips repeatedly
    (route clustering, streaming repairs) should build a cached
    :class:`RouteSignature` per trip via :func:`route_signature` and use
    :func:`route_similarity_signatures`, which returns the same scores.
    """
    if samples < 2:
        raise TrajectoryError("samples must be >= 2")
    line_a = a.to_polyline()
    line_b = b.to_polyline()
    if line_a.length_m == 0.0 or line_b.length_m == 0.0:
        return 0.0
    total = 0.0
    for index in range(samples):
        fraction = index / (samples - 1)
        pa = line_a.point_at_distance(fraction * line_a.length_m)
        pb = line_b.point_at_distance(fraction * line_b.length_m)
        total += haversine_m(pa, pb)
    mean_km = (total / samples) / 1000.0
    return 1.0 / (1.0 + mean_km)


class RouteSignature:
    """Arc-length-resampled trip geometry with precomputed haversine terms.

    The expensive parts of :func:`route_similarity` — building the polyline,
    interpolating ``samples`` evenly spaced points, converting them to
    radians — depend on one trip only, so they are done once here and reused
    across every pair the trip participates in (all-pairs coherence, cluster
    joins, streaming repairs).  Comparing two signatures needs only the
    flattened haversine inner loop with no per-comparison allocation, the
    same materialize-once idiom as :class:`repro.content.geo_relevance.RouteSamples`.
    """

    __slots__ = ("samples", "zero_length", "lat_rad", "lon_rad", "cos_lat")

    def __init__(self, trajectory: Trajectory, *, samples: int = ROUTE_SIMILARITY_SAMPLES) -> None:
        if samples < 2:
            raise TrajectoryError("samples must be >= 2")
        self.samples = samples
        line = trajectory.to_polyline()
        if line.length_m == 0.0:
            # The reference path scores any pair involving a zero-length
            # geometry 0.0; remember the degeneracy instead of sampling.
            self.zero_length = True
            self.lat_rad: List[float] = []
            self.lon_rad: List[float] = []
            self.cos_lat: List[float] = []
            return
        self.zero_length = False
        # Exactly the points repeated point_at_distance calls would yield.
        points = line.sample_points(samples)
        self.lat_rad = [math.radians(p.lat) for p in points]
        self.lon_rad = [math.radians(p.lon) for p in points]
        self.cos_lat = [math.cos(lat) for lat in self.lat_rad]


def route_similarity_signatures(a: RouteSignature, b: RouteSignature) -> float:
    """:func:`route_similarity` evaluated on two precomputed signatures.

    Bit-identical to the reference path: the flattened loop performs the
    same haversine operations in the same order on the same sampled points,
    only without rebuilding them per call.
    """
    if a.samples != b.samples:
        raise TrajectoryError(
            f"signatures were sampled differently: {a.samples} != {b.samples}"
        )
    if a.zero_length or b.zero_length:
        return 0.0
    sin = math.sin
    asin = math.asin
    sqrt = math.sqrt
    total = 0.0
    for lat1, lon1, cos1, lat2, lon2, cos2 in zip(
        a.lat_rad, a.lon_rad, a.cos_lat, b.lat_rad, b.lon_rad, b.cos_lat
    ):
        h = sin((lat2 - lat1) / 2.0) ** 2 + cos1 * cos2 * sin((lon2 - lon1) / 2.0) ** 2
        total += 2.0 * EARTH_RADIUS_M * asin(sqrt(min(1.0, h)))
    mean_km = (total / a.samples) / 1000.0
    return 1.0 / (1.0 + mean_km)


#: Signatures keyed by trajectory *identity* (trips are immutable once
#: built), weakly so dropping a trip releases its signature.  The inner dict
#: keys by sample count: different callers may resample differently.
_SIGNATURE_CACHE: "weakref.WeakKeyDictionary[Trajectory, Dict[int, RouteSignature]]" = (
    weakref.WeakKeyDictionary()
)


def route_signature(
    trajectory: Trajectory, *, samples: int = ROUTE_SIMILARITY_SAMPLES
) -> RouteSignature:
    """The trip's cached :class:`RouteSignature`, built on first use.

    Keyed by trajectory identity: the same trip object always returns the
    same signature, so clusters, snapshots and streaming repairs all share
    one resample per trip instead of re-deriving it per pair.
    """
    per_trip = _SIGNATURE_CACHE.get(trajectory)
    if per_trip is None:
        per_trip = {}
        _SIGNATURE_CACHE[trajectory] = per_trip
    signature = per_trip.get(samples)
    if signature is None:
        signature = RouteSignature(trajectory, samples=samples)
        per_trip[samples] = signature
    return signature

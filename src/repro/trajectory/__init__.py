"""GPS trajectory mining.

Implements the tracking-data processing pipeline described in the paper's
system description: raw GPS fixes are periodically processed into "a
compact, discrete model which describes destination, trajectory, speed,
frequency, time of the day and complexity"; major staying points are found
with density-based clustering (DBSCAN) and trajectories are simplified with
the Ramer-Douglas-Peucker algorithm before complexity analysis.

On top of that compact model the package provides the predictors the
proactive recommender needs: where is the driver going (destination
prediction) and how long will the drive take (ΔT / travel-time prediction).
"""

from repro.trajectory.clustering import RouteCluster, RouteClusterIndex, cluster_trips
from repro.trajectory.features import (
    RouteSignature,
    TrajectoryFeatures,
    extract_features,
    route_signature,
    route_similarity,
    route_similarity_signatures,
)
from repro.trajectory.model import Trajectory, TrajectoryPoint, split_into_trips
from repro.trajectory.prediction import DestinationPredictor, DestinationPrediction
from repro.trajectory.simplify import simplify_trajectory
from repro.trajectory.staypoints import StayPoint, dbscan, detect_stay_points
from repro.trajectory.travel_time import TravelTimeEstimate, TravelTimePredictor

__all__ = [
    "DestinationPredictor",
    "DestinationPrediction",
    "RouteCluster",
    "RouteClusterIndex",
    "RouteSignature",
    "StayPoint",
    "Trajectory",
    "TrajectoryFeatures",
    "TrajectoryPoint",
    "TravelTimeEstimate",
    "TravelTimePredictor",
    "cluster_trips",
    "dbscan",
    "detect_stay_points",
    "extract_features",
    "route_signature",
    "route_similarity",
    "route_similarity_signatures",
    "simplify_trajectory",
    "split_into_trips",
]

"""The simulated PPHCR client app.

Wraps a :class:`~repro.delivery.player.HybridPlayer` and converts listener
actions into the event stream and feedback the server expects: tune, listen
pings every ``ping_interval_s`` of playback, skip, like/dislike, channel
change, GPS fixes, clip start/completion.  The app is what the scenario
simulations and the example scripts drive.
"""

from __future__ import annotations

from typing import List, Optional

from repro.content.model import AudioClip
from repro.content.schedule import LinearSchedule
from repro.client.events import ClientEvent, ClientEventKind, make_event
from repro.delivery.player import HybridPlayer, PlaybackSegment
from repro.errors import DeliveryError
from repro.geo import GeoPoint
from repro.spatialdb import GpsFix
from repro.users.feedback import FeedbackKind
from repro.users.management import UserManager


class ClientApp:
    """A deterministic model of the Android client app."""

    def __init__(
        self,
        user_id: str,
        users: UserManager,
        *,
        ping_interval_s: float = 60.0,
        buffer_capacity_s: float = 3600.0,
    ) -> None:
        if ping_interval_s <= 0:
            raise DeliveryError("ping_interval_s must be > 0")
        self._user_id = user_id
        self._users = users
        self._player = HybridPlayer(user_id, buffer_capacity_s=buffer_capacity_s)
        self._ping_interval_s = ping_interval_s
        self._events: List[ClientEvent] = []
        self._current_clip: Optional[AudioClip] = None

    # Accessors ------------------------------------------------------------

    @property
    def user_id(self) -> str:
        """The listener using this app."""
        return self._user_id

    @property
    def player(self) -> HybridPlayer:
        """The underlying playback model."""
        return self._player

    def events(self) -> List[ClientEvent]:
        """All events the app has sent to the server."""
        return list(self._events)

    def timeline(self) -> List[str]:
        """The playback timeline so far."""
        return self._player.timeline()

    # Actions ----------------------------------------------------------------

    def tune(self, service_id: str, schedule: LinearSchedule, *, at_s: float) -> ClientEvent:
        """Tune to a live service."""
        self._player.tune(service_id, schedule, at_s=at_s)
        event = make_event(
            ClientEventKind.TUNE, self._user_id, at_s, service_id=service_id
        )
        self._events.append(event)
        return event

    def listen_live(self, duration_s: float) -> PlaybackSegment:
        """Listen to the tuned service, emitting periodic positive pings."""
        segment = self._player.play_live(duration_s)
        self._emit_listen_pings(segment, content_id=segment.programme_id, is_clip=False)
        return segment

    def play_recommended_clip(self, clip: AudioClip) -> PlaybackSegment:
        """Play a recommended clip, reporting start, pings and completion."""
        start_event = make_event(
            ClientEventKind.CLIP_STARTED,
            self._user_id,
            self._player.current_time_s,
            content_id=clip.clip_id,
        )
        self._events.append(start_event)
        self._current_clip = clip
        segment = self._player.play_clip(clip)
        self._emit_listen_pings(segment, content_id=clip.clip_id, is_clip=True)
        completion = make_event(
            ClientEventKind.CLIP_COMPLETED,
            self._user_id,
            segment.window.end_s,
            content_id=clip.clip_id,
        )
        self._events.append(completion)
        self._users.record_feedback(
            self._user_id,
            clip.clip_id,
            FeedbackKind.COMPLETED,
            timestamp_s=segment.window.end_s,
            listened_s=segment.duration_s,
        )
        self._current_clip = None
        return segment

    def skip(self, *, content_id: Optional[str] = None, listened_s: float = 0.0) -> ClientEvent:
        """Skip the currently playing content (implicit negative feedback)."""
        now = self._player.current_time_s
        if now is None:
            raise DeliveryError("cannot skip before tuning")
        target = content_id
        if target is None and self._current_clip is not None:
            target = self._current_clip.clip_id
        if target is None:
            skipped = self._player.skip_current_programme()
            broadcast_now = now - self._player.playback_offset_s
            programme = None
            if skipped is not None:
                # Identify what was skipped for the feedback record.
                schedule = self._player._schedule  # noqa: SLF001 - internal read
                current = schedule.programme_at(broadcast_now) if schedule else None
                programme = current.programme_id if current else None
            target = programme or "unknown-programme"
            is_clip = False
        else:
            is_clip = True
        event = make_event(ClientEventKind.SKIP, self._user_id, now, content_id=target)
        self._events.append(event)
        self._users.record_feedback(
            self._user_id,
            target,
            FeedbackKind.SKIP,
            timestamp_s=now,
            listened_s=listened_s,
            is_clip=is_clip,
        )
        return event

    def like(self, content_id: str) -> ClientEvent:
        """Explicit positive feedback."""
        return self._explicit(content_id, ClientEventKind.LIKE, FeedbackKind.LIKE)

    def dislike(self, content_id: str) -> ClientEvent:
        """Explicit negative feedback."""
        return self._explicit(content_id, ClientEventKind.DISLIKE, FeedbackKind.DISLIKE)

    def change_channel(self, new_service_id: str, schedule: LinearSchedule) -> ClientEvent:
        """Zap to another service (strong implicit negative feedback)."""
        now = self._player.current_time_s
        if now is None:
            raise DeliveryError("cannot change channel before tuning")
        broadcast_now = now - self._player.playback_offset_s
        old_schedule = self._player._schedule  # noqa: SLF001 - internal read
        current = old_schedule.programme_at(broadcast_now) if old_schedule else None
        if current is not None:
            self._users.record_feedback(
                self._user_id,
                current.programme_id,
                FeedbackKind.CHANNEL_CHANGE,
                timestamp_s=now,
                is_clip=False,
            )
        event = make_event(
            ClientEventKind.CHANNEL_CHANGE, self._user_id, now, service_id=new_service_id
        )
        self._events.append(event)
        self._player.tune(new_service_id, schedule, at_s=now)
        return event

    def report_position(self, position: GeoPoint, *, timestamp_s: float, speed_mps: float = 0.0) -> ClientEvent:
        """Send a GPS fix to the server."""
        self._users.ingest_fix(
            GpsFix(self._user_id, timestamp_s, position, speed_mps=speed_mps)
        )
        event = make_event(
            ClientEventKind.GPS_FIX,
            self._user_id,
            timestamp_s,
            position=position,
            speed_mps=speed_mps,
        )
        self._events.append(event)
        return event

    # Internal -------------------------------------------------------------

    def _explicit(self, content_id: str, event_kind: ClientEventKind, feedback: FeedbackKind) -> ClientEvent:
        now = self._player.current_time_s
        if now is None:
            raise DeliveryError("cannot rate content before tuning")
        event = make_event(event_kind, self._user_id, now, content_id=content_id)
        self._events.append(event)
        self._users.record_feedback(self._user_id, content_id, feedback, timestamp_s=now)
        return event

    def _emit_listen_pings(self, segment: PlaybackSegment, *, content_id: Optional[str], is_clip: bool) -> None:
        if content_id is None:
            return
        instant = segment.window.start_s + self._ping_interval_s
        while instant <= segment.window.end_s:
            event = make_event(
                ClientEventKind.LISTEN_PING, self._user_id, instant, content_id=content_id
            )
            self._events.append(event)
            self._users.record_feedback(
                self._user_id,
                content_id,
                FeedbackKind.LISTEN_PING,
                timestamp_s=instant,
                listened_s=instant - segment.window.start_s,
                is_clip=is_clip,
            )
            instant += self._ping_interval_s

"""Events emitted by the client app toward the server."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.geo import GeoPoint
from repro.util.ids import new_id


class ClientEventKind(enum.Enum):
    """The message types the client app sends to the server."""

    TUNE = "tune"
    LISTEN_PING = "listen_ping"
    SKIP = "skip"
    LIKE = "like"
    DISLIKE = "dislike"
    CHANNEL_CHANGE = "channel_change"
    GPS_FIX = "gps_fix"
    CLIP_STARTED = "clip_started"
    CLIP_COMPLETED = "clip_completed"


@dataclass(frozen=True)
class ClientEvent:
    """One message from the client to the server."""

    event_id: str
    kind: ClientEventKind
    user_id: str
    timestamp_s: float
    content_id: Optional[str] = None
    service_id: Optional[str] = None
    position: Optional[GeoPoint] = None
    speed_mps: Optional[float] = None
    payload: Dict[str, float] = field(default_factory=dict)


def make_event(
    kind: ClientEventKind,
    user_id: str,
    timestamp_s: float,
    *,
    content_id: Optional[str] = None,
    service_id: Optional[str] = None,
    position: Optional[GeoPoint] = None,
    speed_mps: Optional[float] = None,
    payload: Optional[Dict[str, float]] = None,
) -> ClientEvent:
    """Create a client event with a fresh identifier."""
    return ClientEvent(
        event_id=new_id("evt"),
        kind=kind,
        user_id=user_id,
        timestamp_s=timestamp_s,
        content_id=content_id,
        service_id=service_id,
        position=position,
        speed_mps=speed_mps,
        payload=dict(payload or {}),
    )

"""The web control dashboard, reproduced as report builders.

During the demonstration the dashboard "visualizes the user's past
trajectories, content preference, and the details of the recommendation
process" (Figure 5) and "allows manual injection of recommendations"
(Figure 6).  The reproduction renders the same information as structured
report objects plus plain-text views the benches print.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.analysis import tooling_summary
from repro.client.editorial import EditorialDesk
from repro.content.repository import ContentRepository
from repro.errors import NotFoundError
from repro.geo import BoundingBox
from repro.recommender.scheduling import RecommendationPlan
from repro.spatialdb import SpatialQueryEngine
from repro.trajectory import (
    Trajectory,
    cluster_trips,
    detect_stay_points,
    split_into_trips,
)
from repro.trajectory.staypoints import StayPoint
from repro.users.management import UserManager
from repro.util.timeutils import format_clock


@dataclass(frozen=True)
class TrajectoryReport:
    """What the dashboard map (Figure 5) shows for one listener."""

    user_id: str
    fix_count: int
    trip_count: int
    stay_points: List[StayPoint]
    bounding_box: Optional[BoundingBox]
    total_distance_km: float
    recurring_routes: int

    def summary_lines(self) -> List[str]:
        """Plain-text rendering of the map summary."""
        lines = [
            f"listener {self.user_id}: {self.fix_count} GPS fixes, "
            f"{self.trip_count} trips, {self.total_distance_km:.1f} km travelled",
            f"  recurring routes: {self.recurring_routes}",
        ]
        for stay_point in self.stay_points[:5]:
            lines.append(
                f"  stay point #{stay_point.stay_point_id} at {stay_point.center} "
                f"(support {stay_point.support})"
            )
        return lines


@dataclass(frozen=True)
class RecommendationReport:
    """What the dashboard recommendation panel (Figure 6) shows."""

    user_id: str
    generated_s: float
    rows: List[Dict[str, object]] = field(default_factory=list)

    def summary_lines(self) -> List[str]:
        """Plain-text rendering of the recommendation list."""
        lines = [f"recommendations for {self.user_id} at {format_clock(self.generated_s)}:"]
        for row in self.rows:
            lines.append(
                f"  [{row['rank']}] {row['title']} "
                f"(score {row['score']:.2f}, {row['duration_s']:.0f}s, {row['reason']})"
            )
        return lines


class ControlDashboard:
    """Read-only analytics over the server state, plus editorial controls."""

    def __init__(
        self,
        users: UserManager,
        content: ContentRepository,
        *,
        editorial: Optional[EditorialDesk] = None,
    ) -> None:
        self._users = users
        self._content = content
        self._editorial = editorial or EditorialDesk()
        self._plans: Dict[str, List[RecommendationPlan]] = {}

    @property
    def editorial(self) -> EditorialDesk:
        """The editorial injection desk."""
        return self._editorial

    def record_plan(self, plan: RecommendationPlan) -> None:
        """Store a produced recommendation plan for later inspection."""
        self._plans.setdefault(plan.user_id, []).append(plan)

    def plans_for(self, user_id: str) -> List[RecommendationPlan]:
        """Every stored plan for a user."""
        return list(self._plans.get(user_id, []))

    def trajectory_report(self, user_id: str) -> TrajectoryReport:
        """Build the Figure-5 style movement report for one listener."""
        tracking = self._users.tracking
        fixes = tracking.fixes_for(user_id)
        if not fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        trajectory = Trajectory.from_fixes(user_id, fixes)
        trips = split_into_trips(trajectory)
        endpoints = []
        for trip in trips:
            endpoints.append(trip.origin)
            endpoints.append(trip.destination)
        stay_points = (
            detect_stay_points(endpoints, eps_m=250.0, min_samples=2) if endpoints else []
        )
        clusters = cluster_trips(trips, stay_points) if stay_points else []
        engine = SpatialQueryEngine(tracking)
        summary = engine.movement_summary(user_id)
        return TrajectoryReport(
            user_id=user_id,
            fix_count=len(fixes),
            trip_count=len(trips),
            stay_points=stay_points,
            bounding_box=summary.bounding_box,
            total_distance_km=summary.distance_m / 1000.0,
            recurring_routes=sum(1 for cluster in clusters if cluster.support >= 2),
        )

    def recommendation_report(self, user_id: str) -> RecommendationReport:
        """Build the Figure-6 style recommendation list for one listener."""
        plans = self._plans.get(user_id, [])
        if not plans:
            raise NotFoundError(f"no recommendation plan recorded for user {user_id!r}")
        plan = plans[-1]
        rows: List[Dict[str, object]] = []
        for rank, item in enumerate(plan.items, start=1):
            rows.append(
                {
                    "rank": rank,
                    "clip_id": item.clip_id,
                    "title": item.scored.clip.title,
                    "score": item.scored.final_score,
                    "duration_s": item.scored.clip.duration_s,
                    "reason": item.reason,
                    "start": format_clock(item.start_s),
                }
            )
        return RecommendationReport(user_id=user_id, generated_s=plan.created_s, rows=rows)

    def preference_report(self, user_id: str) -> List[str]:
        """Plain-text view of a listener's learned content preferences."""
        profile = self._users.preference_profile(user_id)
        lines = [f"content preferences for {user_id} ({profile.observation_count} observations):"]
        for name, score in profile.top_categories(8):
            lines.append(f"  + {name}: {score:+.2f}")
        for name in profile.disliked_categories()[:5]:
            lines.append(f"  - {name}: {profile.score(name):+.2f}")
        return lines

    def overview(self) -> Dict[str, int]:
        """System-wide counters shown on the dashboard landing page."""
        return {
            "users": self._users.user_count(),
            "clips": self._content.clip_count(),
            "services": len(self._content.services()),
            "feedback_events": len(self._users.feedback),
            "tracked_users": len(self._users.tracking.user_ids()),
            "plans": sum(len(plans) for plans in self._plans.values()),
            "editorial_injections": len(self._editorial.all_injections()),
        }

    def storage_report(self) -> List[Dict[str, object]]:
        """Per-database storage-engine statistics (Figure-5 ops panel).

        One entry per backing database — metadata, profiles, feedbacks,
        tracking — with row counts, write counters and the planner's
        index-hit/scan split.  Shard-partitioned databases report their
        counters *merged* across shards in the same
        :meth:`Database.stats() <repro.storage.database.Database.stats>`
        shape, plus a ``"shards"`` list with each shard's own stats so the
        panel can show per-shard skew (see :meth:`ShardedDatabase.stats
        <repro.storage.sharding.ShardedDatabase.stats>`).
        """
        databases = [
            self._content.database,
            self._users.profiles_database,
            self._users.feedback.database,
            self._users.tracking.database,
        ]
        return [database.stats() for database in databases]

    def ops_report(self, gateway=None, *, telemetry=None) -> OpsReport:
        """The operations panel: storage, API-gateway and telemetry counters.

        ``gateway`` is any object with a ``metrics_snapshot()`` (the public
        API gateway); without one the report covers storage only.
        ``telemetry`` is the server's :class:`~repro.obs.telemetry.Telemetry`
        bundle — when given (and enabled), the report also carries the
        metrics registry's snapshot and the slow-query log, the same
        payloads ``GET /v1/ops/metrics`` / ``/v1/ops/traces`` expose.

        The report always carries the static-analysis tooling summary
        (:func:`repro.analysis.tooling_summary` — rule count and checked-in
        baseline size; cheap, no tree scan), so the ops panel shows the
        invariant-gate posture next to the runtime counters.
        """
        metrics = None
        slow_queries = None
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics_snapshot()
            slow_queries = telemetry.slow_queries.entries()
        return OpsReport(
            storage=self.storage_report(),
            gateway=gateway.metrics_snapshot() if gateway is not None else None,
            metrics=metrics,
            slow_queries=slow_queries,
            analysis=tooling_summary(),
        )


@dataclass(frozen=True)
class OpsReport:
    """Storage-engine plus API-gateway counters for the ops panel."""

    storage: List[Dict[str, object]]
    gateway: Optional[Dict[str, object]] = None
    #: The metrics registry's :meth:`snapshot` payload (None when the
    #: report was built without telemetry or with it disabled).
    metrics: Optional[Dict[str, object]] = None
    #: The slow-query log, newest first (None without telemetry).
    slow_queries: Optional[List[Dict[str, object]]] = None
    #: The ``repro.analysis`` tooling summary (rule count, baseline size,
    #: finding counts when a scan ran); None when built without one.
    analysis: Optional[Dict[str, object]] = None

    def summary_lines(self) -> List[str]:
        """Plain-text rendering of the ops panel."""
        lines = ["storage engines:"]
        for stats in self.storage:
            shards = stats.get("shards")
            suffix = f" across {len(shards)} shards" if shards else ""
            lines.append(
                f"  {stats['database']}: {stats['total_rows']} rows, "
                f"{stats['index_hits']} index hits, {stats['scans']} scans{suffix}"
            )
            for table_name, table_stats in sorted(stats["tables"].items()):
                lines.append(
                    f"    {table_name}: {table_stats['rows']} rows "
                    f"(v{table_stats['version']}, {table_stats['indexes']} indexes, "
                    f"+{table_stats['inserts']}/~{table_stats['updates']}"
                    f"/-{table_stats['deletes']})"
                )
            if shards:
                for shard_stats in shards:
                    lines.append(
                        f"    shard {shard_stats['database']}: "
                        f"{shard_stats['total_rows']} rows, "
                        f"{shard_stats['index_hits']} index hits, "
                        f"{shard_stats['scans']} scans"
                    )
        if self.gateway is not None:
            requests = self.gateway.get("requests", 0)
            lines.append(f"api gateway: {requests} requests")
            by_status = self.gateway.get("by_status", {})
            for status in sorted(by_status):
                lines.append(f"  {status}: {by_status[status]}")
        if self.metrics is not None:
            histograms = self.metrics.get("histograms", {})
            latency = histograms.get("api_request_seconds", {})
            series = latency.get("series", [])
            if series:
                lines.append("route latency (p50/p95/p99 ms):")
                for entry in sorted(series, key=lambda s: s["labels"].get("route", "")):
                    lines.append(
                        f"  {entry['labels'].get('route', '?')}: "
                        f"{entry['p50'] * 1000:.2f}/{entry['p95'] * 1000:.2f}"
                        f"/{entry['p99'] * 1000:.2f} ({entry['count']} requests)"
                    )
            counters = self.metrics.get("counters", {})
            dead = counters.get("bus_dead_letters_total", {})
            total_dead = sum(entry["value"] for entry in dead.get("series", []))
            if total_dead:
                lines.append(f"bus dead letters: {total_dead}")
            appends = counters.get("wal_appends_total", {}).get("series", [])
            if appends:
                total_appends = sum(entry["value"] for entry in appends)
                wal_bytes = sum(
                    entry["value"]
                    for entry in counters.get("wal_bytes_total", {}).get("series", [])
                )
                lines.append(
                    f"write-ahead log: {total_appends} frames, {wal_bytes} bytes"
                )
                for entry in sorted(appends, key=lambda s: s["labels"].get("shard", "")):
                    lines.append(
                        f"  {entry['labels'].get('shard', '?')}: {entry['value']} frames"
                    )
                compactions = sum(
                    entry["value"]
                    for entry in counters.get("wal_compactions_total", {}).get("series", [])
                )
                if compactions:
                    reclaimed = sum(
                        entry["value"]
                        for entry in counters.get(
                            "wal_compaction_reclaimed_bytes_total", {}
                        ).get("series", [])
                    )
                    lines.append(
                        f"  compactions: {compactions} ({reclaimed} bytes reclaimed)"
                    )
            gauges = self.metrics.get("gauges", {})
            lag = gauges.get("replica_lag_frames", {}).get("series", [])
            if lag:
                for entry in lag:
                    lines.append(f"replica lag: {entry['value']} frames")
        if self.slow_queries:
            lines.append(f"slow queries: {len(self.slow_queries)}")
            for entry in self.slow_queries[:5]:
                plan = entry.get("plan", {})
                lines.append(
                    f"  {entry['database']}.{entry.get('table', '?')} "
                    f"[{plan.get('strategy', '?')}] {entry['elapsed_ms']:.1f} ms, "
                    f"{entry['rows']} rows (shard {entry.get('shard')})"
                )
        if self.analysis is not None:
            line = f"static analysis: {self.analysis.get('rules', 0)} rules"
            baseline = self.analysis.get("baseline")
            if baseline is not None:
                line += f", baseline {baseline} entr{'y' if baseline == 1 else 'ies'}"
            findings = self.analysis.get("findings")
            if findings is not None:
                line += f", {findings} finding(s) ({self.analysis.get('new')} new)"
            lines.append(line)
        return lines

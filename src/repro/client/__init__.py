"""Client side: the simulated PPHCR app, editorial injection, the dashboard.

The Android app of the paper is replaced by a deterministic client model
that produces the same observable behaviour: it plays the hybrid timeline,
sends implicit (listen pings, skips) and explicit (like/dislike) feedback,
and reports GPS fixes.  The web control dashboard is reproduced as report
builders that render the same information as Figures 5 and 6 in text form.
"""

from repro.client.app import ClientApp
from repro.client.editorial import EditorialDesk, EditorialInjection
from repro.client.events import ClientEvent, ClientEventKind
from repro.client.dashboard import ControlDashboard, TrajectoryReport, RecommendationReport

__all__ = [
    "ClientApp",
    "ClientEvent",
    "ClientEventKind",
    "ControlDashboard",
    "EditorialDesk",
    "EditorialInjection",
    "RecommendationReport",
    "TrajectoryReport",
]

"""Editorial recommendation injection.

The control dashboard lets an editor "selectively choose and inject
recommended audio content to specific users" (paper §2, Figure 6).  An
injection carries a boost that is added to the compound score of the clip
for the targeted users, optionally forcing it to the top of the next plan,
and expires after a validity window.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.errors import ValidationError
from repro.util.ids import new_id


@dataclass(frozen=True)
class EditorialInjection:
    """One editorially injected recommendation."""

    injection_id: str
    clip_id: str
    target_user_ids: Sequence[str]
    boost: float
    created_s: float
    expires_s: float
    note: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.boost <= 1.0:
            raise ValidationError(f"boost must be in (0, 1], got {self.boost}")
        if self.expires_s <= self.created_s:
            raise ValidationError("expires_s must be after created_s")

    def is_active(self, now_s: float) -> bool:
        """Whether the injection applies at ``now_s``."""
        return self.created_s <= now_s < self.expires_s

    def targets(self, user_id: str) -> bool:
        """Whether the injection applies to the given user (empty = everyone)."""
        return not self.target_user_ids or user_id in self.target_user_ids


class EditorialDesk:
    """The editor's queue of injections, consulted by the recommender."""

    def __init__(self) -> None:
        self._injections: List[EditorialInjection] = []
        #: Durability hook: injections carry their already generated id in
        #: the logged payload, so replay never draws ``new_id`` again.
        self._op_listener = None

    def set_op_listener(self, listener) -> None:
        """Install the WAL's domain-operation listener (``None`` clears)."""
        self._op_listener = listener

    def _log_op(self, op: str, data) -> None:
        if self._op_listener is not None:
            self._op_listener(op, data)

    @staticmethod
    def _injection_payload(injection: EditorialInjection) -> Dict[str, object]:
        return {
            "injection_id": injection.injection_id,
            "clip_id": injection.clip_id,
            "target_user_ids": list(injection.target_user_ids),
            "boost": injection.boost,
            "created_s": injection.created_s,
            "expires_s": injection.expires_s,
            "note": injection.note,
        }

    @staticmethod
    def _injection_from_payload(raw: Dict[str, object]) -> EditorialInjection:
        return EditorialInjection(
            injection_id=raw["injection_id"],
            clip_id=raw["clip_id"],
            target_user_ids=tuple(raw.get("target_user_ids", ())),
            boost=raw["boost"],
            created_s=raw["created_s"],
            expires_s=raw["expires_s"],
            note=raw.get("note", ""),
        )

    def load_injection(self, payload: Dict[str, object]) -> EditorialInjection:
        """Append one injection from its logged payload (the replay entry)."""
        injection = self._injection_from_payload(payload)
        self._injections.append(injection)
        return injection

    def inject(
        self,
        clip_id: str,
        *,
        target_user_ids: Optional[Sequence[str]] = None,
        boost: float = 0.5,
        created_s: float,
        validity_s: float = 6 * 3600.0,
        note: str = "",
    ) -> EditorialInjection:
        """Create and register an injection; returns it."""
        injection = EditorialInjection(
            injection_id=new_id("edit"),
            clip_id=clip_id,
            target_user_ids=tuple(target_user_ids or ()),
            boost=boost,
            created_s=created_s,
            expires_s=created_s + validity_s,
            note=note,
        )
        self._injections.append(injection)
        self._log_op("inject", self._injection_payload(injection))
        return injection

    def withdraw(self, injection_id: str) -> bool:
        """Remove an injection; returns whether it existed."""
        before = len(self._injections)
        self._injections = [i for i in self._injections if i.injection_id != injection_id]
        removed = len(self._injections) < before
        if removed:
            self._log_op("withdraw", {"injection_id": injection_id})
        return removed

    def active_injections(self, *, now_s: float, user_id: Optional[str] = None) -> List[EditorialInjection]:
        """Injections applicable now (optionally for one user)."""
        return [
            injection
            for injection in self._injections
            if injection.is_active(now_s) and (user_id is None or injection.targets(user_id))
        ]

    def boosts_for(self, user_id: str, *, now_s: float) -> Dict[str, float]:
        """Per-clip boost map the compound scorer should apply for a user."""
        boosts: Dict[str, float] = {}
        for injection in self.active_injections(now_s=now_s, user_id=user_id):
            boosts[injection.clip_id] = max(boosts.get(injection.clip_id, 0.0), injection.boost)
        return boosts

    def all_injections(self) -> List[EditorialInjection]:
        """Every injection ever registered (for the dashboard)."""
        return list(self._injections)

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> List[Dict[str, object]]:
        """The injection queue as a JSON-serializable payload."""
        return [self._injection_payload(injection) for injection in self._injections]

    def restore(self, payload: List[Dict[str, object]]) -> None:
        """Reload a :meth:`snapshot` payload, replacing the queue."""
        self._injections = [self._injection_from_payload(raw) for raw in payload]

"""Synthetic news corpus generation.

Builds a vocabulary and per-category unigram language models so that
documents drawn from different categories are statistically separable (the
property the paper's Bayesian classifier relies on) while sharing a large
amount of common vocabulary (the property that makes the task non-trivial).

Each of the 30 categories gets a set of *topic words* it strongly prefers; a
shared pool of *common words* (function words, general news vocabulary) is
mixed in at a configurable rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.content.categories import CATEGORIES, category_names
from repro.errors import ValidationError
from repro.util.rng import DeterministicRng

_SYLLABLES = (
    "ba", "be", "bi", "bo", "bu", "ca", "ce", "ci", "co", "cu",
    "da", "de", "di", "do", "du", "fa", "fe", "fi", "fo", "fu",
    "ga", "ge", "gi", "go", "gu", "la", "le", "li", "lo", "lu",
    "ma", "me", "mi", "mo", "mu", "na", "ne", "ni", "no", "nu",
    "pa", "pe", "pi", "po", "pu", "ra", "re", "ri", "ro", "ru",
    "sa", "se", "si", "so", "su", "ta", "te", "ti", "to", "tu",
    "va", "ve", "vi", "vo", "vu", "za", "ze", "zi", "zo", "zu",
)

#: Words every document can contain regardless of category (stopword-like).
_COMMON_WORD_COUNT = 120


def _make_word(rng: DeterministicRng, syllables: int) -> str:
    return "".join(rng.choice(_SYLLABLES) for _ in range(syllables))


@dataclass(frozen=True)
class LabeledDocument:
    """A ground-truth text with its category label."""

    text: str
    category: str
    word_count: int


class CategoryLanguageModel:
    """Unigram language model for one category."""

    def __init__(self, category: str, topic_words: Sequence[str], common_words: Sequence[str],
                 topic_share: float) -> None:
        if not topic_words or not common_words:
            raise ValidationError("language model needs topic and common words")
        if not 0.0 < topic_share < 1.0:
            raise ValidationError(f"topic_share must be in (0, 1), got {topic_share}")
        self.category = category
        self._topic_words = list(topic_words)
        self._common_words = list(common_words)
        self._topic_share = topic_share

    @property
    def topic_words(self) -> List[str]:
        """Words characteristic of this category."""
        return list(self._topic_words)

    def sample_document(self, rng: DeterministicRng, word_count: int) -> str:
        """Draw a document of ``word_count`` words."""
        if word_count <= 0:
            raise ValidationError(f"word_count must be > 0, got {word_count}")
        words: List[str] = []
        for _ in range(word_count):
            if rng.bernoulli(self._topic_share):
                words.append(rng.choice(self._topic_words))
            else:
                words.append(rng.choice(self._common_words))
        return " ".join(words)


class SyntheticNewsCorpus:
    """Factory of labeled documents over the 30-category taxonomy."""

    def __init__(
        self,
        *,
        seed: int = 11,
        topic_words_per_category: int = 40,
        topic_share: float = 0.45,
    ) -> None:
        if topic_words_per_category < 5:
            raise ValidationError("topic_words_per_category must be >= 5")
        self._rng = DeterministicRng(seed)
        vocab_rng = self._rng.fork("vocabulary")
        self._common_words = [
            _make_word(vocab_rng, vocab_rng.randint(1, 2)) for _ in range(_COMMON_WORD_COUNT)
        ]
        self._models: Dict[str, CategoryLanguageModel] = {}
        used: set = set(self._common_words)
        for category in CATEGORIES:
            topic_words: List[str] = []
            while len(topic_words) < topic_words_per_category:
                word = _make_word(vocab_rng, vocab_rng.randint(2, 4))
                if word not in used:
                    used.add(word)
                    topic_words.append(word)
            self._models[category.name] = CategoryLanguageModel(
                category.name, topic_words, self._common_words, topic_share
            )

    def categories(self) -> List[str]:
        """All category names the corpus can generate."""
        return category_names()

    def model(self, category: str) -> CategoryLanguageModel:
        """The language model of a category."""
        if category not in self._models:
            raise ValidationError(f"unknown category {category!r}")
        return self._models[category]

    def generate_document(
        self, category: str, *, word_count: int = 120, rng: DeterministicRng = None
    ) -> LabeledDocument:
        """Generate one labeled document."""
        generator = rng if rng is not None else self._rng.fork("doc", category)
        text = self.model(category).sample_document(generator, word_count)
        return LabeledDocument(text=text, category=category, word_count=word_count)

    def generate_dataset(
        self,
        *,
        documents_per_category: int = 20,
        word_count: int = 120,
    ) -> List[LabeledDocument]:
        """Generate a balanced labeled dataset over all 30 categories."""
        if documents_per_category <= 0:
            raise ValidationError("documents_per_category must be > 0")
        dataset: List[LabeledDocument] = []
        for category in self.categories():
            for index in range(documents_per_category):
                rng = self._rng.fork("dataset", category, index)
                dataset.append(
                    self.generate_document(category, word_count=word_count, rng=rng)
                )
        return dataset

    def train_test_split(
        self,
        *,
        documents_per_category: int = 20,
        test_fraction: float = 0.25,
        word_count: int = 120,
    ) -> Tuple[List[LabeledDocument], List[LabeledDocument]]:
        """Generate a dataset and split it per category into train and test."""
        if not 0.0 < test_fraction < 1.0:
            raise ValidationError("test_fraction must be in (0, 1)")
        train: List[LabeledDocument] = []
        test: List[LabeledDocument] = []
        per_category_test = max(1, int(round(documents_per_category * test_fraction)))
        for category in self.categories():
            documents = [
                self.generate_document(
                    category, word_count=word_count, rng=self._rng.fork("split", category, i)
                )
                for i in range(documents_per_category)
            ]
            test.extend(documents[:per_category_test])
            train.extend(documents[per_category_test:])
        return train, test

    def vocabulary_size(self) -> int:
        """Approximate number of distinct words the corpus can emit."""
        distinct = set(self._common_words)
        for model in self._models.values():
            distinct.update(model.topic_words)
        return len(distinct)

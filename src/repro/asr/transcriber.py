"""The simulated speech recognizer."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import ValidationError
from repro.util.rng import DeterministicRng


@dataclass(frozen=True)
class TranscriptionResult:
    """Output of the simulated recognizer for one clip."""

    text: str
    reference: str
    substitutions: int
    deletions: int
    insertions: int
    confidence: float

    @property
    def error_count(self) -> int:
        """Total number of injected errors."""
        return self.substitutions + self.deletions + self.insertions


class SimulatedTranscriber:
    """Corrupts ground-truth text with a word-level error model.

    The three error types are applied independently per word with
    probabilities derived from the target word error rate: 70% of errors are
    substitutions, 20% deletions and 10% insertions, which roughly matches
    the error profile of a production large-vocabulary recognizer on
    broadcast news.
    """

    def __init__(
        self,
        *,
        target_wer: float = 0.15,
        seed: int = 23,
        confusion_vocabulary: Optional[Sequence[str]] = None,
    ) -> None:
        if not 0.0 <= target_wer < 1.0:
            raise ValidationError(f"target_wer must be in [0, 1), got {target_wer}")
        self._target_wer = target_wer
        self._rng = DeterministicRng(seed)
        self._confusion_vocabulary = list(confusion_vocabulary or [])
        self._substitution_p = target_wer * 0.7
        self._deletion_p = target_wer * 0.2
        self._insertion_p = target_wer * 0.1

    @property
    def target_wer(self) -> float:
        """The configured target word error rate."""
        return self._target_wer

    def transcribe(self, reference: str, *, clip_id: str = "") -> TranscriptionResult:
        """Produce a noisy transcript of ``reference``."""
        words = reference.split()
        if not words:
            raise ValidationError("cannot transcribe empty text")
        rng = self._rng.fork(clip_id) if clip_id else self._rng
        output: List[str] = []
        substitutions = deletions = insertions = 0
        for word in words:
            roll = rng.random()
            if roll < self._deletion_p:
                deletions += 1
                continue
            if roll < self._deletion_p + self._substitution_p:
                output.append(self._corrupt_word(word, rng))
                substitutions += 1
            else:
                output.append(word)
            if rng.bernoulli(self._insertion_p):
                output.append(self._random_word(rng, like=word))
                insertions += 1
        if not output:
            # Never return an empty transcript: keep the first word.
            output.append(words[0])
            deletions = max(0, deletions - 1)
        error_count = substitutions + deletions + insertions
        confidence = max(0.0, 1.0 - error_count / len(words))
        return TranscriptionResult(
            text=" ".join(output),
            reference=reference,
            substitutions=substitutions,
            deletions=deletions,
            insertions=insertions,
            confidence=confidence,
        )

    def _corrupt_word(self, word: str, rng: DeterministicRng) -> str:
        if self._confusion_vocabulary and rng.bernoulli(0.5):
            return rng.choice(self._confusion_vocabulary)
        if len(word) <= 2:
            return word[::-1] if len(word) == 2 else word + "o"
        position = rng.randint(0, len(word) - 2)
        # Swap two adjacent characters: a plausible recognizer confusion.
        chars = list(word)
        chars[position], chars[position + 1] = chars[position + 1], chars[position]
        return "".join(chars)

    def _random_word(self, rng: DeterministicRng, *, like: str) -> str:
        if self._confusion_vocabulary:
            return rng.choice(self._confusion_vocabulary)
        return like[: max(1, len(like) // 2)]

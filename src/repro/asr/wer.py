"""Word error rate computation (Levenshtein distance over word sequences)."""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import ValidationError


def _edit_distance(reference: Sequence[str], hypothesis: Sequence[str]) -> int:
    """Word-level Levenshtein distance."""
    rows = len(reference) + 1
    cols = len(hypothesis) + 1
    previous = list(range(cols))
    for i in range(1, rows):
        current = [i] + [0] * (cols - 1)
        for j in range(1, cols):
            substitution_cost = 0 if reference[i - 1] == hypothesis[j - 1] else 1
            current[j] = min(
                previous[j] + 1,            # deletion
                current[j - 1] + 1,         # insertion
                previous[j - 1] + substitution_cost,
            )
        previous = current
    return previous[-1]


def word_error_rate(reference: str, hypothesis: str) -> float:
    """WER = edit distance / reference length.

    Raises if the reference is empty (WER is undefined there).
    """
    reference_words: List[str] = reference.split()
    hypothesis_words: List[str] = hypothesis.split()
    if not reference_words:
        raise ValidationError("word_error_rate requires a non-empty reference")
    return _edit_distance(reference_words, hypothesis_words) / len(reference_words)

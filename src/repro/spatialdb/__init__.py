"""The tracking-data spatial database (PostGIS substitute).

Stores raw GPS fixes per user, supports spatial queries (radius, bounding
box, nearest listener) and the periodic compaction step the paper describes:
raw fixes are summarized into a compact, discrete route model
(:mod:`repro.trajectory`) and the raw data can then be pruned.
"""

from repro.spatialdb.tracking_store import GpsFix, TrackingStore
from repro.spatialdb.queries import SpatialQueryEngine

__all__ = ["GpsFix", "SpatialQueryEngine", "TrackingStore"]

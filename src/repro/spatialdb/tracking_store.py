"""Storage for raw GPS fixes arriving from the client apps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint
from repro.storage import Column, Database, IndexSpec, Page, Schema, decode_token, encode_token
from repro.util.validation import require_finite, require_non_empty

#: Version stamp of :meth:`TrackingStore.snapshot` payloads.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class GpsFix:
    """A single GPS observation from a listener's device."""

    user_id: str
    timestamp_s: float
    position: GeoPoint
    speed_mps: float = 0.0
    accuracy_m: float = 10.0

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require_finite(self.timestamp_s, "timestamp_s")
        if self.speed_mps < 0:
            raise ValidationError(f"speed_mps must be >= 0, got {self.speed_mps}")
        if self.accuracy_m <= 0:
            raise ValidationError(f"accuracy_m must be > 0, got {self.accuracy_m}")


class TrackingStore:
    """Per-user time-ordered GPS fix storage over the tracking DB.

    Fix histories are the primary data (append-only per user, time
    ordered); everything derived is declarative storage-engine state: the
    ``latest`` table carries one row per user with their most recent
    position and a **spatial** :class:`~repro.storage.spec.IndexSpec` over
    it, which is what "who is near location X right now" queries hit.  No
    hand-rolled sidecar index remains — the store writes rows, the engine
    maintains the grid.

    Ingest is write-heavy (every fix moves its user) while spatial reads
    are rare, so the latest-row upsert is deferred: ``add_fix`` records
    the position with one dict write and the spatial queries fold pending
    moves into the table before answering.
    """

    def __init__(self, *, index_cell_size_m: float = 1000.0) -> None:
        self._fixes: Dict[str, List[GpsFix]] = {}
        #: Sequence number of each user's *oldest retained* fix.  Fixes
        #: are numbered consecutively as they are added (1, 2, ...) and
        #: pruning only drops a prefix, so ``history[i]`` always has
        #: sequence ``first_seq + i`` — one int per user is the whole
        #: monotonic keyset the history cursors resume on.
        self._first_seq: Dict[str, int] = {}
        self._db = Database("tracking")
        self._latest_table = self._db.create_table(
            Schema(
                name="latest",
                primary_key="user_id",
                columns=[
                    Column("user_id", str),
                    Column("lat", float),
                    Column("lon", float),
                    Column("timestamp_s", float),
                ],
                indexes=[
                    IndexSpec(
                        "position",
                        kind="spatial",
                        columns=("lat", "lon"),
                        cell_size_m=index_cell_size_m,
                    )
                ],
            )
        )
        self._added_counts: Dict[str, int] = {}
        #: Latest positions not yet reflected in the ``latest`` table (see
        #: class docstring: ingest defers the upsert, reads flush).
        self._pending_latest: Dict[str, GpsFix] = {}

    @property
    def database(self) -> Database:
        """The tracking DB (exposed for dashboards and stats)."""
        return self._db

    def add_fix(self, fix: GpsFix) -> None:
        """Append a fix for a user (must be time-ordered per user)."""
        history = self._fixes.setdefault(fix.user_id, [])
        if history and fix.timestamp_s < history[-1].timestamp_s:
            raise ValidationError(
                "fixes must be appended in non-decreasing timestamp order: "
                f"{fix.timestamp_s} < {history[-1].timestamp_s} for user {fix.user_id!r}"
            )
        history.append(fix)
        count = self._added_counts.get(fix.user_id, 0) + 1
        self._added_counts[fix.user_id] = count
        if len(history) == 1:
            self._first_seq[fix.user_id] = count
        self._pending_latest[fix.user_id] = fix

    def _flush_latest_index(self) -> None:
        """Fold pending latest-position moves into the ``latest`` table."""
        if self._pending_latest:
            upsert = self._latest_table.upsert
            for user_id, fix in self._pending_latest.items():
                upsert(
                    {
                        "user_id": user_id,
                        "lat": fix.position.lat,
                        "lon": fix.position.lon,
                        "timestamp_s": fix.timestamp_s,
                    }
                )
            self._pending_latest.clear()

    def add_fixes(self, fixes: Iterable[GpsFix]) -> int:
        """Append many fixes; returns the number added."""
        count = 0
        for fix in fixes:
            self.add_fix(fix)
            count += 1
        return count

    def user_ids(self) -> List[str]:
        """Users that have at least one fix."""
        return sorted(self._fixes.keys())

    def fixes_added(self, user_id: str) -> int:
        """Fixes *ever* added for a user (monotonic; unaffected by pruning).

        This is the dirty-tracking version counter the streaming compactor
        compares across passes: a user whose counter has not moved has no
        new data and can be skipped without re-mining anything.
        """
        return self._added_counts.get(user_id, 0)

    def fix_count(self, user_id: Optional[str] = None) -> int:
        """Number of stored fixes for one user or for all users."""
        if user_id is not None:
            return len(self._fixes.get(user_id, []))
        return sum(len(history) for history in self._fixes.values())

    def fixes_for(
        self,
        user_id: str,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[GpsFix]:
        """Fixes for a user, optionally restricted to ``[start_s, end_s)``."""
        history = self._fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        result = history
        if start_s is not None:
            result = [fix for fix in result if fix.timestamp_s >= start_s]
        if end_s is not None:
            result = [fix for fix in result if fix.timestamp_s < end_s]
        return list(result)

    def fixes_page(
        self, user_id: str, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Page[GpsFix]:
        """One time-ordered page of a user's fix history (keyset cursor).

        The token encodes the monotonic per-user fix sequence of the last
        fix served, so walks are stable under interleaved ingest (new
        fixes only append past the cursor) and under pruning (sequences
        are never reused; a pruned-away cursor simply resumes at the
        oldest retained fix after it).
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        history = self._fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        first_seq = self._first_seq[user_id]
        start = 0
        if cursor is not None:
            parts = decode_token(cursor, expected_len=1)
            last_seq = parts[0]
            if not isinstance(last_seq, int) or isinstance(last_seq, bool):
                raise ValidationError(f"malformed tracking cursor {cursor!r}")
            # history[i] has sequence first_seq + i; resume strictly after
            # the cursor (a pruned-away cursor clamps to the oldest fix).
            start = max(0, last_seq - first_seq + 1)
        page = history[start : start + limit]
        more = start + limit < len(history)
        next_token = encode_token([first_seq + start + limit - 1]) if more and page else None
        return Page(items=page, next_token=next_token)

    def latest_fix(self, user_id: str) -> GpsFix:
        """The most recent fix for a user."""
        history = self._fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[-1]

    def earliest_fix(self, user_id: str) -> GpsFix:
        """The oldest retained fix for a user."""
        history = self._fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[0]

    def latest_position(self, user_id: str) -> GeoPoint:
        """The most recent position for a user."""
        return self.latest_fix(user_id).position

    def users_within(self, center: GeoPoint, radius_m: float) -> List[str]:
        """Users whose latest position is within ``radius_m`` of ``center``."""
        self._flush_latest_index()
        return [
            row["user_id"]
            for row, _distance in self._latest_table.find_within("position", center, radius_m)
        ]

    def users_in_bbox(self, box: BoundingBox) -> List[str]:
        """Users whose latest position falls inside the box."""
        self._flush_latest_index()
        return sorted(
            row["user_id"] for row in self._latest_table.find_in_bbox("position", box)
        )

    def prune_before(self, user_id: str, cutoff_s: float) -> int:
        """Drop fixes older than ``cutoff_s`` (the paper's periodic compaction).

        Returns the number of fixes removed.  The user's latest position in
        the spatial index is unaffected because the newest fix is never
        pruned by a cutoff that keeps at least one fix; if every fix is older
        than the cutoff the most recent one is kept so the user stays
        queryable.
        """
        history = self._fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        keep_from = len(history)
        for index, fix in enumerate(history):
            if fix.timestamp_s >= cutoff_s:
                keep_from = index
                break
        if keep_from >= len(history):
            keep_from = len(history) - 1
        removed = keep_from
        if removed:
            self._fixes[user_id] = history[keep_from:]
            self._first_seq[user_id] += removed
        return removed

    def clear_user(self, user_id: str) -> None:
        """Remove all fixes for a user."""
        if user_id not in self._fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        del self._fixes[user_id]
        del self._first_seq[user_id]
        self._pending_latest.pop(user_id, None)
        if user_id in self._latest_table:
            self._latest_table.delete(user_id)

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable payload of every user's history and counters."""
        return {
            "version": SNAPSHOT_VERSION,
            "users": {
                user_id: {
                    "added": self._added_counts.get(user_id, 0),
                    "first_seq": self._first_seq[user_id],
                    "fixes": [
                        [
                            fix.timestamp_s,
                            fix.position.lat,
                            fix.position.lon,
                            fix.speed_mps,
                            fix.accuracy_m,
                        ]
                        for fix in history
                    ],
                }
                for user_id, history in self._fixes.items()
            },
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot` payload, replacing all tracking state."""
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported tracking snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        self._fixes = {}
        self._first_seq = {}
        self._added_counts = {}
        self._pending_latest = {}
        self._latest_table.restore([])
        for user_id, state in payload.get("users", {}).items():
            history = [
                GpsFix(
                    user_id,
                    timestamp_s,
                    GeoPoint(lat, lon),
                    speed_mps=speed_mps,
                    accuracy_m=accuracy_m,
                )
                for timestamp_s, lat, lon, speed_mps, accuracy_m in state["fixes"]
            ]
            self._fixes[user_id] = history
            self._first_seq[user_id] = state["first_seq"]
            self._added_counts[user_id] = state["added"]
            if history:
                self._pending_latest[user_id] = history[-1]

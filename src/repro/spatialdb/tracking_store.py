"""Storage for raw GPS fixes arriving from the client apps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional

from repro.errors import NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint, GridIndex
from repro.util.validation import require_finite, require_non_empty


@dataclass(frozen=True)
class GpsFix:
    """A single GPS observation from a listener's device."""

    user_id: str
    timestamp_s: float
    position: GeoPoint
    speed_mps: float = 0.0
    accuracy_m: float = 10.0

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require_finite(self.timestamp_s, "timestamp_s")
        if self.speed_mps < 0:
            raise ValidationError(f"speed_mps must be >= 0, got {self.speed_mps}")
        if self.accuracy_m <= 0:
            raise ValidationError(f"accuracy_m must be > 0, got {self.accuracy_m}")


class TrackingStore:
    """Per-user time-ordered GPS fix storage with a spatial index.

    The spatial index tracks only each user's *latest* position, which is
    what the recommender needs for "who is near location X right now"
    queries; historical fixes are kept in time order per user for trajectory
    mining.
    """

    def __init__(self, *, index_cell_size_m: float = 1000.0) -> None:
        self._fixes: Dict[str, List[GpsFix]] = {}
        self._latest_index: GridIndex[str] = GridIndex(index_cell_size_m)
        self._added_counts: Dict[str, int] = {}
        # Latest positions not yet reflected in the spatial index.  Ingest is
        # write-heavy (every fix moves its user) while "who is near X" reads
        # are rare, so index maintenance is deferred: add_fix records the
        # position with one dict write and the spatial queries fold the
        # pending moves in before answering.
        self._pending_latest: Dict[str, GeoPoint] = {}

    def add_fix(self, fix: GpsFix) -> None:
        """Append a fix for a user (must be time-ordered per user)."""
        history = self._fixes.setdefault(fix.user_id, [])
        if history and fix.timestamp_s < history[-1].timestamp_s:
            raise ValidationError(
                "fixes must be appended in non-decreasing timestamp order: "
                f"{fix.timestamp_s} < {history[-1].timestamp_s} for user {fix.user_id!r}"
            )
        history.append(fix)
        self._added_counts[fix.user_id] = self._added_counts.get(fix.user_id, 0) + 1
        self._pending_latest[fix.user_id] = fix.position

    def _flush_latest_index(self) -> None:
        """Fold pending latest-position moves into the spatial index."""
        if self._pending_latest:
            insert = self._latest_index.insert
            for user_id, position in self._pending_latest.items():
                insert(user_id, position)
            self._pending_latest.clear()

    def add_fixes(self, fixes: Iterable[GpsFix]) -> int:
        """Append many fixes; returns the number added."""
        count = 0
        for fix in fixes:
            self.add_fix(fix)
            count += 1
        return count

    def user_ids(self) -> List[str]:
        """Users that have at least one fix."""
        return sorted(self._fixes.keys())

    def fixes_added(self, user_id: str) -> int:
        """Fixes *ever* added for a user (monotonic; unaffected by pruning).

        This is the dirty-tracking version counter the streaming compactor
        compares across passes: a user whose counter has not moved has no
        new data and can be skipped without re-mining anything.
        """
        return self._added_counts.get(user_id, 0)

    def fix_count(self, user_id: Optional[str] = None) -> int:
        """Number of stored fixes for one user or for all users."""
        if user_id is not None:
            return len(self._fixes.get(user_id, []))
        return sum(len(history) for history in self._fixes.values())

    def fixes_for(
        self,
        user_id: str,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[GpsFix]:
        """Fixes for a user, optionally restricted to ``[start_s, end_s)``."""
        history = self._fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        result = history
        if start_s is not None:
            result = [fix for fix in result if fix.timestamp_s >= start_s]
        if end_s is not None:
            result = [fix for fix in result if fix.timestamp_s < end_s]
        return list(result)

    def latest_fix(self, user_id: str) -> GpsFix:
        """The most recent fix for a user."""
        history = self._fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[-1]

    def earliest_fix(self, user_id: str) -> GpsFix:
        """The oldest retained fix for a user."""
        history = self._fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[0]

    def latest_position(self, user_id: str) -> GeoPoint:
        """The most recent position for a user."""
        return self.latest_fix(user_id).position

    def users_within(self, center: GeoPoint, radius_m: float) -> List[str]:
        """Users whose latest position is within ``radius_m`` of ``center``."""
        self._flush_latest_index()
        return [user_id for user_id, _distance in self._latest_index.query_radius(center, radius_m)]

    def users_in_bbox(self, box: BoundingBox) -> List[str]:
        """Users whose latest position falls inside the box."""
        self._flush_latest_index()
        return sorted(self._latest_index.query_bbox(box))

    def prune_before(self, user_id: str, cutoff_s: float) -> int:
        """Drop fixes older than ``cutoff_s`` (the paper's periodic compaction).

        Returns the number of fixes removed.  The user's latest position in
        the spatial index is unaffected because the newest fix is never
        pruned by a cutoff that keeps at least one fix; if every fix is older
        than the cutoff the most recent one is kept so the user stays
        queryable.
        """
        history = self._fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        kept = [fix for fix in history if fix.timestamp_s >= cutoff_s]
        if not kept:
            kept = [history[-1]]
        removed = len(history) - len(kept)
        self._fixes[user_id] = kept
        return removed

    def clear_user(self, user_id: str) -> None:
        """Remove all fixes for a user."""
        if user_id not in self._fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        del self._fixes[user_id]
        self._pending_latest.pop(user_id, None)
        if user_id in self._latest_index:
            self._latest_index.remove(user_id)

"""Storage for raw GPS fixes arriving from the client apps."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional

from repro.errors import NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint
from repro.storage import (
    Column,
    IndexSpec,
    Page,
    Schema,
    ShardedDatabase,
    decode_token,
    encode_token,
)
from repro.util.validation import require_finite, require_non_empty

#: Version stamp of :meth:`TrackingStore.snapshot` payloads.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class GpsFix:
    """A single GPS observation from a listener's device."""

    user_id: str
    timestamp_s: float
    position: GeoPoint
    speed_mps: float = 0.0
    accuracy_m: float = 10.0

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require_finite(self.timestamp_s, "timestamp_s")
        if self.speed_mps < 0:
            raise ValidationError(f"speed_mps must be >= 0, got {self.speed_mps}")
        if self.accuracy_m <= 0:
            raise ValidationError(f"accuracy_m must be > 0, got {self.accuracy_m}")


class _TrackingShard:
    """One shard's partition of the per-user tracking state.

    Everything a user's ingest touches lives in exactly one of these, so a
    per-shard worker is the state's single writer (see
    ``docs/ARCHITECTURE.md``, "Sharding & parallel workers").
    """

    __slots__ = ("fixes", "first_seq", "added", "pending", "table")

    def __init__(self, table) -> None:
        self.fixes: Dict[str, List[GpsFix]] = {}
        self.first_seq: Dict[str, int] = {}
        self.added: Dict[str, int] = {}
        #: Latest positions not yet reflected in the ``latest`` table (see
        #: class docstring of :class:`TrackingStore`: ingest defers the
        #: upsert, reads flush).
        self.pending: Dict[str, GpsFix] = {}
        self.table = table


class TrackingStore:
    """Per-user time-ordered GPS fix storage over the tracking DB.

    Fix histories are the primary data (append-only per user, time
    ordered); everything derived is declarative storage-engine state: the
    ``latest`` table carries one row per user with their most recent
    position and a **spatial** :class:`~repro.storage.spec.IndexSpec` over
    it, which is what "who is near location X right now" queries hit.

    With ``shards > 1`` the store partitions by crc32 of the user id
    behind a :class:`~repro.storage.sharding.ShardedDatabase`: each shard
    owns its users' histories, counters and ``latest`` table, so one
    worker per shard can ingest in parallel without any two threads ever
    writing the same shard (the single-writer-per-shard invariant).
    Spatial and listing reads fan out and merge; per-user reads route to
    the owning shard.  ``shards == 1`` (the default) is exactly the old
    single-database behaviour.

    Ingest is write-heavy (every fix moves its user) while spatial reads
    are rare, so the latest-row upsert is deferred: ``add_fix`` records
    the position with one dict write and the spatial queries fold pending
    moves into the table before answering.
    """

    def __init__(self, *, index_cell_size_m: float = 1000.0, shards: int = 1) -> None:
        def create_tables(db) -> None:
            db.create_table(
                Schema(
                    name="latest",
                    primary_key="user_id",
                    columns=[
                        Column("user_id", str),
                        Column("lat", float),
                        Column("lon", float),
                        Column("timestamp_s", float),
                    ],
                    indexes=[
                        IndexSpec(
                            "position",
                            kind="spatial",
                            columns=("lat", "lon"),
                            cell_size_m=index_cell_size_m,
                        )
                    ],
                )
            )

        self._db = ShardedDatabase(
            "tracking", shards=shards, shard_key="user_id", create_tables=create_tables
        )
        self._shards = [
            _TrackingShard(self._db.shard(index).table("latest"))
            for index in range(shards)
        ]
        #: Durability hook: prunes and user clears mutate the dict-backed
        #: histories directly (not the ``latest`` table), so the WAL
        #: records them as domain operations and replays them here.
        self._op_listener = None

    def set_op_listener(self, listener) -> None:
        """Install the WAL's domain-operation listener (``None`` clears)."""
        self._op_listener = listener

    def _log_op(self, op: str, data) -> None:
        if self._op_listener is not None:
            self._op_listener(op, data)

    @property
    def database(self) -> ShardedDatabase:
        """The tracking DB router (exposed for dashboards and stats)."""
        return self._db

    @property
    def shard_count(self) -> int:
        """Number of shards the store is partitioned into."""
        return len(self._shards)

    def shard_of(self, user_id: str) -> int:
        """The shard owning a user (stable crc32 assignment)."""
        return self._db.shard_of(user_id)

    def _shard(self, user_id: str) -> _TrackingShard:
        return self._shards[self._db.shard_of(user_id)]

    def add_fix(self, fix: GpsFix) -> None:
        """Append a fix for a user (must be time-ordered per user)."""
        shard = self._shard(fix.user_id)
        history = shard.fixes.setdefault(fix.user_id, [])
        if history and fix.timestamp_s < history[-1].timestamp_s:
            raise ValidationError(
                "fixes must be appended in non-decreasing timestamp order: "
                f"{fix.timestamp_s} < {history[-1].timestamp_s} for user {fix.user_id!r}"
            )
        history.append(fix)
        count = shard.added.get(fix.user_id, 0) + 1
        shard.added[fix.user_id] = count
        if len(history) == 1:
            shard.first_seq[fix.user_id] = count
        shard.pending[fix.user_id] = fix

    def _flush_latest_index(self) -> None:
        """Fold pending latest-position moves into every ``latest`` table."""
        for shard in self._shards:
            if shard.pending:
                upsert = shard.table.upsert
                for user_id, fix in shard.pending.items():
                    upsert(
                        {
                            "user_id": user_id,
                            "lat": fix.position.lat,
                            "lon": fix.position.lon,
                            "timestamp_s": fix.timestamp_s,
                        }
                    )
                shard.pending.clear()

    def add_fixes(self, fixes: Iterable[GpsFix]) -> int:
        """Append many fixes; returns the number added."""
        count = 0
        for fix in fixes:
            self.add_fix(fix)
            count += 1
        return count

    def user_ids(self) -> List[str]:
        """Users that have at least one fix."""
        if len(self._shards) == 1:
            return sorted(self._shards[0].fixes.keys())
        merged: List[str] = []
        for shard in self._shards:
            merged.extend(shard.fixes.keys())
        return sorted(merged)

    def user_ids_for_shard(self, shard: int) -> List[str]:
        """One shard's tracked users (lets per-shard passes skip the rest)."""
        return sorted(self._shards[shard].fixes.keys())

    def fixes_added(self, user_id: str) -> int:
        """Fixes *ever* added for a user (monotonic; unaffected by pruning).

        This is the dirty-tracking version counter the streaming compactor
        compares across passes: a user whose counter has not moved has no
        new data and can be skipped without re-mining anything.
        """
        return self._shard(user_id).added.get(user_id, 0)

    def fix_count(self, user_id: Optional[str] = None) -> int:
        """Number of stored fixes for one user or for all users."""
        if user_id is not None:
            return len(self._shard(user_id).fixes.get(user_id, []))
        return sum(
            len(history) for shard in self._shards for history in shard.fixes.values()
        )

    def fixes_for(
        self,
        user_id: str,
        *,
        start_s: Optional[float] = None,
        end_s: Optional[float] = None,
    ) -> List[GpsFix]:
        """Fixes for a user, optionally restricted to ``[start_s, end_s)``."""
        history = self._shard(user_id).fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        result = history
        if start_s is not None:
            result = [fix for fix in result if fix.timestamp_s >= start_s]
        if end_s is not None:
            result = [fix for fix in result if fix.timestamp_s < end_s]
        return list(result)

    def fixes_page(
        self, user_id: str, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Page[GpsFix]:
        """One time-ordered page of a user's fix history (keyset cursor).

        The token encodes the monotonic per-user fix sequence of the last
        fix served, so walks are stable under interleaved ingest (new
        fixes only append past the cursor) and under pruning (sequences
        are never reused; a pruned-away cursor simply resumes at the
        oldest retained fix after it).  Per-user pages live entirely on
        the owning shard, so the token format is identical across shard
        layouts.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        shard = self._shard(user_id)
        history = shard.fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        first_seq = shard.first_seq[user_id]
        start = 0
        if cursor is not None:
            parts = decode_token(cursor, expected_len=1)
            last_seq = parts[0]
            if not isinstance(last_seq, int) or isinstance(last_seq, bool):
                raise ValidationError(f"malformed tracking cursor {cursor!r}")
            # history[i] has sequence first_seq + i; resume strictly after
            # the cursor (a pruned-away cursor clamps to the oldest fix).
            start = max(0, last_seq - first_seq + 1)
        page = history[start : start + limit]
        more = start + limit < len(history)
        next_token = encode_token([first_seq + start + limit - 1]) if more and page else None
        return Page(items=page, next_token=next_token)

    def latest_fix(self, user_id: str) -> GpsFix:
        """The most recent fix for a user."""
        history = self._shard(user_id).fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[-1]

    def earliest_fix(self, user_id: str) -> GpsFix:
        """The oldest retained fix for a user."""
        history = self._shard(user_id).fixes.get(user_id)
        if not history:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        return history[0]

    def latest_position(self, user_id: str) -> GeoPoint:
        """The most recent position for a user."""
        return self.latest_fix(user_id).position

    def users_within(self, center: GeoPoint, radius_m: float) -> List[str]:
        """Users whose latest position is within ``radius_m`` of ``center``.

        Nearest first.  Each shard's spatial index answers independently
        and the per-shard results (already nearest-first) merge with a
        stable sort on distance, so a single-shard store returns exactly
        the unsharded order.
        """
        self._flush_latest_index()
        hits: List[tuple] = []
        for shard in self._shards:
            hits.extend(shard.table.find_within("position", center, radius_m))
        hits.sort(key=lambda pair: pair[1])
        return [row["user_id"] for row, _distance in hits]

    def users_in_bbox(self, box: BoundingBox) -> List[str]:
        """Users whose latest position falls inside the box."""
        self._flush_latest_index()
        return sorted(
            row["user_id"]
            for shard in self._shards
            for row in shard.table.find_in_bbox("position", box)
        )

    def prune_before(self, user_id: str, cutoff_s: float) -> int:
        """Drop fixes older than ``cutoff_s`` (the paper's periodic compaction).

        Returns the number of fixes removed.  The user's latest position in
        the spatial index is unaffected because the newest fix is never
        pruned by a cutoff that keeps at least one fix; if every fix is older
        than the cutoff the most recent one is kept so the user stays
        queryable.
        """
        shard = self._shard(user_id)
        history = shard.fixes.get(user_id)
        if history is None:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        keep_from = len(history)
        for index, fix in enumerate(history):
            if fix.timestamp_s >= cutoff_s:
                keep_from = index
                break
        if keep_from >= len(history):
            keep_from = len(history) - 1
        removed = keep_from
        if removed:
            shard.fixes[user_id] = history[keep_from:]
            shard.first_seq[user_id] += removed
            self._log_op("prune_before", {"user_id": user_id, "cutoff_s": cutoff_s})
        return removed

    def clear_user(self, user_id: str) -> None:
        """Remove all fixes for a user."""
        shard = self._shard(user_id)
        if user_id not in shard.fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        del shard.fixes[user_id]
        del shard.first_seq[user_id]
        shard.pending.pop(user_id, None)
        if user_id in shard.table:
            shard.table.delete(user_id)
        self._log_op("clear_user", {"user_id": user_id})

    # Snapshot / restore ---------------------------------------------------

    @staticmethod
    def _user_payload(shard: _TrackingShard, user_id: str, history: List[GpsFix]) -> Dict:
        return {
            "added": shard.added.get(user_id, 0),
            "first_seq": shard.first_seq[user_id],
            "fixes": [
                [
                    fix.timestamp_s,
                    fix.position.lat,
                    fix.position.lon,
                    fix.speed_mps,
                    fix.accuracy_m,
                ]
                for fix in history
            ],
        }

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable payload of every user's history and counters.

        The flat per-user map is shard-layout independent: :meth:`restore`
        routes each user by the crc32 shard key, so a snapshot captured
        under one shard count loads into any other — the rebalancing path.
        """
        users: Dict[str, Any] = {}
        for shard in self._shards:
            for user_id, history in shard.fixes.items():
                users[user_id] = self._user_payload(shard, user_id, history)
        return {"version": SNAPSHOT_VERSION, "users": users}

    def snapshot_shard(self, shard: int) -> Dict[str, Any]:
        """One shard's users in the same payload format as :meth:`snapshot`."""
        state = self._shards[shard]
        return {
            "version": SNAPSHOT_VERSION,
            "users": {
                user_id: self._user_payload(state, user_id, history)
                for user_id, history in state.fixes.items()
            },
        }

    @staticmethod
    def _history_from(user_id: str, state: Dict[str, Any]) -> List[GpsFix]:
        return [
            GpsFix(
                user_id,
                timestamp_s,
                GeoPoint(lat, lon),
                speed_mps=speed_mps,
                accuracy_m=accuracy_m,
            )
            for timestamp_s, lat, lon, speed_mps, accuracy_m in state["fixes"]
        ]

    def _load_user(self, shard: _TrackingShard, user_id: str, state: Dict[str, Any]) -> None:
        history = self._history_from(user_id, state)
        shard.fixes[user_id] = history
        shard.first_seq[user_id] = state["first_seq"]
        shard.added[user_id] = state["added"]
        if history:
            shard.pending[user_id] = history[-1]

    @staticmethod
    def _check_payload(payload: Dict[str, Any]) -> None:
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported tracking snapshot payload (want version {SNAPSHOT_VERSION})"
            )

    def restore(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot` payload, replacing all tracking state.

        Users are re-routed to their shard under *this* store's layout, so
        restoring into a different shard count rebalances the data.
        """
        self._check_payload(payload)
        for shard in self._shards:
            shard.fixes = {}
            shard.first_seq = {}
            shard.added = {}
            shard.pending = {}
            shard.table.restore([])
        for user_id, state in payload.get("users", {}).items():
            self._load_user(self._shard(user_id), user_id, state)

    def restore_shard(self, shard: int, payload: Dict[str, Any]) -> None:
        """Replace one shard's state without touching the other shards.

        Every user in the payload must route to ``shard`` under this
        store's layout (moving users between layouts goes through the
        re-routing :meth:`restore`).
        """
        self._check_payload(payload)
        users = payload.get("users", {})
        for user_id in users:
            if self.shard_of(user_id) != shard:
                raise ValidationError(
                    f"user {user_id!r} does not belong to tracking shard {shard}"
                )
        state = self._shards[shard]
        state.fixes = {}
        state.first_seq = {}
        state.added = {}
        state.pending = {}
        state.table.restore([])
        for user_id, user_state in users.items():
            self._load_user(state, user_id, user_state)

"""Higher-level spatial queries over the tracking store.

These are the queries the recommender and the control dashboard issue:
"which listeners are currently near this point of interest", "how far has
this listener driven in the last N minutes", "what area does this listener's
recent movement cover".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import NotFoundError
from repro.geo import BoundingBox, GeoPoint
from repro.geo.geodesy import haversine_m, path_length_m
from repro.spatialdb.tracking_store import GpsFix, TrackingStore


@dataclass(frozen=True)
class MovementSummary:
    """Summary of a listener's recent movement used by the dashboard."""

    user_id: str
    fix_count: int
    distance_m: float
    duration_s: float
    mean_speed_mps: float
    bounding_box: Optional[BoundingBox]

    @property
    def is_moving(self) -> bool:
        """Heuristic: the listener is moving if mean speed exceeds 1 m/s."""
        return self.mean_speed_mps > 1.0


class SpatialQueryEngine:
    """Read-only analytical queries over a :class:`TrackingStore`."""

    def __init__(self, store: TrackingStore) -> None:
        self._store = store

    def listeners_near(self, center: GeoPoint, radius_m: float) -> List[str]:
        """User ids whose latest position is within the radius, nearest first."""
        return self._store.users_within(center, radius_m)

    def distance_travelled_m(
        self, user_id: str, *, start_s: Optional[float] = None, end_s: Optional[float] = None
    ) -> float:
        """Path length of a user's fixes in the given time range."""
        fixes = self._store.fixes_for(user_id, start_s=start_s, end_s=end_s)
        return path_length_m(fix.position for fix in fixes)

    def movement_summary(
        self, user_id: str, *, window_s: Optional[float] = None
    ) -> MovementSummary:
        """Summarize a user's recent movement.

        ``window_s`` restricts the summary to the trailing window ending at
        the user's latest fix; ``None`` summarizes the full history.
        """
        all_fixes = self._store.fixes_for(user_id)
        if not all_fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        if window_s is not None:
            cutoff = all_fixes[-1].timestamp_s - window_s
            fixes = [fix for fix in all_fixes if fix.timestamp_s >= cutoff]
        else:
            fixes = all_fixes
        distance = path_length_m(fix.position for fix in fixes)
        duration = fixes[-1].timestamp_s - fixes[0].timestamp_s if len(fixes) > 1 else 0.0
        mean_speed = distance / duration if duration > 0 else 0.0
        box = BoundingBox.from_points(fix.position for fix in fixes) if fixes else None
        return MovementSummary(
            user_id=user_id,
            fix_count=len(fixes),
            distance_m=distance,
            duration_s=duration,
            mean_speed_mps=mean_speed,
            bounding_box=box,
        )

    def displacement_m(self, user_id: str, window_s: float) -> float:
        """Straight-line displacement over the trailing window.

        A small displacement with a large travelled distance indicates the
        user is circling (e.g. looking for parking), which the proactive
        recommender treats differently from a commute.
        """
        fixes = self._store.fixes_for(user_id)
        if not fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        cutoff = fixes[-1].timestamp_s - window_s
        window_fixes = [fix for fix in fixes if fix.timestamp_s >= cutoff]
        if len(window_fixes) < 2:
            return 0.0
        return haversine_m(window_fixes[0].position, window_fixes[-1].position)

    def current_speed_mps(self, user_id: str, *, smoothing_fixes: int = 3) -> float:
        """Estimate the user's current speed from the trailing fixes."""
        fixes = self._store.fixes_for(user_id)
        if not fixes:
            raise NotFoundError(f"no tracking data for user {user_id!r}")
        recent: List[GpsFix] = fixes[-max(2, smoothing_fixes):]
        if len(recent) < 2:
            return recent[-1].speed_mps
        distance = path_length_m(fix.position for fix in recent)
        duration = recent[-1].timestamp_s - recent[0].timestamp_s
        if duration <= 0:
            return recent[-1].speed_mps
        return distance / duration

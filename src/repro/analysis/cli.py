"""The ``python -m repro.analysis`` command line.

Typical invocations::

    python -m repro.analysis src/repro                  # text report, exit 1 on new findings
    python -m repro.analysis src/repro --format=github  # PR annotations (CI)
    python -m repro.analysis src/repro --format=json --report=analysis-report.json
    python -m repro.analysis src/repro --write-baseline # grandfather current findings
    python -m repro.analysis --list-rules

The baseline defaults to ``analysis_baseline.json`` under the analysis
root (the current directory unless ``--root`` is given); a missing file
is an empty baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import AnalysisResult, run_analysis
from repro.analysis.report import FORMATS, render, report_payload
from repro.analysis.rules import ALL_RULES


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis",
        description="AST-based architectural-invariant linter for the repro tree.",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src/repro"],
        help="files or directories to analyze (default: src/repro)",
    )
    parser.add_argument(
        "--format",
        choices=FORMATS,
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--root",
        default=".",
        help="analysis root findings/baseline paths are relative to (default: .)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help=f"baseline file (default: <root>/{DEFAULT_BASELINE_NAME})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file (report every finding as new)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="write current findings to the baseline file and exit 0",
    )
    parser.add_argument(
        "--report",
        default=None,
        help="also write the JSON report to this path (any --format)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    return parser


def run(
    paths: Sequence[str],
    *,
    root: str = ".",
    baseline_path: Optional[str] = None,
    use_baseline: bool = True,
) -> AnalysisResult:
    """Programmatic entry point mirroring the CLI defaults."""
    root_path = Path(root)
    resolved = (
        Path(baseline_path)
        if baseline_path is not None
        else root_path / DEFAULT_BASELINE_NAME
    )
    baseline = Baseline.load(resolved) if use_baseline else Baseline()
    return run_analysis(
        [Path(path) for path in paths],
        root=root_path,
        rules=ALL_RULES,
        baseline=baseline,
    )


def main(argv: Optional[List[str]] = None, *, stdout=None) -> int:
    out = stdout if stdout is not None else sys.stdout
    args = build_parser().parse_args(argv)

    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.name} ({rule.severity}): {rule.summary}", file=out)
        return 0

    root_path = Path(args.root)
    baseline_file = (
        Path(args.baseline)
        if args.baseline is not None
        else root_path / DEFAULT_BASELINE_NAME
    )

    result = run(
        args.paths,
        root=args.root,
        baseline_path=str(baseline_file),
        use_baseline=not (args.no_baseline or args.write_baseline),
    )

    if args.report:
        Path(args.report).write_text(
            json.dumps(report_payload(result), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )

    if args.write_baseline:
        Baseline.from_findings(
            result.findings, reason="grandfathered by --write-baseline"
        ).save(baseline_file)
        print(
            f"wrote {len(result.findings)} finding(s) to {baseline_file}",
            file=out,
        )
        return 0

    print(render(result, args.format), file=out)
    return 0 if result.ok else 1

"""Findings and rule descriptors for the static-analysis suite.

A :class:`Finding` is one violation of one architectural invariant,
anchored to a file and line.  Its ``key`` is a rule-specific *stable*
identifier (an attribute name, a topic, an error class — never a line
number) so baseline entries keep matching as unrelated lines move.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable

SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"


@dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""

    rule: str
    severity: str
    path: str  #: analysis-root-relative posix path
    line: int
    message: str
    key: str  #: stable identifier used for baseline matching

    def to_payload(self) -> Dict[str, Any]:
        """JSON-serializable form (the report/baseline entry shape)."""
        return {
            "rule": self.rule,
            "severity": self.severity,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "key": self.key,
        }


@dataclass(frozen=True)
class Rule:
    """One invariant: a name, a severity, and a check over project facts."""

    name: str
    severity: str
    summary: str
    check: Callable[[Any], Iterable[Finding]] = field(compare=False)

    def finding(self, *, path: str, line: int, message: str, key: str) -> Finding:
        """Build a finding carrying this rule's name and severity."""
        return Finding(
            rule=self.name,
            severity=self.severity,
            path=path,
            line=line,
            message=message,
            key=key,
        )

"""shard-safety: per-user state is reached through the shard router only.

The single-writer-per-shard invariant (``docs/ARCHITECTURE.md``) holds
because every per-user read/write routes through
``ShardedDatabase.table_for``/``for_key`` (crc32 ``shard_of``
assignment) and fan-out reads go through the sanctioned ``tables()`` /
``page_by_index`` merges.  Code in the per-user-store packages that
grabs a sibling shard's ``Database`` directly — ``.shard(i)`` with an
unrouted index, or subscripting the raw ``databases``/``_dbs`` list —
bypasses the router and can put two writers on one shard.

Allowed without routing evidence:

* ``__init__`` bodies — construction enumerates every shard to build
  per-shard structures;
* snapshot/restore/replay-family methods — layout-level operations
  (rebalancing, shard moves, WAL replay) legitimately address shards by
  index;
* index expressions that carry routing evidence: a call to ``shard_of``
  (module function or method) or an identifier whose name mentions
  ``shard`` (the routed index a caller computed via ``shard_of``).
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

#: Packages holding per-user stores (relpath directory components).
SCOPED_DIRS = ("users/", "spatialdb/", "streaming/")

#: Method-name fragments whose scopes may address shards by index.
_LAYOUT_METHODS = ("__init__", "snapshot", "restore", "replay", "rebalance")

#: Subscripted attributes that expose raw per-shard databases.
_RAW_DB_BASES = ("databases", "_dbs")


def _in_scope(relpath: str) -> bool:
    parts = relpath.split("/")
    return any(
        "/".join(parts[i:]).startswith(prefix)
        for prefix in SCOPED_DIRS
        for i in range(len(parts))
    )


def _layout_scope(scope: str) -> bool:
    method = scope.rsplit(".", 1)[-1]
    return any(fragment in method for fragment in _LAYOUT_METHODS)


def _routed(index_names, index_calls) -> bool:
    if any("shard" in name.lower() for name in index_names):
        return True
    return any("shard_of" in callee for callee in index_calls)


def check(project) -> Iterator[Finding]:
    for module in project.modules:
        if not _in_scope(module.relpath):
            continue
        for call in module.calls:
            if call.callee.split(".")[-1] != "shard" or call.num_args != 1:
                continue
            if _layout_scope(call.scope):
                continue
            # Routing evidence in the single argument: literal never routes;
            # an expression was captured as NON_LITERAL — inspect the raw
            # subscripts/calls recorded at the same line for shard_of use.
            evidence = [
                subscript
                for subscript in module.subscripts
                if subscript.line == call.line
            ]
            routed = any(
                _routed(subscript.index_names, subscript.index_calls)
                for subscript in evidence
            )
            nested = any(
                other.line == call.line and "shard_of" in other.callee
                for other in module.calls
            )
            if routed or nested:
                continue
            yield RULE.finding(
                path=module.relpath,
                line=call.line,
                message=(
                    f"{call.callee}(...) in {call.scope} addresses a shard "
                    f"directly outside construction/snapshot/restore — route "
                    f"through table_for()/for_key() (crc32 shard_of) instead "
                    f"of reaching into a sibling shard's Database"
                ),
                key=f"shard-call:{call.scope}",
            )
        for subscript in module.subscripts:
            base_tail = subscript.base.split(".")[-1]
            if base_tail not in _RAW_DB_BASES:
                continue
            if _layout_scope(subscript.scope):
                continue
            if _routed(subscript.index_names, subscript.index_calls):
                continue
            yield RULE.finding(
                path=module.relpath,
                line=subscript.line,
                message=(
                    f"{subscript.base}[...] in {subscript.scope} indexes the "
                    f"raw per-shard database list without shard_of routing — "
                    f"use table_for()/for_key() or pass a routed shard index"
                ),
                key=f"raw-dbs:{subscript.scope}",
            )


RULE = Rule(
    name="shard-safety",
    severity=SEVERITY_ERROR,
    summary=(
        "per-user stores reach tables via ShardedDatabase routing, never a "
        "sibling shard's Database directly"
    ),
    check=check,
)

"""metric-naming: registered metric names follow the one house convention.

Telemetry names are an API: dashboards, the Prometheus text endpoint and
the CI benches all select series by name, so drift ("walBytes",
"wal_append_count") quietly breaks panels without failing any test.
Registration sites (``registry.counter/gauge/histogram`` and
``latency_histogram``) with a literal name argument must satisfy:

* names match ``^[a-z][a-z0-9_]*$`` (Prometheus-safe snake_case);
* counters end in ``_total`` (monotonic-counter convention);
* histograms end in a unit suffix — ``_seconds`` or ``_bytes``.

Wrappers passing a name variable through are out of scope (the literal
at the original call site is what gets checked).
"""

from __future__ import annotations

import re
from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*$")
_KINDS = {
    "counter": ("_total",),
    "histogram": ("_seconds", "_bytes"),
    "latency_histogram": ("_seconds",),
    "gauge": (),
}


def check(project) -> Iterator[Finding]:
    for module in project.modules:
        for call in module.calls:
            kind = call.callee.split(".")[-1]
            suffixes = _KINDS.get(kind)
            if suffixes is None or not call.args:
                continue
            name = call.args[0]
            if not isinstance(name, str):
                continue
            if not _NAME_RE.match(name):
                yield RULE.finding(
                    path=module.relpath,
                    line=call.line,
                    message=(
                        f"metric name '{name}' is not snake_case "
                        f"([a-z0-9_], leading letter)"
                    ),
                    key=f"case:{name}",
                )
            elif suffixes and not name.endswith(suffixes):
                wanted = " or ".join(suffixes)
                yield RULE.finding(
                    path=module.relpath,
                    line=call.line,
                    message=(
                        f"{kind} metric '{name}' must end in {wanted} — "
                        f"the suffix is how dashboards and the Prometheus "
                        f"endpoint tell kinds and units apart"
                    ),
                    key=f"suffix:{name}",
                )


RULE = Rule(
    name="metric-naming",
    severity=SEVERITY_ERROR,
    summary=(
        "metric registrations use snake_case names; counters end _total, "
        "histograms carry a unit suffix"
    ),
    check=check,
)

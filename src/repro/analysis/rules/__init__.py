"""The rule registry: one module per architectural invariant.

Adding a rule (see ``docs/ARCHITECTURE.md``, "Static analysis"): write a
module defining a ``RULE`` (:class:`~repro.analysis.findings.Rule`)
whose ``check(project)`` yields findings over extracted facts, then list
it here.  Rules must be deterministic, must anchor findings with stable
``key``\\ s (names, not line numbers) and must stay quiet on trees that
lack their subject (fixture trees exercise rules in isolation).
"""

from __future__ import annotations

from typing import List

from repro.analysis.findings import Rule
from repro.analysis.rules import (
    determinism,
    error_mapping,
    metric_naming,
    shard_safety,
    snapshot_completeness,
    wal_channels,
)

#: Every registered rule, in the order reports list them.
ALL_RULES: List[Rule] = [
    snapshot_completeness.RULE,
    wal_channels.RULE,
    determinism.RULE,
    shard_safety.RULE,
    error_mapping.RULE,
    metric_naming.RULE,
]

__all__ = ["ALL_RULES"]

"""snapshot-completeness: every store attribute round-trips or is exempted.

Any class defining both ``snapshot`` and ``restore`` is a store that
promises round-trip durability.  Every *mutable* attribute its
``__init__`` creates (dict/list/set displays, comprehensions, container
constructors, ``[...] * n`` slot lists) must be touched somewhere in the
snapshot/restore method family — including helpers those methods call on
``self`` — or be named in the class's ``SNAPSHOT_EXEMPT`` tuple.

Exemption is a *declaration*, not an escape hatch: telemetry and wiring
(listeners, caches rebuilt on demand) are excluded from snapshots by
design, and that design decision must be written down next to the class
so a reviewer — and this rule — can see it.  A ``SNAPSHOT_EXEMPT`` entry
naming an attribute ``__init__`` does not create is flagged as stale.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List

from repro.analysis.facts import ClassFacts, ModuleFacts, reachable_methods
from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

#: Class-level constant naming attributes deliberately excluded from the
#: snapshot round-trip.
EXEMPT_CONST = "SNAPSHOT_EXEMPT"

#: Methods that root the snapshot/restore closure.
ROOT_METHODS = (
    "snapshot",
    "restore",
    "snapshot_shard",
    "restore_shard",
    "snapshot_state",
    "restore_state",
    "snapshot_bytes",
    "restore_bytes",
    "restore_snapshot",
)


def _is_store(cls: ClassFacts) -> bool:
    has_snapshot = any(name.startswith("snapshot") for name in cls.methods)
    has_restore = any(name.startswith("restore") for name in cls.methods)
    return has_snapshot and has_restore


def _covered_attrs(cls: ClassFacts) -> set:
    roots: List[str] = [name for name in cls.methods if name.startswith(ROOT_METHODS)]
    covered: set = set()
    for name in reachable_methods(cls, roots):
        covered |= cls.methods[name].self_attrs
    return covered


def _exemptions(cls: ClassFacts) -> Iterable[str]:
    declared = cls.consts.get(EXEMPT_CONST)
    if isinstance(declared, tuple):
        return declared
    return ()


def check(project) -> Iterator[Finding]:
    for module in project.modules:
        for cls in module.classes.values():
            if not _is_store(cls):
                continue
            covered = _covered_attrs(cls)
            exempt = set(_exemptions(cls))
            for attr in cls.init_attrs.values():
                if not attr.mutable or attr.name in covered or attr.name in exempt:
                    continue
                yield RULE.finding(
                    path=module.relpath,
                    line=attr.line,
                    message=(
                        f"{cls.name}.__init__ creates mutable attribute "
                        f"'{attr.name}' but neither snapshot() nor restore() "
                        f"(nor their helpers) touch it — add it to the "
                        f"round-trip or declare it in {cls.name}.{EXEMPT_CONST} "
                        f"with a comment saying why it is excluded"
                    ),
                    key=f"{cls.name}.{attr.name}",
                )
            for name in sorted(exempt - set(cls.init_attrs)):
                yield RULE.finding(
                    path=module.relpath,
                    line=cls.line,
                    message=(
                        f"{cls.name}.{EXEMPT_CONST} names '{name}' but "
                        f"__init__ creates no such attribute — stale exemption"
                    ),
                    key=f"{cls.name}.stale.{name}",
                )


RULE = Rule(
    name="snapshot-completeness",
    severity=SEVERITY_ERROR,
    summary=(
        "mutable store attributes must round-trip through snapshot()/restore() "
        "or be declared in SNAPSHOT_EXEMPT"
    ),
    check=check,
)

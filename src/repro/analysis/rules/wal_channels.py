"""wal-channel-audit: every published bus topic has a declared durability fate.

``storage/wal.py`` declares two module-level sets:

* ``WAL_LOGGED_TOPICS`` — topics announcing a mutation some WAL record
  kind captures (a table change channel, a domain op, a server op);
* ``WAL_SUPPRESSED_TOPICS`` — topics that are notifications over derived
  or process-local state, deliberately absent from the log because
  replaying the logged channels rewrites (or never needs) that state.

Every string-literal topic passed to ``publish(...)`` anywhere in the
tree must appear in exactly one of the two sets.  A topic in neither set
is the dangerous case the rule exists for: someone added a domain event
whose state change recovery cannot rebuild, and nobody decided whether
the WAL should carry it.  A topic in both sets is a contradiction, and a
declared topic nobody publishes is stale documentation — both flagged.

Publishing a non-literal topic defeats the audit, so it is flagged too;
constructor-injected topics should carry an inline suppression naming
the literal default that *is* declared.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.facts import NON_LITERAL
from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

WAL_MODULE = "storage/wal.py"
LOGGED_CONST = "WAL_LOGGED_TOPICS"
SUPPRESSED_CONST = "WAL_SUPPRESSED_TOPICS"


def _topic_sets(wal):
    logged = wal.consts.get(LOGGED_CONST)
    suppressed = wal.consts.get(SUPPRESSED_CONST)
    logged = set(logged) if isinstance(logged, tuple) else None
    suppressed = set(suppressed) if isinstance(suppressed, tuple) else None
    return logged, suppressed


def check(project) -> Iterator[Finding]:
    wal = project.module_at(WAL_MODULE)
    if wal is None:
        # Nothing to audit against — fixture trees without a WAL are fine.
        return
    logged, suppressed = _topic_sets(wal)
    for const, value in ((LOGGED_CONST, logged), (SUPPRESSED_CONST, suppressed)):
        if value is None:
            yield RULE.finding(
                path=wal.relpath,
                line=1,
                message=(
                    f"{WAL_MODULE} must declare {const} as a literal set of "
                    f"topic strings — the channel audit has nothing to check "
                    f"against"
                ),
                key=f"missing:{const}",
            )
    if logged is None or suppressed is None:
        return

    for topic in sorted(logged & suppressed):
        yield RULE.finding(
            path=wal.relpath,
            line=1,
            message=(
                f"topic '{topic}' is declared both WAL-logged and "
                f"WAL-suppressed — pick one"
            ),
            key=f"both:{topic}",
        )

    declared = logged | suppressed
    published: set = set()
    for module in project.modules:
        for call in module.calls:
            if not call.callee.split(".")[-1] == "publish" or call.num_args < 2:
                continue
            topic = call.args[0] if call.args else NON_LITERAL
            if topic is NON_LITERAL:
                yield RULE.finding(
                    path=module.relpath,
                    line=call.line,
                    message=(
                        f"publish() in {call.scope} passes a non-literal topic "
                        f"— the channel audit cannot see it; publish a literal "
                        f"or suppress with the declared default named in the "
                        f"reason"
                    ),
                    key=f"dynamic:{call.scope}",
                )
                continue
            if not isinstance(topic, str):
                continue
            published.add(topic)
            if topic not in declared:
                yield RULE.finding(
                    path=module.relpath,
                    line=call.line,
                    message=(
                        f"topic '{topic}' is published but declared in neither "
                        f"{LOGGED_CONST} nor {SUPPRESSED_CONST} "
                        f"({WAL_MODULE}) — decide whether replay must rebuild "
                        f"the state this event announces, then declare it"
                    ),
                    key=f"undeclared:{topic}",
                )

    # A declared-but-unpublished topic is only stale if nothing else in the
    # tree references it either — a constructor default or subscribe site
    # (outside wal.py itself, whose declarations don't count) keeps it alive.
    mentioned: set = set()
    for module in project.modules:
        if module is not wal:
            mentioned |= module.string_literals
    for topic in sorted(declared - published - mentioned):
        yield RULE.finding(
            path=wal.relpath,
            line=1,
            message=(
                f"topic '{topic}' is declared in the WAL channel sets but "
                f"nothing publishes or references it — remove the stale "
                f"declaration"
            ),
            key=f"stale:{topic}",
        )


RULE = Rule(
    name="wal-channel-audit",
    severity=SEVERITY_ERROR,
    summary=(
        "every publish() topic must be declared WAL-logged or WAL-suppressed "
        "in storage/wal.py"
    ),
    check=check,
)

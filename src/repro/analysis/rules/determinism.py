"""determinism: no wall clock, no ambient randomness on byte-stable paths.

The load generator's scripts, the WAL's frames, snapshot codecs and
everything feeding a sha256 fingerprint are *byte-deterministic by
contract*: the same seed must produce the same bytes on every run, or
replay fingerprints and WAL parity checks stop meaning anything.  On the
scoped paths this rule bans:

* wall-clock reads — ``time.time()``, ``time.time_ns()``,
  ``datetime.now()/utcnow()/today()``, ``date.today()``;
* ambient randomness — module-level ``random.*`` functions (they share
  one unseeded global generator), argless ``random.Random()``,
  ``random.SystemRandom``, ``uuid.uuid4()``, ``os.urandom()``.

Seeded randomness flows through :class:`repro.util.rng.DeterministicRng`
(the one sanctioned wrapper, itself outside the scope) and time is
injected as explicit timestamps or clock callables.  ``perf_counter`` is
deliberately allowed: latency *measurement* is fine, it never feeds an
artifact's bytes.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

#: Module paths (relpath suffixes) under the byte-determinism contract.
SCOPED_SUFFIXES = (
    "storage/wal.py",
    "storage/database.py",
    "storage/table.py",
    "storage/sharding.py",
    "util/ids.py",
)
SCOPED_DIRS = ("loadgen/",)

#: The sanctioned randomness wrapper — exempt (it seeds random.Random).
EXEMPT_SUFFIXES = ("util/rng.py",)

_BANNED_CALLS = {
    "time.time": "wall-clock read",
    "time.time_ns": "wall-clock read",
    "datetime.datetime.now": "wall-clock read",
    "datetime.datetime.utcnow": "wall-clock read",
    "datetime.datetime.today": "wall-clock read",
    "datetime.date.today": "wall-clock read",
    "uuid.uuid4": "non-deterministic id",
    "os.urandom": "OS entropy",
    "random.SystemRandom": "OS entropy",
}


def _in_scope(relpath: str) -> bool:
    if any(relpath.endswith(suffix) for suffix in EXEMPT_SUFFIXES):
        return False
    if any(relpath.endswith(suffix) for suffix in SCOPED_SUFFIXES):
        return True
    parts = relpath.split("/")
    return any(
        "/".join(parts[i:]).startswith(prefix)
        for prefix in SCOPED_DIRS
        for i in range(len(parts))
    )


def check(project) -> Iterator[Finding]:
    for module in project.modules:
        if not _in_scope(module.relpath):
            continue
        for call in module.calls:
            qualified = call.qualified
            reason = _BANNED_CALLS.get(qualified)
            if reason is None and qualified.startswith("random."):
                tail = qualified[len("random.") :]
                if tail == "Random":
                    if call.num_args == 0:
                        reason = "unseeded generator"
                elif "." not in tail:
                    reason = "shared unseeded global generator"
            if reason is None:
                continue
            yield RULE.finding(
                path=module.relpath,
                line=call.line,
                message=(
                    f"{qualified}() in {call.scope} is non-deterministic "
                    f"({reason}) on a byte-stable path — use a seeded "
                    f"repro.util.rng.DeterministicRng or an injected clock"
                ),
                key=f"{qualified}@{call.scope}",
            )


RULE = Rule(
    name="determinism",
    severity=SEVERITY_ERROR,
    summary=(
        "no wall-clock or unseeded randomness in loadgen/, the WAL, snapshot "
        "codecs or fingerprint-feeding code"
    ),
    check=check,
)

"""error-mapping-coverage: every ReproError subclass has a map_error branch.

The gateway maps the library's exception taxonomy onto HTTP statuses in
exactly one place — ``map_error`` in ``pipeline/gateway/middleware.py``.
An error class that function never names silently falls into the
catch-all branch, which is how a new ``ReproError`` subclass ends up
surfacing as an undifferentiated 500 nobody decided on.  This rule walks
the hierarchy declared in ``errors.py`` (direct and transitive
subclasses of ``ReproError``) and requires each one to appear by name in
``map_error``'s body.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.findings import SEVERITY_ERROR, Finding, Rule

ERRORS_MODULE = "errors.py"
GATEWAY_MODULE = "pipeline/gateway/middleware.py"
BASE_CLASS = "ReproError"
MAPPER = "map_error"


def _error_classes(errors):
    """ReproError subclasses (transitively) declared in errors.py."""
    known = {BASE_CLASS}
    classes = {}
    # Iterate until fixpoint so subclasses-of-subclasses resolve regardless
    # of declaration order.
    changed = True
    while changed:
        changed = False
        for cls in errors.classes.values():
            if cls.name in known or not any(base in known for base in cls.bases):
                continue
            known.add(cls.name)
            classes[cls.name] = cls
            changed = True
    return classes


def check(project) -> Iterator[Finding]:
    errors = project.module_at(ERRORS_MODULE)
    gateway = project.module_at(GATEWAY_MODULE)
    if errors is None or gateway is None:
        # Fixture trees without the error taxonomy or the gateway are fine.
        return
    mapper = gateway.functions.get(MAPPER)
    if mapper is None:
        yield RULE.finding(
            path=gateway.relpath,
            line=1,
            message=(
                f"{GATEWAY_MODULE} defines no module-level {MAPPER}() — the "
                f"error taxonomy has no wire mapping to audit"
            ),
            key=f"missing:{MAPPER}",
        )
        return
    for name, cls in sorted(_error_classes(errors).items()):
        if name in mapper.names:
            continue
        yield RULE.finding(
            path=errors.relpath,
            line=cls.line,
            message=(
                f"{name} has no branch in {MAPPER}() "
                f"({GATEWAY_MODULE}) — it falls through to the catch-all "
                f"status; add an explicit mapping and a wire-level test"
            ),
            key=name,
        )


RULE = Rule(
    name="error-mapping-coverage",
    severity=SEVERITY_ERROR,
    summary=(
        "every ReproError subclass in errors.py is named in the gateway's "
        "map_error()"
    ),
    check=check,
)

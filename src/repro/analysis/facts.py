"""The shared fact-extraction core of the static-analysis suite.

Rules never touch the raw AST: one walker per module distils the program
facts the architectural invariants are phrased over — classes with the
attributes their ``__init__`` creates, per-method ``self`` usage, every
call with its dotted callee (import-resolved) and literal string
arguments (``publish("topic")``, ``counter("name_total")``), subscripts
of shard containers, literal module/class constants (the WAL channel
sets, per-class exemption lists) and ``# repro: allow[rule]`` inline
suppressions.  Each rule is then a declarative check over these facts,
in the rule-over-extracted-facts style of the instance-spanning
constraint checkers in PAPERS.md.

Extraction is deliberately syntactic: no imports are executed, no module
state is touched — the analyzer can run over a broken tree and over test
fixtures alike.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple

#: Sentinel for a call argument that is present but not a literal.
NON_LITERAL = object()

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rule>[a-z0-9?*-]+)\]\s*(?P<reason>.*)$"
)
_SUPPRESSION_MARKER_RE = re.compile(r"#\s*repro:")

#: Call-expression names treated as building a mutable container.
_MUTABLE_CONSTRUCTORS = {
    "dict",
    "list",
    "set",
    "bytearray",
    "defaultdict",
    "OrderedDict",
    "Counter",
    "deque",
}


@dataclass(frozen=True)
class Suppression:
    """One ``# repro: allow[rule] reason`` marker.

    The marker silences findings of ``rule`` on its own line and on the
    line directly below (so a comment-only line can annotate the
    statement under it).  ``rule`` may be ``*`` to match any rule.
    """

    rule: str
    line: int
    reason: str


@dataclass(frozen=True)
class Call:
    """One call expression with its resolved callee and literal args."""

    callee: str  #: dotted source spelling, e.g. ``self._bus.publish``
    qualified: str  #: import-resolved spelling, e.g. ``datetime.datetime.now``
    line: int
    args: Tuple[Any, ...]  #: positional args: literal value or NON_LITERAL
    num_args: int  #: total positional + keyword argument count
    scope: str  #: ``Class.method``, ``Class``, ``function`` or ``<module>``


@dataclass(frozen=True)
class SubscriptFact:
    """One subscript expression ``base[index]`` over a dotted base."""

    base: str  #: dotted spelling of the subscripted value
    index_names: Tuple[str, ...]  #: identifiers appearing in the index
    index_calls: Tuple[str, ...]  #: dotted callees invoked in the index
    line: int
    scope: str


@dataclass(frozen=True)
class AttrInit:
    """One ``self.<name> = ...`` assignment inside ``__init__``."""

    name: str
    line: int
    mutable: bool  #: the assigned expression builds a mutable container


@dataclass
class MethodFacts:
    """Per-method ``self`` usage and referenced names."""

    name: str
    line: int
    self_attrs: set = field(default_factory=set)  #: ``self.X`` (read or write)
    self_calls: set = field(default_factory=set)  #: ``self.m(...)`` callees
    names: set = field(default_factory=set)  #: bare identifiers in the body


@dataclass
class ClassFacts:
    """One class: bases, ``__init__`` attributes, methods, literal consts."""

    name: str
    line: int
    bases: Tuple[str, ...]
    init_attrs: Dict[str, AttrInit] = field(default_factory=dict)
    methods: Dict[str, MethodFacts] = field(default_factory=dict)
    consts: Dict[str, Any] = field(default_factory=dict)


@dataclass
class ModuleFacts:
    """Everything the rules need to know about one source file."""

    path: Path
    relpath: str  #: posix path relative to the analysis root
    classes: Dict[str, ClassFacts] = field(default_factory=dict)
    functions: Dict[str, MethodFacts] = field(default_factory=dict)
    consts: Dict[str, Any] = field(default_factory=dict)
    calls: List[Call] = field(default_factory=list)
    subscripts: List[SubscriptFact] = field(default_factory=list)
    string_literals: set = field(default_factory=set)  #: every str constant
    suppressions: List[Suppression] = field(default_factory=list)
    malformed_suppressions: List[int] = field(default_factory=list)
    parse_error: Optional[str] = None


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` spelling of a Name/Attribute chain, or None."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def _literal(node: ast.AST) -> Any:
    if isinstance(node, ast.Constant):
        return node.value
    return NON_LITERAL


def _literal_str_collection(node: ast.AST) -> Optional[Tuple[str, ...]]:
    """The string elements of a literal set/tuple/list (or frozenset(...))."""
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee in ("frozenset", "set", "tuple") and len(node.args) == 1:
            return _literal_str_collection(node.args[0])
        if callee in ("frozenset", "set", "tuple") and not node.args:
            return ()
        return None
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        values: List[str] = []
        for element in node.elts:
            if isinstance(element, ast.Constant) and isinstance(element.value, str):
                values.append(element.value)
            else:
                return None
        return tuple(values)
    return None


def _is_mutable_value(node: ast.AST) -> bool:
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(node, ast.Call):
        callee = dotted_name(node.func)
        if callee is not None and callee.split(".")[-1] in _MUTABLE_CONSTRUCTORS:
            return True
        return False
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mult):
        # ``[None] * shards`` — a per-shard slot list.
        return _is_mutable_value(node.left) or _is_mutable_value(node.right)
    if isinstance(node, ast.IfExp):
        return _is_mutable_value(node.body) or _is_mutable_value(node.orelse)
    return False


class _ImportTable:
    """Maps local names to their imported dotted origins."""

    def __init__(self) -> None:
        self._origins: Dict[str, str] = {}

    def visit(self, node: ast.AST) -> None:
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                origin = alias.name if alias.asname else alias.name.split(".")[0]
                self._origins[local] = origin
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                self._origins[local] = f"{node.module}.{alias.name}"

    def qualify(self, dotted: str) -> str:
        head, _, rest = dotted.partition(".")
        origin = self._origins.get(head)
        if origin is None:
            return dotted
        return f"{origin}.{rest}" if rest else origin


def _scan_suppressions(source: str, module: ModuleFacts) -> None:
    # Only real COMMENT tokens count — a docstring *describing* the marker
    # syntax must not register as a suppression.
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, IndentationError):
        return
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        comment = token.string
        if not _SUPPRESSION_MARKER_RE.search(comment):
            continue
        number = token.start[0]
        match = _SUPPRESSION_RE.search(comment)
        if match is None:
            module.malformed_suppressions.append(number)
            continue
        module.suppressions.append(
            Suppression(
                rule=match.group("rule"),
                line=number,
                reason=match.group("reason").strip(),
            )
        )


class _ModuleWalker(ast.NodeVisitor):
    def __init__(self, module: ModuleFacts) -> None:
        self.module = module
        self.imports = _ImportTable()
        self._class: Optional[ClassFacts] = None
        self._method: Optional[MethodFacts] = None

    # Scope bookkeeping ----------------------------------------------------

    def _scope(self) -> str:
        if self._class is not None and self._method is not None:
            return f"{self._class.name}.{self._method.name}"
        if self._class is not None:
            return self._class.name
        if self._method is not None:
            return self._method.name
        return "<module>"

    # Visitors -------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        self.imports.visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        self.imports.visit(node)

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        facts = ClassFacts(
            name=node.name,
            line=node.lineno,
            bases=tuple(
                base for base in (dotted_name(b) for b in node.bases) if base
            ),
        )
        if self._class is None:
            self.module.classes[node.name] = facts
        previous, self._class = self._class, facts
        self.generic_visit(node)
        self._class = previous

    def _visit_function(self, node) -> None:
        facts = MethodFacts(name=node.name, line=node.lineno)
        previous, self._method = self._method, facts
        owner = self._class
        if owner is not None and node.name not in owner.methods:
            owner.methods[node.name] = facts
        elif owner is None and previous is None:
            self.module.functions[node.name] = facts
        self.generic_visit(node)
        self._method = previous

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        self._record_assignment(node.targets, node.value, node.lineno)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._record_assignment([node.target], node.value, node.lineno)
        self.generic_visit(node)

    def _record_assignment(self, targets, value, line: int) -> None:
        for target in targets:
            if (
                isinstance(target, ast.Attribute)
                and isinstance(target.value, ast.Name)
                and target.value.id == "self"
                and self._class is not None
                and self._method is not None
                and self._method.name == "__init__"
                and target.attr not in self._class.init_attrs
            ):
                self._class.init_attrs[target.attr] = AttrInit(
                    name=target.attr, line=line, mutable=_is_mutable_value(value)
                )
            elif isinstance(target, ast.Name):
                collection = _literal_str_collection(value)
                literal = _literal(value)
                recorded: Any = None
                if collection is not None:
                    recorded = collection
                elif literal is not NON_LITERAL:
                    recorded = literal
                else:
                    continue
                if self._class is not None and self._method is None:
                    self._class.consts[target.id] = recorded
                elif self._class is None and self._method is None:
                    self.module.consts[target.id] = recorded

    def visit_Attribute(self, node: ast.Attribute) -> None:
        if (
            isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and self._method is not None
        ):
            self._method.self_attrs.add(node.attr)
        self.generic_visit(node)

    def visit_Name(self, node: ast.Name) -> None:
        if self._method is not None:
            self._method.names.add(node.id)
        self.generic_visit(node)

    def visit_Expr(self, node: ast.Expr) -> None:
        if isinstance(node.value, ast.Constant) and isinstance(node.value.value, str):
            return  # docstring / bare string statement — not a code reference
        self.generic_visit(node)

    def visit_Constant(self, node: ast.Constant) -> None:
        if isinstance(node.value, str):
            self.module.string_literals.add(node.value)

    def visit_Call(self, node: ast.Call) -> None:
        callee = dotted_name(node.func)
        if callee is not None:
            args = tuple(_literal(arg) for arg in node.args[:3])
            self.module.calls.append(
                Call(
                    callee=callee,
                    qualified=self.imports.qualify(callee),
                    line=node.lineno,
                    args=args,
                    num_args=len(node.args) + len(node.keywords),
                    scope=self._scope(),
                )
            )
            if (
                self._method is not None
                and callee.startswith("self.")
                and "." not in callee[5:]
            ):
                self._method.self_calls.add(callee[5:])
        self.generic_visit(node)

    def visit_Subscript(self, node: ast.Subscript) -> None:
        base = dotted_name(node.value)
        if base is not None:
            names = tuple(
                sorted(
                    {
                        child.id
                        for child in ast.walk(node.slice)
                        if isinstance(child, ast.Name)
                    }
                    | {
                        child.attr
                        for child in ast.walk(node.slice)
                        if isinstance(child, ast.Attribute)
                    }
                )
            )
            calls = tuple(
                sorted(
                    {
                        spelled
                        for child in ast.walk(node.slice)
                        if isinstance(child, ast.Call)
                        for spelled in [dotted_name(child.func)]
                        if spelled
                    }
                )
            )
            self.module.subscripts.append(
                SubscriptFact(
                    base=base,
                    index_names=names,
                    index_calls=calls,
                    line=node.lineno,
                    scope=self._scope(),
                )
            )
        self.generic_visit(node)


def extract_module(path: Path, root: Path) -> ModuleFacts:
    """Parse one source file into its fact bundle (never raises on bad syntax)."""
    try:
        relpath = path.resolve().relative_to(root.resolve()).as_posix()
    except ValueError:
        relpath = path.as_posix()
    module = ModuleFacts(path=path, relpath=relpath)
    try:
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=str(path))
    except (OSError, SyntaxError, ValueError) as exc:
        module.parse_error = str(exc)
        return module
    _scan_suppressions(source, module)
    _ModuleWalker(module).visit(tree)
    return module


def reachable_methods(cls: ClassFacts, roots: List[str]) -> set:
    """Transitive closure of ``self.m()`` calls starting from ``roots``."""
    seen: set = set()
    frontier = [name for name in roots if name in cls.methods]
    while frontier:
        name = frontier.pop()
        if name in seen:
            continue
        seen.add(name)
        for callee in cls.methods[name].self_calls:
            if callee in cls.methods and callee not in seen:
                frontier.append(callee)
    return seen

"""The checked-in baseline of grandfathered findings.

A baseline entry matches a finding on ``(rule, path, key)`` — never on
line numbers, so entries survive unrelated edits.  Policy (see
``docs/ARCHITECTURE.md``, "Static analysis"): the baseline exists to land
the linter without blocking on historical findings; every entry must
carry a ``reason`` and the list should only ever shrink — new code gets
fixed or explicitly suppressed inline, not baselined.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.errors import ValidationError

BASELINE_VERSION = 1

#: Default baseline filename, resolved against the analysis root.
DEFAULT_BASELINE_NAME = "analysis_baseline.json"


class Baseline:
    """The set of grandfathered findings, keyed on (rule, path, key)."""

    def __init__(self, entries: Optional[Iterable[Dict]] = None) -> None:
        self._entries: Dict[Tuple[str, str, str], Dict] = {}
        for entry in entries or []:
            self._entries[(entry["rule"], entry["path"], entry["key"])] = dict(entry)

    def __len__(self) -> int:
        return len(self._entries)

    def matches(self, finding: Finding) -> bool:
        """Whether a finding is grandfathered by this baseline."""
        return (finding.rule, finding.path, finding.key) in self._entries

    def entries(self) -> List[Dict]:
        """All entries, sorted for stable serialization."""
        return [self._entries[key] for key in sorted(self._entries)]

    @classmethod
    def from_findings(cls, findings: Iterable[Finding], *, reason: str = "") -> "Baseline":
        """A baseline grandfathering exactly the given findings."""
        entries = []
        for finding in findings:
            entry = {
                "rule": finding.rule,
                "path": finding.path,
                "key": finding.key,
                "message": finding.message,
            }
            if reason:
                entry["reason"] = reason
            entries.append(entry)
        return cls(entries)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        """Read a baseline file (a missing file is an empty baseline)."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise ValidationError(f"unreadable baseline file {path}: {exc}") from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") != BASELINE_VERSION
            or not isinstance(payload.get("entries"), list)
        ):
            raise ValidationError(
                f"baseline file {path} is not a version-{BASELINE_VERSION} baseline"
            )
        return cls(payload["entries"])

    def save(self, path: Path) -> None:
        """Write the baseline as stable, reviewable JSON."""
        payload = {"version": BASELINE_VERSION, "entries": self.entries()}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )

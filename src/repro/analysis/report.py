"""Report rendering for analysis results: text, json and github formats.

``text`` is the human terminal view, ``json`` the machine artifact CI
uploads, and ``github`` emits workflow commands
(``::error file=...,line=...::message``) so findings annotate the pull
request diff inline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.analysis.engine import AnalysisResult
from repro.analysis.findings import Finding

FORMATS = ("text", "json", "github")


def _summary(result: AnalysisResult) -> str:
    return (
        f"{len(result.project.modules)} modules, {len(result.rules)} rules: "
        f"{len(result.new)} new finding(s), {len(result.baselined)} baselined, "
        f"{len(result.suppressed)} suppressed (baseline size {result.baseline_size})"
    )


def render_text(result: AnalysisResult) -> str:
    lines: List[str] = []
    for finding in result.new:
        lines.append(
            f"{finding.path}:{finding.line}: {finding.severity} "
            f"[{finding.rule}] {finding.message}"
        )
    for finding in result.baselined:
        lines.append(
            f"{finding.path}:{finding.line}: baselined "
            f"[{finding.rule}] {finding.message}"
        )
    lines.append(_summary(result))
    lines.append("clean" if result.ok else "FAIL: new findings above")
    return "\n".join(lines)


def render_github(result: AnalysisResult) -> str:
    """GitHub workflow commands — new findings annotate the diff."""
    lines: List[str] = []
    for finding in result.new:
        level = "error" if finding.severity == "error" else "warning"
        message = f"[{finding.rule}] {finding.message}".replace("\n", " ")
        lines.append(
            f"::{level} file={finding.path},line={finding.line},"
            f"title=repro.analysis::{message}"
        )
    lines.append(f"::notice title=repro.analysis::{_summary(result)}")
    return "\n".join(lines)


def report_payload(result: AnalysisResult) -> Dict[str, Any]:
    """The machine-readable report (what ``--report`` writes)."""

    def dump(findings: List[Finding]) -> List[Dict[str, Any]]:
        return [finding.to_payload() for finding in findings]

    return {
        "version": 1,
        "modules": len(result.project.modules),
        "rules": [
            {"name": rule.name, "severity": rule.severity, "summary": rule.summary}
            for rule in result.rules
        ],
        "new": dump(result.new),
        "baselined": dump(result.baselined),
        "suppressed": dump(result.suppressed),
        "baseline_size": result.baseline_size,
        "ok": result.ok,
    }


def render_json(result: AnalysisResult) -> str:
    return json.dumps(report_payload(result), indent=2, sort_keys=True)


def render(result: AnalysisResult, fmt: str) -> str:
    if fmt == "text":
        return render_text(result)
    if fmt == "json":
        return render_json(result)
    if fmt == "github":
        return render_github(result)
    raise ValueError(f"unknown report format {fmt!r} (want one of {FORMATS})")

"""The analysis engine: collect facts, run rules, apply suppressions/baseline.

The pipeline is deterministic and side-effect free:

1. discover ``.py`` files under the requested paths;
2. extract one :class:`~repro.analysis.facts.ModuleFacts` per file;
3. run every registered rule over the whole project's facts (rules are
   project-scoped — cross-module invariants like the WAL channel audit
   need the full picture);
4. drop findings silenced by an inline ``# repro: allow[rule] reason``
   on the finding's line or the line above;
5. emit ``suppression-hygiene`` findings for malformed, reason-less or
   unused suppressions (a stale ``allow`` is itself a latent bug);
6. split the survivors into *new* vs *baselined* against the checked-in
   baseline — CI fails on any new finding.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence

from repro.analysis.baseline import Baseline
from repro.analysis.facts import ModuleFacts, Suppression, extract_module
from repro.analysis.findings import SEVERITY_WARNING, Finding, Rule

#: Rule name carried by engine-emitted suppression hygiene findings.
SUPPRESSION_RULE = "suppression-hygiene"


@dataclass
class Project:
    """All module facts under one analysis root."""

    root: Path
    modules: List[ModuleFacts] = field(default_factory=list)

    def module_at(self, suffix: str) -> Optional[ModuleFacts]:
        """The module whose relpath ends with ``suffix`` (posix), if any."""
        for module in self.modules:
            if module.relpath == suffix or module.relpath.endswith("/" + suffix):
                return module
        return None


@dataclass
class AnalysisResult:
    """Everything one analysis run produced."""

    project: Project
    rules: List[Rule]
    new: List[Finding]  #: actionable findings (not suppressed, not baselined)
    baselined: List[Finding]
    suppressed: List[Finding]
    baseline_size: int

    @property
    def findings(self) -> List[Finding]:
        """New + baselined findings (everything except suppressed)."""
        return self.new + self.baselined

    @property
    def ok(self) -> bool:
        """Whether the tree is clean modulo the baseline."""
        return not self.new


def discover_files(paths: Sequence[Path]) -> List[Path]:
    """Every ``.py`` file under the given files/directories, sorted."""
    found: List[Path] = []
    for path in paths:
        path = Path(path)
        if path.is_dir():
            found.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            found.append(path)
    unique: Dict[str, Path] = {}
    for path in found:
        unique[path.resolve().as_posix()] = path
    return [unique[key] for key in sorted(unique)]


def collect(paths: Sequence[Path], *, root: Path) -> Project:
    """Extract facts for every source file under ``paths``."""
    project = Project(root=Path(root))
    for path in discover_files(paths):
        project.modules.append(extract_module(path, project.root))
    return project


def _suppression_for(
    suppressions: List[Suppression], finding: Finding
) -> Optional[Suppression]:
    for suppression in suppressions:
        if suppression.rule not in (finding.rule, "*"):
            continue
        if suppression.line in (finding.line, finding.line - 1):
            return suppression
    return None


def _hygiene_findings(project: Project, used: set) -> Iterable[Finding]:
    for module in project.modules:
        for line in module.malformed_suppressions:
            yield Finding(
                rule=SUPPRESSION_RULE,
                severity=SEVERITY_WARNING,
                path=module.relpath,
                line=line,
                message=(
                    "malformed suppression marker — use "
                    "'# repro: allow[rule-name] reason'"
                ),
                key=f"malformed:{line}",
            )
        for suppression in module.suppressions:
            if not suppression.reason:
                yield Finding(
                    rule=SUPPRESSION_RULE,
                    severity=SEVERITY_WARNING,
                    path=module.relpath,
                    line=suppression.line,
                    message=(
                        f"suppression of [{suppression.rule}] has no reason — "
                        "every allow must say why"
                    ),
                    key=f"no-reason:{suppression.rule}",
                )
            elif (module.relpath, suppression.line) not in used:
                yield Finding(
                    rule=SUPPRESSION_RULE,
                    severity=SEVERITY_WARNING,
                    path=module.relpath,
                    line=suppression.line,
                    message=(
                        f"unused suppression of [{suppression.rule}] — "
                        "the finding it silenced is gone; remove the marker"
                    ),
                    key=f"unused:{suppression.rule}",
                )


def run_analysis(
    paths: Sequence[Path],
    *,
    root: Path,
    rules: Sequence[Rule],
    baseline: Optional[Baseline] = None,
) -> AnalysisResult:
    """Run the full pipeline and classify every finding."""
    project = collect(paths, root=root)
    baseline = baseline if baseline is not None else Baseline()

    raw: List[Finding] = []
    for rule in rules:
        raw.extend(rule.check(project))

    by_path: Dict[str, List[Suppression]] = {
        module.relpath: module.suppressions for module in project.modules
    }
    kept: List[Finding] = []
    suppressed: List[Finding] = []
    used: set = set()
    for finding in raw:
        suppression = _suppression_for(by_path.get(finding.path, []), finding)
        if suppression is not None:
            suppressed.append(finding)
            used.add((finding.path, suppression.line))
        else:
            kept.append(finding)

    kept.extend(_hygiene_findings(project, used))
    kept.sort(key=lambda f: (f.path, f.line, f.rule, f.key))

    new = [finding for finding in kept if not baseline.matches(finding)]
    baselined = [finding for finding in kept if baseline.matches(finding)]
    return AnalysisResult(
        project=project,
        rules=list(rules),
        new=new,
        baselined=baselined,
        suppressed=suppressed,
        baseline_size=len(baseline),
    )

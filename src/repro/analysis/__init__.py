"""``repro.analysis`` — AST-based architectural-invariant linter.

Nine PRs of conventions — snapshot round-trips, WAL channel coverage,
byte-determinism, shard routing, one error-mapping table — checked
declaratively instead of by reviewer memory: a shared fact-extraction
core (:mod:`repro.analysis.facts`) and independent rule plugins
(:mod:`repro.analysis.rules`), each turning one "non-negotiable
invariant" from ROADMAP/ARCHITECTURE into a CI failure.

Run it with ``python -m repro.analysis src/repro``; see
``docs/ARCHITECTURE.md`` ("Static analysis") for the rule catalogue and
the suppression/baseline policy.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, Optional, Tuple

from repro.analysis.baseline import DEFAULT_BASELINE_NAME, Baseline
from repro.analysis.engine import AnalysisResult, Project, run_analysis
from repro.analysis.facts import ModuleFacts, extract_module
from repro.analysis.findings import Finding, Rule
from repro.analysis.rules import ALL_RULES

__all__ = [
    "ALL_RULES",
    "AnalysisResult",
    "Baseline",
    "Finding",
    "ModuleFacts",
    "Project",
    "Rule",
    "extract_module",
    "run_analysis",
    "tooling_summary",
]


def _locate_source_root() -> Tuple[Optional[Path], Optional[Path]]:
    """(repo root, src/repro dir) for a dev checkout, else (None, None)."""
    package_dir = Path(__file__).resolve().parent.parent  # src/repro
    src_dir = package_dir.parent
    repo_root = src_dir.parent
    if src_dir.name == "src" and package_dir.name == "repro":
        return repo_root, package_dir
    return None, None


def tooling_summary(*, scan: bool = False) -> Dict[str, Any]:
    """The dev-tooling summary the ops dashboard renders.

    Cheap by default: rule count plus the checked-in baseline's size.
    With ``scan=True`` (and a dev checkout to scan) the full analyzer
    runs over ``src/repro`` and the summary also carries finding counts.
    """
    summary: Dict[str, Any] = {
        "rules": len(ALL_RULES),
        "baseline": None,
        "findings": None,
        "new": None,
    }
    repo_root, package_dir = _locate_source_root()
    if repo_root is None:
        return summary
    baseline_path = repo_root / DEFAULT_BASELINE_NAME
    baseline = Baseline.load(baseline_path) if baseline_path.exists() else Baseline()
    summary["baseline"] = len(baseline)
    if scan and package_dir is not None:
        result = run_analysis(
            [package_dir], root=repo_root, rules=ALL_RULES, baseline=baseline
        )
        summary["findings"] = len(result.findings)
        summary["new"] = len(result.new)
    return summary

"""Secondary (non-unique) indexes for in-memory tables."""

from __future__ import annotations

from collections import defaultdict
from typing import Any, Callable, Dict, List, Set


class SecondaryIndex:
    """A hash index from a computed key to the set of primary keys.

    The key function is applied to a row when it is inserted or removed; the
    index never stores row contents, only primary keys, so the owning table
    remains the single source of truth.
    """

    def __init__(self, name: str, key_func: Callable[[Dict[str, Any]], Any]) -> None:
        self._name = name
        self._key_func = key_func
        self._buckets: Dict[Any, Set[Any]] = defaultdict(set)

    @property
    def name(self) -> str:
        """The index name."""
        return self._name

    def add(self, primary_key: Any, row: Dict[str, Any]) -> None:
        """Index a newly inserted row."""
        self._buckets[self._make_key(row)].add(primary_key)

    def remove(self, primary_key: Any, row: Dict[str, Any]) -> None:
        """Remove a row that is being deleted or replaced."""
        key = self._make_key(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.discard(primary_key)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> List[Any]:
        """Primary keys whose index key equals ``value``."""
        return sorted(self._buckets.get(self._normalize(value), set()), key=repr)

    def distinct_keys(self) -> List[Any]:
        """All distinct index keys currently present."""
        return sorted(self._buckets.keys(), key=repr)

    def clear(self) -> None:
        """Drop all entries."""
        self._buckets.clear()

    def _make_key(self, row: Dict[str, Any]) -> Any:
        return self._normalize(self._key_func(row))

    @staticmethod
    def _normalize(value: Any) -> Any:
        # Lists are a common (unhashable) cell value; normalize to tuples so
        # they can be used as index keys.
        if isinstance(value, list):
            return tuple(value)
        return value

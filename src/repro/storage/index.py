"""Secondary index structures for in-memory tables.

Three kinds back the declarative :class:`~repro.storage.spec.IndexSpec`:

* :class:`HashIndex` — equality buckets (the seed's only index kind);
* :class:`SortedIndex` — a bisect-backed ordered index serving range
  queries, ordered walks in either direction and keyset cursors;
* :class:`SpatialIndex` — a :class:`~repro.geo.grid_index.GridIndex` over
  a geographic position derived from the row.

Indexes never store row contents, only primary keys (plus, for sorted
indexes, the key and the table's row sequence), so the owning table stays
the single source of truth.  Rows whose index key is ``None`` (or contains
``None``) are simply not indexed — nullable columns work naturally and the
planner falls back to a scan for ``IS NULL``-style predicates.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import ValidationError
from repro.geo import BoundingBox, GeoPoint, GridIndex

Row = Dict[str, Any]
KeyFunc = Callable[[Row], Any]


class _Top:
    """A sentinel comparing greater than every value (bisect padding)."""

    __slots__ = ()

    def __lt__(self, other: Any) -> bool:
        return False

    def __le__(self, other: Any) -> bool:
        return False

    def __gt__(self, other: Any) -> bool:
        return True

    def __ge__(self, other: Any) -> bool:
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<TOP>"


#: Pads partial key tuples so bisect positions land *after* a prefix run.
TOP = _Top()


def _normalize(value: Any) -> Any:
    """Lists are a common (unhashable) cell value; use tuples as keys."""
    if isinstance(value, list):
        return tuple(value)
    return value


class HashIndex:
    """Equality buckets from a computed key to primary keys.

    Buckets preserve row (insertion) order — the same order a full table
    scan yields — so results served from the index are ordered exactly
    like the scan they replace.
    """

    kind = "hash"

    def __init__(self, name: str, key_func: KeyFunc) -> None:
        self._name = name
        self._key_func = key_func
        self._buckets: Dict[Any, Dict[Any, None]] = {}

    @property
    def name(self) -> str:
        """The index name."""
        return self._name

    def add(self, primary_key: Any, row: Row, seq: int = 0) -> None:
        """Index a newly inserted row."""
        key = self._make_key(row)
        self._buckets.setdefault(key, {})[primary_key] = None

    def remove(self, primary_key: Any, row: Row, seq: int = 0) -> None:
        """Remove a row that is being deleted or replaced."""
        key = self._make_key(row)
        bucket = self._buckets.get(key)
        if bucket is not None:
            bucket.pop(primary_key, None)
            if not bucket:
                del self._buckets[key]

    def lookup(self, value: Any) -> List[Any]:
        """Primary keys whose index key equals ``value``, in row order."""
        return list(self._buckets.get(_normalize(value), ()))

    def distinct_keys(self) -> List[Any]:
        """All distinct index keys currently present."""
        return sorted(self._buckets.keys(), key=repr)

    def clear(self) -> None:
        """Drop all entries."""
        self._buckets.clear()

    def _make_key(self, row: Row) -> Any:
        return _normalize(self._key_func(row))


#: Backwards-compatible name for the seed's only index structure.
SecondaryIndex = HashIndex


class SortedIndex:
    """A bisect-backed ordered index over a computed key tuple.

    Entries are ``(key, signed_seq, primary_key)`` kept sorted ascending,
    where ``signed_seq`` is the table's monotonic row sequence (negated for
    ``ties="reverse"`` specs, so *descending* walks preserve insertion
    order among equal keys).  Everything — range queries, ordered walks,
    keyset cursor positioning — is a bisect plus a slice.

    Rows whose key contains ``None`` are not indexed (``None`` does not
    order against real values); the planner falls back to scans for them.
    """

    kind = "sorted"

    def __init__(self, name: str, key_func: KeyFunc, *, ties: str = "forward") -> None:
        self._name = name
        self._key_func = key_func
        self._reverse_ties = ties == "reverse"
        self._entries: List[Tuple[Any, int, Any]] = []

    @property
    def name(self) -> str:
        """The index name."""
        return self._name

    @property
    def reverse_ties(self) -> bool:
        """Whether descending walks preserve insertion order among ties."""
        return self._reverse_ties

    def __len__(self) -> int:
        return len(self._entries)

    def _make_key(self, row: Row) -> Optional[Tuple[Any, ...]]:
        key = self._key_func(row)
        if not isinstance(key, tuple):
            key = (key,)
        if any(part is None for part in key):
            return None
        return tuple(_normalize(part) for part in key)

    def _signed(self, seq: int) -> int:
        return -seq if self._reverse_ties else seq

    def add(self, primary_key: Any, row: Row, seq: int) -> None:
        """Index a newly inserted row (skipped when the key has nulls)."""
        key = self._make_key(row)
        if key is None:
            return
        insort(self._entries, (key, self._signed(seq), primary_key))

    def remove(self, primary_key: Any, row: Row, seq: int) -> None:
        """Remove a row that is being deleted or replaced."""
        key = self._make_key(row)
        if key is None:
            return
        probe = (key, self._signed(seq), primary_key)
        position = bisect_left(self._entries, (key, self._signed(seq)))
        if position < len(self._entries) and self._entries[position] == probe:
            del self._entries[position]

    def clear(self) -> None:
        """Drop all entries."""
        self._entries.clear()

    # Positioning ----------------------------------------------------------

    @staticmethod
    def _as_key(value: Any) -> Tuple[Any, ...]:
        return value if isinstance(value, tuple) else (value,)

    def _lower_position(self, low: Any, inclusive: bool) -> int:
        if low is None:
            return 0
        key = self._as_key(low)
        probe = (key,) if inclusive else (key + (TOP,),)
        return bisect_left(self._entries, probe)

    def _upper_position(self, high: Any, inclusive: bool) -> int:
        if high is None:
            return len(self._entries)
        key = self._as_key(high)
        probe = (key + (TOP,),) if inclusive else (key,)
        return bisect_left(self._entries, probe)

    def position_after(self, key: Tuple[Any, ...], seq: int) -> int:
        """First position strictly after the ``(key, seq)`` cursor entry."""
        return bisect_left(self._entries, (key, self._signed(seq), TOP))

    def position_at(self, key: Tuple[Any, ...], seq: int) -> int:
        """Position of the first entry at or after the ``(key, seq)`` pair."""
        return bisect_left(self._entries, (key, self._signed(seq)))

    def page_entries(
        self,
        *,
        limit: int,
        after: Optional[Tuple[Tuple[Any, ...], int]] = None,
        descending: bool = False,
        low: Any = None,
        high: Any = None,
        high_inclusive: bool = False,
    ) -> Tuple[List[Tuple[Any, int, Any]], bool]:
        """One keyset page of entries plus whether more remain.

        ``after`` is the decoded cursor — (key tuple, raw row sequence) of
        the last entry served; the page resumes strictly past it in walk
        order.  Bounds restrict the walk to a key range (prefix bounds
        allowed).  Raises :class:`ValidationError` when the cursor cannot
        be compared against the index keys (client-controlled tokens must
        surface as a 400, never a TypeError).
        """
        lo = self._lower_position(low, True)
        hi = self._upper_position(high, high_inclusive)
        try:
            if after is not None:
                key, raw_seq = after
                if descending:
                    hi = min(hi, self.position_at(key, raw_seq))
                else:
                    lo = max(lo, self.position_after(key, raw_seq))
        except TypeError as exc:
            raise ValidationError(f"cursor token does not match index {self._name!r}") from exc
        if hi <= lo:
            return [], False
        # Slice only the limit-sized window, never the whole remaining
        # range: a page over a million-row walk stays O(log n + limit).
        if descending:
            page = self._entries[max(lo, hi - limit) : hi][::-1]
        else:
            page = self._entries[lo : min(hi, lo + limit)]
        return page, (hi - lo) > limit

    # Queries --------------------------------------------------------------

    def entries_between(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
    ) -> List[Tuple[Any, int, Any]]:
        """Entries whose key lies in the bound range (ascending order).

        Bounds may be scalars or partial key tuples: a one-column prefix
        bound on a two-column index covers the whole prefix run, which is
        what per-user time ranges on a ``(user_id, timestamp_s)`` index use.
        """
        lo = self._lower_position(low, low_inclusive)
        hi = self._upper_position(high, high_inclusive)
        return self._entries[lo:hi]

    def pks_between(
        self,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
        descending: bool = False,
    ) -> List[Any]:
        """Primary keys in the bound range, in walk order."""
        entries = self.entries_between(
            low, high, low_inclusive=low_inclusive, high_inclusive=high_inclusive
        )
        pks = [pk for _key, _seq, pk in entries]
        if descending:
            pks.reverse()
        return pks

    def iter_pks(self, *, descending: bool = False) -> Iterator[Any]:
        """Walk every indexed primary key in key order."""
        entries = reversed(self._entries) if descending else iter(self._entries)
        for _key, _seq, pk in entries:
            yield pk

    def min_key(self) -> Optional[Tuple[Any, ...]]:
        """Smallest key present (None when empty)."""
        return self._entries[0][0] if self._entries else None

    def max_key(self) -> Optional[Tuple[Any, ...]]:
        """Largest key present (None when empty)."""
        return self._entries[-1][0] if self._entries else None

    def entry_token_parts(self, entry: Tuple[Any, int, Any]) -> List[Any]:
        """The cursor-token payload for an entry: key components + raw seq."""
        key, signed_seq, _pk = entry
        return list(key) + [-signed_seq if self._reverse_ties else signed_seq]


class SpatialIndex:
    """A grid index over a geographic position derived from each row.

    The key function returns a :class:`~repro.geo.point.GeoPoint` or
    ``None`` (row not indexed) — for column-declared specs it is built
    from a nullable ``(lat, lon)`` column pair.  The underlying
    :class:`~repro.geo.grid_index.GridIndex` is exposed as :attr:`grid`
    for callers that already speak its query API (the context scorer's
    route pruning).
    """

    kind = "spatial"

    def __init__(
        self,
        name: str,
        key_func: Callable[[Row], Optional[GeoPoint]],
        *,
        cell_size_m: float = 1000.0,
    ) -> None:
        self._name = name
        self._key_func = key_func
        self._cell_size_m = cell_size_m
        self._grid: GridIndex[Any] = GridIndex(cell_size_m)

    @property
    def name(self) -> str:
        """The index name."""
        return self._name

    @property
    def grid(self) -> GridIndex[Any]:
        """The underlying grid index (primary keys as items)."""
        return self._grid

    def __len__(self) -> int:
        return len(self._grid)

    def __contains__(self, primary_key: Any) -> bool:
        return primary_key in self._grid

    def add(self, primary_key: Any, row: Row, seq: int = 0) -> None:
        """Index a newly inserted row (skipped when the position is null)."""
        position = self._key_func(row)
        if position is not None:
            self._grid.insert(primary_key, position)

    def remove(self, primary_key: Any, row: Row, seq: int = 0) -> None:
        """Remove a row that is being deleted or replaced."""
        position = self._key_func(row)
        if position is not None and primary_key in self._grid:
            self._grid.remove(primary_key)

    def clear(self) -> None:
        """Drop all entries (in place — callers may hold the grid)."""
        self._grid.clear()

    def within(self, center: GeoPoint, radius_m: float) -> List[Tuple[Any, float]]:
        """``(primary_key, distance_m)`` pairs within the radius, nearest first."""
        return self._grid.query_radius(center, radius_m)

    def in_bbox(self, box: BoundingBox) -> List[Any]:
        """Primary keys whose position falls inside the box."""
        return self._grid.query_bbox(box)

    def nearest(
        self, center: GeoPoint, *, max_radius_m: float = 50000.0
    ) -> Optional[Tuple[Any, float]]:
        """The closest indexed primary key within ``max_radius_m``."""
        return self._grid.nearest(center, max_radius_m=max_radius_m)

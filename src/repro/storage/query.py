"""A small fluent query layer over :class:`repro.storage.table.Table`.

Supports the operations the PPHCR server actually needs: equality and
predicate filters, ordering, limits, projections and simple aggregates.
Queries are lazy: nothing is evaluated until a terminal method
(:meth:`Query.all`, :meth:`Query.first`, :meth:`Query.count`, ...) is called.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Optional

from repro.errors import QueryError
from repro.storage.table import Row, Table


class Query:
    """A lazily evaluated query over a table."""

    def __init__(self, table: Table) -> None:
        self._table = table
        self._filters: List[Callable[[Row], bool]] = []
        self._order_key: Optional[Callable[[Row], Any]] = None
        self._order_desc: bool = False
        self._limit: Optional[int] = None
        self._projection: Optional[List[str]] = None

    def where(self, predicate: Callable[[Row], bool]) -> "Query":
        """Keep rows for which ``predicate`` returns a truthy value."""
        self._filters.append(predicate)
        return self

    def where_eq(self, column: str, value: Any) -> "Query":
        """Keep rows whose ``column`` equals ``value``."""
        self._table.schema.column(column)
        self._filters.append(lambda row, c=column, v=value: row[c] == v)
        return self

    def where_in(self, column: str, values: Iterable[Any]) -> "Query":
        """Keep rows whose ``column`` is one of ``values``."""
        self._table.schema.column(column)
        allowed = set(values)
        self._filters.append(lambda row, c=column, a=allowed: row[c] in a)
        return self

    def order_by(self, column_or_key, *, descending: bool = False) -> "Query":
        """Order results by a column name or key function."""
        if callable(column_or_key):
            self._order_key = column_or_key
        else:
            self._table.schema.column(column_or_key)
            self._order_key = lambda row, c=column_or_key: row[c]
        self._order_desc = descending
        return self

    def limit(self, n: int) -> "Query":
        """Keep at most the first ``n`` results."""
        if n < 0:
            raise QueryError(f"limit must be >= 0, got {n}")
        self._limit = n
        return self

    def select(self, *columns: str) -> "Query":
        """Project the result rows onto the named columns."""
        for column in columns:
            self._table.schema.column(column)
        self._projection = list(columns)
        return self

    # Terminal operations -------------------------------------------------

    def all(self) -> List[Row]:
        """Evaluate the query and return all matching rows."""
        rows = [row for row in self._table.rows() if self._matches(row)]
        if self._order_key is not None:
            rows.sort(key=self._order_key, reverse=self._order_desc)
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [{column: row[column] for column in self._projection} for row in rows]
        return rows

    def first(self) -> Optional[Row]:
        """The first matching row, or ``None``."""
        results = self.limit(1).all() if self._limit is None else self.all()[:1]
        return results[0] if results else None

    def count(self) -> int:
        """Number of matching rows."""
        return sum(1 for row in self._table.rows() if self._matches(row))

    def exists(self) -> bool:
        """Whether any row matches."""
        return any(self._matches(row) for row in self._table.rows())

    def aggregate(self, column: str, func: Callable[[List[Any]], Any]) -> Any:
        """Apply ``func`` to the list of values of ``column`` over matches."""
        self._table.schema.column(column)
        values = [row[column] for row in self._table.rows() if self._matches(row)]
        return func(values)

    def sum(self, column: str) -> float:
        """Sum of a numeric column over matching rows."""
        return float(self.aggregate(column, lambda values: sum(values) if values else 0.0))

    def avg(self, column: str) -> Optional[float]:
        """Mean of a numeric column over matching rows (``None`` if empty)."""
        def _mean(values: List[Any]) -> Optional[float]:
            return float(sum(values)) / len(values) if values else None

        return self.aggregate(column, _mean)

    def group_by(self, column: str) -> Dict[Any, List[Row]]:
        """Group matching rows by the value of ``column``."""
        self._table.schema.column(column)
        groups: Dict[Any, List[Row]] = {}
        for row in self._table.rows():
            if self._matches(row):
                groups.setdefault(row[column], []).append(row)
        return groups

    # Internal -------------------------------------------------------------

    def _matches(self, row: Row) -> bool:
        return all(predicate(row) for predicate in self._filters)

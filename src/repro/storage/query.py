"""A fluent query layer with an index-aware planner.

The seed evaluated every query as a full scan.  Queries now record their
predicates *structurally* — ``where_eq``/``where_in`` keep the column and
value, ``where_range`` (and the ``where_lt``/``where_ge``/... sugar) keep
the bounds — so a terminal call can route through a matching declarative
index instead of scanning:

1. an equality term on a hash-indexed column → bucket lookup;
2. a membership term on a hash-indexed column → bucket union;
3. a range term on a sorted-indexed column → bisect range;
4. no structured terms, but ``order_by`` on a sorted-indexed column →
   ordered index walk with an early-stop ``limit``;
5. otherwise → full scan (exactly the seed's behaviour).

Remaining predicates are applied to the candidate rows, so an indexed
query always returns exactly the rows the predicate-only scan would (the
parity property the test suite asserts on randomized workloads).
:meth:`Query.explain` reports the chosen strategy without executing, and
the table's ``index_hits``/``scans`` counters record which path ran.

Queries stay lazy: nothing is evaluated until a terminal method
(:meth:`Query.all`, :meth:`Query.first`, :meth:`Query.count`, ...) runs.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.errors import QueryError
from repro.storage.table import Row, Table


class Query:
    """A lazily evaluated query over a table."""

    def __init__(self, table: Table) -> None:
        self._table = table
        #: Structured predicates the planner can match against indexes.
        self._eq_terms: List[Tuple[str, Any]] = []
        self._in_terms: List[Tuple[str, List[Any]]] = []
        self._range_terms: List[Tuple[str, Any, Any, bool, bool]] = []
        #: Opaque predicates (callables) — scan-only.
        self._filters: List[Callable[[Row], bool]] = []
        self._order_key: Optional[Callable[[Row], Any]] = None
        self._order_column: Optional[str] = None
        self._order_desc: bool = False
        self._limit: Optional[int] = None
        self._projection: Optional[List[str]] = None
        self._allow_index: bool = True

    def where(self, predicate: Callable[[Row], bool]) -> "Query":
        """Keep rows for which ``predicate`` returns a truthy value."""
        self._filters.append(predicate)
        return self

    def where_eq(self, column: str, value: Any) -> "Query":
        """Keep rows whose ``column`` equals ``value``."""
        self._table.schema.column(column)
        self._eq_terms.append((column, value))
        return self

    def where_in(self, column: str, values: Iterable[Any]) -> "Query":
        """Keep rows whose ``column`` is one of ``values``."""
        self._table.schema.column(column)
        self._in_terms.append((column, list(values)))
        return self

    def where_range(
        self,
        column: str,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
    ) -> "Query":
        """Keep rows whose ``column`` lies in ``[low, high)`` (bounds optional).

        Inclusivity of each bound is configurable; ``None`` leaves a side
        unbounded.  With a sorted index on the column the planner serves
        this with a bisect instead of a scan.
        """
        self._table.schema.column(column)
        if low is None and high is None:
            raise QueryError("where_range needs at least one bound")
        self._range_terms.append((column, low, high, low_inclusive, high_inclusive))
        return self

    def where_lt(self, column: str, value: Any) -> "Query":
        """Keep rows with ``column < value``."""
        return self.where_range(column, high=value, high_inclusive=False)

    def where_le(self, column: str, value: Any) -> "Query":
        """Keep rows with ``column <= value``."""
        return self.where_range(column, high=value, high_inclusive=True)

    def where_gt(self, column: str, value: Any) -> "Query":
        """Keep rows with ``column > value``."""
        return self.where_range(column, low=value, low_inclusive=False)

    def where_ge(self, column: str, value: Any) -> "Query":
        """Keep rows with ``column >= value``."""
        return self.where_range(column, low=value, low_inclusive=True)

    def order_by(self, column_or_key, *, descending: bool = False) -> "Query":
        """Order results by a column name or key function."""
        if callable(column_or_key):
            self._order_key = column_or_key
            self._order_column = None
        else:
            self._table.schema.column(column_or_key)
            self._order_key = lambda row, c=column_or_key: row[c]
            self._order_column = column_or_key
        self._order_desc = descending
        return self

    def limit(self, n: int) -> "Query":
        """Keep at most the first ``n`` results."""
        if n < 0:
            raise QueryError(f"limit must be >= 0, got {n}")
        self._limit = n
        return self

    def select(self, *columns: str) -> "Query":
        """Project the result rows onto the named columns."""
        for column in columns:
            self._table.schema.column(column)
        self._projection = list(columns)
        return self

    def scan_only(self) -> "Query":
        """Disable the planner: evaluate as a full scan.

        The reference path for parity tests and benchmarks — an indexed
        query must return exactly what its ``scan_only()`` twin does.
        """
        self._allow_index = False
        return self

    # Planning -------------------------------------------------------------

    def _plan(self, *, allow_index_order: bool = True) -> Dict[str, Any]:
        """Choose the access path (without executing)."""
        table = self._table
        if self._allow_index:
            for position, (column, _value) in enumerate(self._eq_terms):
                index = table.planner_index_for(kind="hash", columns=(column,))
                if index is not None:
                    return {
                        "strategy": "index_eq",
                        "index": index.name,
                        "column": column,
                        "term": position,
                    }
            for position, (column, _values) in enumerate(self._in_terms):
                index = table.planner_index_for(kind="hash", columns=(column,))
                if index is not None:
                    return {
                        "strategy": "index_in",
                        "index": index.name,
                        "column": column,
                        "term": position,
                    }
            for position, (column, _low, _high, _li, _hi) in enumerate(self._range_terms):
                index = table.planner_index_for(kind="sorted", columns=(column,))
                if index is not None:
                    return {
                        "strategy": "index_range",
                        "index": index.name,
                        "column": column,
                        "term": position,
                    }
            if allow_index_order and self._order_column is not None and not self._order_desc:
                # Ascending only: a descending index walk would reverse
                # equal-key runs, while the scan's stable sort keeps them in
                # insertion order — and planner output must equal the scan.
                index = table.planner_index_for(kind="sorted", columns=(self._order_column,))
                # Coverage check: null keys are not indexed, so an index
                # walk over a partially covered column would silently drop
                # rows a scan returns.  (A scan would fail sorting None
                # against real values anyway, but the planner must never
                # *lose* rows.)
                if index is not None and len(index) == len(table):
                    return {
                        "strategy": "index_order",
                        "index": index.name,
                        "column": self._order_column,
                    }
        return {"strategy": "scan", "index": None}

    def explain(self) -> Dict[str, Any]:
        """The access path a terminal call would take (no execution).

        Returns table, strategy (``index_eq``/``index_in``/``index_range``/
        ``index_order``/``scan``), the index used (if any) and how many
        predicates remain as post-filters.
        """
        plan = self._plan()
        residual = (
            len(self._eq_terms)
            + len(self._in_terms)
            + len(self._range_terms)
            + len(self._filters)
        )
        if plan["strategy"] in ("index_eq", "index_in", "index_range"):
            residual -= 1
        plan["table"] = self._table.name
        plan["post_filters"] = residual
        plan["ordered"] = self._order_key is not None
        return plan

    def _residual_predicates(self, plan: Dict[str, Any]) -> List[Callable[[Row], bool]]:
        """Every predicate except the one the chosen index already serves."""
        predicates: List[Callable[[Row], bool]] = []
        used = plan.get("term") if plan["strategy"] in ("index_eq", "index_in", "index_range") else None
        for position, (column, value) in enumerate(self._eq_terms):
            if plan["strategy"] == "index_eq" and position == used:
                continue
            predicates.append(lambda row, c=column, v=value: row[c] == v)
        for position, (column, values) in enumerate(self._in_terms):
            if plan["strategy"] == "index_in" and position == used:
                continue
            allowed = set(values)
            predicates.append(lambda row, c=column, a=allowed: row[c] in a)
        for position, (column, low, high, low_inc, high_inc) in enumerate(self._range_terms):
            if plan["strategy"] == "index_range" and position == used:
                continue
            predicates.append(
                lambda row, c=column, lo=low, hi=high, li=low_inc, hie=high_inc: (
                    _in_bounds(row[c], lo, hi, li, hie)
                )
            )
        predicates.extend(self._filters)
        return predicates

    def _candidate_rows(self, plan: Dict[str, Any]) -> Iterable[Row]:
        """Rows the chosen access path yields (before residual filtering)."""
        table = self._table
        strategy = plan["strategy"]
        if strategy == "index_eq":
            column, value = self._eq_terms[plan["term"]]
            return table.find_by_index(plan["index"], value)
        if strategy == "index_in":
            column, values = self._in_terms[plan["term"]]
            seen = set()
            pks: List[Any] = []
            for value in values:
                for row in table.find_by_index(plan["index"], value):
                    pk = row[table.schema.primary_key]
                    if pk not in seen:
                        seen.add(pk)
                        pks.append(pk)
            # Row (insertion) order, matching what a scan would yield.
            pks.sort(key=table.seq_of)
            return [table.get(pk) for pk in pks]
        if strategy == "index_range":
            column, low, high, low_inc, high_inc = self._range_terms[plan["term"]]
            rows = table.find_range(
                plan["index"],
                low,
                high,
                low_inclusive=low_inc,
                high_inclusive=high_inc,
            )
            # Re-establish row (insertion) order so the result is
            # indistinguishable from the scan it replaces — the later
            # stable sort then resolves ties exactly as the scan path does.
            primary_key = table.schema.primary_key
            rows.sort(key=lambda row: table.seq_of(row[primary_key]))
            return rows
        if strategy == "index_order":
            return table.rows_in_index_order(plan["index"], descending=self._order_desc)
        return table.scan_iter()

    def _execute(
        self, *, apply_early_limit: bool = True, max_rows: Optional[int] = None
    ) -> List[Row]:
        """Evaluate predicates through the planned access path.

        Terminals that ignore ``limit`` (count/exists/aggregates,
        ``apply_early_limit=False``) also skip ordering entirely — both
        the ``index_order`` strategy and the final sort.  Ordering is
        meaningless to them, and summing in row order on every path
        keeps float aggregation bit-identical between the planner and
        the scan reference.
        """
        # Telemetry: a single attribute check keeps the uninstrumented
        # path at its original cost; the enriched explain()-shaped plan is
        # only built when an observer is installed.
        observer = self._table.query_observer
        start = time.perf_counter() if observer is not None else 0.0
        plan = self._plan(allow_index_order=apply_early_limit)
        predicates = self._residual_predicates(plan)
        ordered_by_index = plan["strategy"] == "index_order"
        early_limit = (
            self._limit
            if apply_early_limit and ordered_by_index and self._limit is not None
            else None
        )
        rows: List[Row] = []
        for row in self._candidate_rows(plan):
            if all(predicate(row) for predicate in predicates):
                rows.append(row)
                if early_limit is not None and len(rows) >= early_limit:
                    break
                if max_rows is not None and len(rows) >= max_rows:
                    break
        if apply_early_limit and self._order_key is not None and not ordered_by_index:
            rows.sort(key=self._order_key, reverse=self._order_desc)
        if observer is not None:
            elapsed_s = time.perf_counter() - start
            info = dict(plan)
            info["table"] = self._table.name
            info["post_filters"] = len(predicates)
            info["ordered"] = self._order_key is not None
            observer(info, elapsed_s, len(rows))
        return rows

    # Terminal operations -------------------------------------------------

    def all(self) -> List[Row]:
        """Evaluate the query and return all matching rows.

        With an ``order_by``, results are fully ordered (ties resolve in
        row order); without one, result order follows the access path
        (insertion order for scans, index order otherwise).
        """
        rows = self._execute()
        if self._limit is not None:
            rows = rows[: self._limit]
        if self._projection is not None:
            rows = [{column: row[column] for column in self._projection} for row in rows]
        return rows

    def first(self) -> Optional[Row]:
        """The first matching row, or ``None``."""
        results = self.limit(1).all() if self._limit is None else self.all()[:1]
        return results[0] if results else None

    def count(self) -> int:
        """Number of matching rows (``limit`` is not applied)."""
        return len(self._execute(apply_early_limit=False))

    def exists(self) -> bool:
        """Whether any row matches (stops at the first hit)."""
        return bool(self._execute(apply_early_limit=False, max_rows=1))

    def aggregate(self, column: str, func: Callable[[List[Any]], Any]) -> Any:
        """Apply ``func`` to the list of values of ``column`` over matches.

        ``limit`` never applies to aggregates (matching the scan path).
        """
        self._table.schema.column(column)
        values = [row[column] for row in self._execute(apply_early_limit=False)]
        return func(values)

    def sum(self, column: str) -> float:
        """Sum of a numeric column over matching rows."""
        return float(self.aggregate(column, lambda values: sum(values) if values else 0.0))

    def avg(self, column: str) -> Optional[float]:
        """Mean of a numeric column over matching rows (``None`` if empty)."""
        def _mean(values: List[Any]) -> Optional[float]:
            return float(sum(values)) / len(values) if values else None

        return self.aggregate(column, _mean)

    def group_by(self, column: str) -> Dict[Any, List[Row]]:
        """Group matching rows by the value of ``column``."""
        self._table.schema.column(column)
        groups: Dict[Any, List[Row]] = {}
        for row in self._execute(apply_early_limit=False):
            groups.setdefault(row[column], []).append(row)
        return groups


def _in_bounds(value: Any, low: Any, high: Any, low_inclusive: bool, high_inclusive: bool) -> bool:
    # SQL semantics: NULL never satisfies a range predicate.  This also
    # keeps the scan path in lockstep with sorted indexes, which do not
    # index null keys.
    if value is None:
        return False
    if low is not None:
        if low_inclusive:
            if value < low:
                return False
        elif value <= low:
            return False
    if high is not None:
        if high_inclusive:
            if value > high:
                return False
        elif value >= high:
            return False
    return True

"""Log-shipped read replicas: a second server fed by the primary's WAL.

The heavy read endpoints (``GET /v1/recommendations/{user}``, the
listings) are already ETag-cacheable, so a replica that has applied the
same committed frames serves byte-identical responses — same bodies,
same validators — and can absorb read traffic the primary never sees.

"Log shipping" here is literal: the replica reads the primary's WAL
directory (the files are the wire format) and applies every complete
commit past its watermark to its *own* :class:`PphcrServer`.  Reads are
served from that server through a read-only gateway wrapper; writes get
``405`` until :meth:`ReadReplica.promote` flips the replica into a
primary (the failover path the chaos harness exercises).

Lag contract: :meth:`lag_frames` counts complete commits the primary has
logged that the replica has not applied.  At lag 0 the replica's state is
indistinguishable from the primary's — asserted byte-for-byte in
``tests/test_wal.py``.  A half-written frame at the primary's tail is not
"lag": it is not yet a commit.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import ValidationError
from repro.storage.wal import apply_commit, load_checkpoint, read_log_commits


class ReadReplica:
    """A read-only server continuously rebuilt from shipped WAL frames.

    ``build_server`` must construct a *fresh, empty* server that is
    config-compatible with the primary (same shard layout) and has
    durability **disabled** — the replica applies the primary's frames
    and must not write logs of its own.  ``gateway_factory`` builds the
    wire front over that server (defaults to the standard
    :class:`~repro.pipeline.gateway.Gateway`).
    """

    def __init__(
        self,
        wal_directory,
        *,
        build_server: Callable[[], Any],
        gateway_factory: Optional[Callable[[Any], Any]] = None,
    ) -> None:
        self._directory = Path(wal_directory)
        self._server = build_server()
        if getattr(self._server, "durability", None) is not None:
            raise ValidationError(
                "a read replica's server must be built with durability disabled"
            )
        if gateway_factory is None:
            from repro.pipeline.gateway import Gateway

            gateway_factory = Gateway
        self._gateway = gateway_factory(self._server)
        self._applied_lsn = 0
        self._frames_applied = 0
        self._bootstrapped = False
        self._promoted = False
        self._lag_gauge = None
        telemetry = getattr(self._server, "telemetry", None)
        if telemetry is not None and telemetry.enabled:
            self._lag_gauge = telemetry.metrics.gauge(
                "replica_lag_frames",
                "Committed primary WAL frames not yet applied by this replica",
            )

    @property
    def server(self):
        """The replica's own server (read path probes go here)."""
        return self._server

    @property
    def gateway(self):
        """The wire front over the replica's server."""
        return self._gateway

    @property
    def applied_lsn(self) -> int:
        """The highest LSN applied so far (the replication watermark)."""
        return self._applied_lsn

    @property
    def promoted(self) -> bool:
        """Whether the replica has been promoted to serve writes."""
        return self._promoted

    def _bootstrap(self) -> None:
        """Start from the primary's checkpoint when one exists.

        Without a checkpoint the replica replays the log from LSN 0 —
        the WAL records the server's whole life, so a from-scratch replay
        reconstructs everything (the recovery-time benchmark measures why
        checkpoints are still worth it).
        """
        checkpoint = load_checkpoint(self._directory)
        if checkpoint is not None:
            self._server.restore_snapshot(checkpoint["snapshot"])
            self._applied_lsn = checkpoint["lsn"]
        self._bootstrapped = True

    def catch_up(self) -> int:
        """Apply every shipped commit past the watermark; returns frames applied."""
        if not self._bootstrapped:
            self._bootstrap()
        commits = read_log_commits(self._directory, after_lsn=self._applied_lsn)
        for commit in commits:
            apply_commit(self._server, commit)
            self._applied_lsn = commit["lsn"]
        self._frames_applied += len(commits)
        if self._lag_gauge is not None:
            self._lag_gauge.set(self.lag_frames())
        return len(commits)

    def lag_frames(self) -> int:
        """Complete commits the primary has logged but the replica has not applied."""
        if not self._bootstrapped:
            self._bootstrap()
        return len(read_log_commits(self._directory, after_lsn=self._applied_lsn))

    def stats(self) -> Dict[str, Any]:
        """Replication counters for dashboards."""
        return {
            "directory": str(self._directory),
            "applied_lsn": self._applied_lsn,
            "frames_applied": self._frames_applied,
            "lag_frames": self.lag_frames(),
            "promoted": self._promoted,
        }

    def promote(self):
        """Flip the replica into a primary (failover); returns its server.

        The caller should :meth:`catch_up` first and check
        :meth:`lag_frames` is 0 — promotion does not replay anything, it
        only opens the write path.
        """
        self._promoted = True
        return self._server

    def handle_wire(
        self,
        method: str,
        path: str,
        body_json: Optional[str] = None,
        *,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, str, Dict[str, str]]:
        """Serve one wire request; non-GET is rejected until promotion.

        Signature-compatible with :meth:`Gateway.handle_wire
        <repro.pipeline.gateway.gateway.Gateway.handle_wire>` so a replay
        harness (or an HTTP front) can point read traffic at a replica
        unchanged.
        """
        if method.upper() != "GET" and not self._promoted:
            detail = {"error": "method_not_allowed", "detail": "read replica is read-only"}
            return 405, json.dumps(detail, sort_keys=True), {"Allow": "GET"}
        return self._gateway.handle_wire(
            method, path, body_json, query=query, headers=headers
        )

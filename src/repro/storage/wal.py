"""The write-ahead log: per-shard append-only change logs with checksummed frames.

Durability before this module was full-JSON snapshots: a crash lost
everything since the last :meth:`PphcrServer.snapshot`.  The WAL closes
that gap by appending every committed unit of work to an append-only log,
so recovery becomes *snapshot + log tail* and a fresh process can replay
exactly the writes the snapshot missed — point-in-time recovery without
re-ingesting anything from clients.

Layout: one log file per user shard (``shard-000.log`` …) plus one
``global.log`` for unsharded state (the content catalogue, editorial
desk, server-level operations).  A user's writes all land on the owning
shard's log, preserving the single-writer-per-shard invariant — each log
file has exactly one writing thread.

Frame format (the unit of append and of salvage)::

    [u32 length][u32 crc32][payload]          (big-endian header)

where ``payload`` is the canonical JSON (sorted keys, no whitespace) of
one *commit*: ``{"lsn": n, "records": [...]}``.  The LSN is a global
monotonic sequence shared by all logs; merging every log's frames in LSN
order yields a valid serialization of the server's history (per-shard
order is preserved within each file, and cross-shard dependencies —
e.g. feedback learning reading the content catalogue — are ordered by
program-order happens-before).

Record kinds inside a commit:

``table``
    Raw :class:`~repro.storage.table.Change` groups from a database
    commit listener (see :meth:`Database.add_commit_listener
    <repro.storage.database.Database.add_commit_listener>`): one group
    per table, the whole commit applied atomically on replay.  Used for
    the profiles and feedbacks DBs, whose rows carry everything replay
    needs.
``fixes``
    Accepted GPS fixes (the tracking DB's dict-backed per-user histories
    cannot be reconstructed from its ``latest`` table alone, so the WAL
    subscribes to the user manager's fix-listener channel instead and
    replays ingest).
``content`` / ``users`` / ``tracking`` / ``editorial`` / ``server``
    Domain operations replayed through the owning store's public methods
    (full clip payloads, preference seeding, prunes, editorial injections
    with their already generated ids, text-model refreshes) — state that
    table rows alone under-determine.

The tracking DB's ``latest`` table and the content DB's tables are
*derived* channels: their raw changes are suppressed (counted in
:meth:`DurabilityManager.stats`) because replaying the fix stream and the
content domain operations rewrites them identically.

Torn tails: a crash can leave a half-written frame (or garbage) at the
end of a log.  :func:`scan_frames` walks frame by frame and stops at the
first short read, checksum mismatch or malformed payload; recovery
truncates the file at the last complete commit and reports what was
dropped — never a crash, never a partially applied commit.

Compaction: once any log exceeds ``DurabilityConfig.compact_min_bytes``
(checked from ``PphcrServer.maintenance_tick``), the manager writes a
whole-server checkpoint (snapshot + LSN watermark) and rewrites every log
keeping only frames past the watermark — "snapshot + empty tail".
"""

from __future__ import annotations

import json
import os
import struct
import threading
import time
import zlib
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import ValidationError
from repro.storage.database import Database, payload_from_bytes, payload_to_bytes
from repro.storage.sharding import ShardedDatabase, shard_of

#: Version stamp carried in checkpoint payloads.
CHECKPOINT_VERSION = 1

#: The checkpoint file a compaction writes next to the logs.
CHECKPOINT_NAME = "checkpoint.json.gz"

#: Frame header: big-endian payload length then crc32 of the payload.
_FRAME_HEADER = struct.Struct(">II")

#: Upper bound on a single frame's payload — anything larger is treated
#: as a corrupt length prefix during salvage, not an allocation attempt.
MAX_FRAME_BYTES = 32 * 1024 * 1024

#: Log key of the unsharded ("global") log file.
GLOBAL_LOG = "global"

# Channel audit -------------------------------------------------------------
#
# Every bus topic published anywhere in ``src/repro`` must appear in exactly
# one of the two sets below — the static analyzer's ``wal-channel-audit``
# rule (``repro.analysis``) enforces it.  The sets are the durability
# decision record: adding a topic means answering "can point-in-time
# recovery rebuild the state this event announces?" and writing the answer
# down where replay code lives.

#: Topics announcing mutations some WAL channel captures: a table change
#: listener, the fix stream, or a domain/server op record that
#: :func:`apply_commit` replays through the owning store's public methods.
WAL_LOGGED_TOPICS = frozenset(
    {
        # content op "ingest" carries the full clip payload (including any
        # classified category scores), so replay rewrites the catalogue.
        "clip.ingested",
        "clip.classified",
        # server op "train_classifier" replays the training corpus.
        "classifier.trained",
        # server op "refresh_text_model" refits the TF-IDF model.
        "recommender.text_model_refreshed",
        # profiles table change channel (recorded raw commits).
        "user.registered",
    }
)

#: Topics that are notifications over *derived* or process-local state —
#: deliberately absent from the log because replaying the logged channels
#: rewrites (streaming/mobility models from the fix stream) or never needs
#: (metrics, failure notices, restore banners) what they announce.
WAL_SUPPRESSED_TOPICS = frozenset(
    {
        # per-request metrics event from the gateway middleware.
        "api.request",
        # streaming/mobility model updates: rebuilt by replaying fixes.
        "tracking.trip_completed",
        "tracking.staypoint_spawned",
        "tracking.model_repaired",
        "tracking.model_rebuilt",
        "tracking.compacted",
        # failure notification — the aborted batch wrote nothing.
        "tracking.batch_failed",
        # lifecycle banners emitted *by* restore paths.
        "server.restored",
        "server.shard_restored",
        # read-path telemetry: context assembly and recommendation decisions.
        "context.built",
        "recommendation.decision",
    }
)


# Frame codec ---------------------------------------------------------------


def encode_frame(commit: Dict[str, Any]) -> bytes:
    """Serialize one commit payload into a checksummed frame."""
    raw = payload_to_bytes(commit)
    return _FRAME_HEADER.pack(len(raw), zlib.crc32(raw) & 0xFFFFFFFF) + raw


def scan_frames(blob: bytes) -> Tuple[List[Dict[str, Any]], int, Optional[str]]:
    """Walk a log's bytes frame by frame, stopping at the first damage.

    Returns ``(commits, good_bytes, reason)``: every complete, checksummed
    commit payload in file order, the byte offset of the last complete
    frame's end, and ``None`` when the whole blob was clean — otherwise a
    short human-readable reason for the torn tail.  Never raises on
    corrupt input: damage terminates the scan, it does not propagate.
    """
    commits: List[Dict[str, Any]] = []
    offset = 0
    total = len(blob)
    while offset < total:
        if total - offset < _FRAME_HEADER.size:
            return commits, offset, "short frame header"
        length, checksum = _FRAME_HEADER.unpack_from(blob, offset)
        if length > MAX_FRAME_BYTES:
            return commits, offset, f"implausible frame length {length}"
        start = offset + _FRAME_HEADER.size
        if total - start < length:
            return commits, offset, "truncated frame payload"
        payload = blob[start : start + length]
        if zlib.crc32(payload) & 0xFFFFFFFF != checksum:
            return commits, offset, "frame checksum mismatch"
        try:
            commit = json.loads(payload.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return commits, offset, "malformed frame payload"
        if (
            not isinstance(commit, dict)
            or not isinstance(commit.get("lsn"), int)
            or not isinstance(commit.get("records"), list)
        ):
            return commits, offset, "frame payload is not a commit"
        commits.append(commit)
        offset = start + length
    return commits, offset, None


def salvage_file(path: Path, *, truncate: bool = True) -> Dict[str, Any]:
    """Scan one log file and (optionally) cut its torn tail off in place.

    Returns a report: complete frames found, bytes kept, bytes dropped
    and the damage reason (``None`` for a clean file).  With
    ``truncate=True`` the file is physically truncated at the last
    complete commit, so subsequent appends continue from a clean tail.
    """
    blob = path.read_bytes()
    commits, good_bytes, reason = scan_frames(blob)
    dropped = len(blob) - good_bytes
    if dropped and truncate:
        with open(path, "r+b") as handle:
            handle.truncate(good_bytes)
    return {
        "path": path.name,
        "frames": len(commits),
        "bytes_kept": good_bytes,
        "bytes_dropped": dropped,
        "reason": reason,
    }


def log_paths(directory: Path) -> List[Path]:
    """Every log file in a WAL directory, in stable name order."""
    return sorted(Path(directory).glob("*.log"))


def read_log_commits(directory: Path, *, after_lsn: int = 0) -> List[Dict[str, Any]]:
    """All complete commits in a WAL directory with ``lsn > after_lsn``.

    Read-only (a replica shipping frames from a live primary must not
    truncate the primary's tails): incomplete trailing frames are simply
    not yet visible.  The merged result is sorted by LSN — the valid
    global serialization replay applies.
    """
    commits: List[Dict[str, Any]] = []
    for path in log_paths(Path(directory)):
        found, _good, _reason = scan_frames(path.read_bytes())
        commits.extend(commit for commit in found if commit["lsn"] > after_lsn)
    commits.sort(key=lambda commit: commit["lsn"])
    return commits


def load_checkpoint(directory: Path) -> Optional[Dict[str, Any]]:
    """The compaction checkpoint in a WAL directory, if one was written.

    Returns ``{"version": 1, "lsn": n, "snapshot": {...}}`` or ``None``.
    """
    path = Path(directory) / CHECKPOINT_NAME
    if not path.exists():
        return None
    payload = payload_from_bytes(path.read_bytes())
    if payload.get("version") != CHECKPOINT_VERSION:
        raise ValidationError(
            f"unsupported WAL checkpoint (want version {CHECKPOINT_VERSION})"
        )
    return payload


# Replay --------------------------------------------------------------------


def apply_table_changes(table, changes: List[Dict[str, Any]]) -> None:
    """Replay encoded :class:`~repro.storage.table.Change` records.

    Each op goes through the same public mutator the original write used,
    so version counters, sequence numbers and secondary indexes evolve
    exactly as they did live — including ``clear``, which must reset
    index/version state identically to a live :meth:`Table.clear`.
    """
    for change in changes:
        op = change["op"]
        if op == "insert":
            table.insert(change["row"])
        elif op == "update":
            table.update(change.get("prev") or change["key"], change["row"])
        elif op == "delete":
            table.delete(change["key"])
        elif op == "clear":
            table.clear()
        else:
            raise ValidationError(f"unknown change op {op!r} in WAL frame")


def _resolve_database(server, name: str):
    if name == "profiles":
        return server.users.profiles_database
    if name == "feedbacks":
        return server.users.feedback.database
    if name == "tracking":
        return server.users.tracking.database
    if name == "content":
        return server.content.database
    raise ValidationError(f"WAL frame names unknown database {name!r}")


def _apply_table_record(server, record: Dict[str, Any]) -> None:
    database = _resolve_database(server, record["db"])
    shard = record.get("shard")
    db = database.shard(shard) if isinstance(database, ShardedDatabase) else database
    table_name = record["table"]
    changes = record["changes"]
    apply_table_changes(db.table(table_name), changes)
    # Dict-backed caches that live writes maintained alongside the table.
    if record["db"] == "profiles" and table_name == "profiles":
        server.users.replay_profile_changes(shard, changes)
    elif record["db"] == "feedbacks" and table_name == "feedback":
        for change in changes:
            if change["op"] == "insert":
                server.users.replay_feedback_row(change["row"])


def _apply_fixes_record(server, record: Dict[str, Any]) -> None:
    from repro.geo import GeoPoint
    from repro.spatialdb import GpsFix

    fixes = [
        GpsFix(
            user_id=user_id,
            timestamp_s=timestamp_s,
            position=GeoPoint(lat, lon),
            speed_mps=speed_mps,
            accuracy_m=accuracy_m,
        )
        for user_id, timestamp_s, lat, lon, speed_mps, accuracy_m in record["fixes"]
    ]
    server.users.replay_fixes(fixes)


def apply_commit(server, commit: Dict[str, Any]) -> int:
    """Apply one logged commit to a server; returns records applied.

    The caller is responsible for suspending the server's own WAL first
    (see :meth:`DurabilityManager.suspended`) so replayed writes are not
    logged again; a replica's server has no WAL attached and needs no
    guard.
    """
    applied = 0
    for record in commit["records"]:
        kind = record["kind"]
        if kind == "table":
            _apply_table_record(server, record)
        elif kind == "fixes":
            _apply_fixes_record(server, record)
        elif kind == "content":
            server.content.apply_logged_op(record["op"], record["data"])
        elif kind == "tracking":
            op = record["op"]
            if op == "prune_before":
                server.users.tracking.prune_before(record["user_id"], record["cutoff_s"])
            elif op == "clear_user":
                server.users.tracking.clear_user(record["user_id"])
            else:
                raise ValidationError(f"unknown tracking op {op!r} in WAL frame")
        elif kind == "users":
            op = record["op"]
            if op == "seed_preferences":
                data = record["data"]
                server.users.seed_preferences(
                    data["user_id"], data["preferred"], data["disliked"]
                )
            else:
                raise ValidationError(f"unknown users op {op!r} in WAL frame")
        elif kind == "editorial":
            op = record["op"]
            if op == "inject":
                server.editorial.load_injection(record["data"])
            elif op == "withdraw":
                server.editorial.withdraw(record["injection_id"])
            else:
                raise ValidationError(f"unknown editorial op {op!r} in WAL frame")
        elif kind == "server":
            op = record["op"]
            if op == "refresh_text_model":
                server.refresh_text_model()
            elif op == "train_classifier":
                data = record.get("data") or {}
                server.train_classifier(
                    data.get("texts") or [], data.get("labels") or []
                )
            else:
                raise ValidationError(f"unknown server op {op!r} in WAL frame")
        else:
            raise ValidationError(f"unknown record kind {kind!r} in WAL frame")
        applied += 1
    return applied


# The manager ---------------------------------------------------------------


@dataclass(frozen=True)
class DurabilityConfig:
    """The ``ServerConfig.durability`` knob.

    ``enabled`` turns the subsystem on (``directory`` is then required);
    ``fsync`` additionally fsyncs every frame (off by default — the tests
    and benches model durability semantics, not disk latency; flush time
    is recorded in the ``wal_fsync_seconds`` histogram either way);
    ``compact_min_bytes`` is the per-log size budget that triggers
    checkpoint compaction from ``maintenance_tick``.
    """

    enabled: bool = False
    directory: Optional[str] = None
    fsync: bool = False
    compact_min_bytes: int = 4 * 1024 * 1024

    def __post_init__(self) -> None:
        if self.enabled and not self.directory:
            raise ValidationError("durability.enabled requires a directory")
        if self.compact_min_bytes < 1:
            raise ValidationError(
                f"compact_min_bytes must be >= 1, got {self.compact_min_bytes}"
            )


class _LogWriter:
    """One append-only log file: lazy handle, size/frame counters, a lock."""

    def __init__(self, path: Path) -> None:
        self.path = path
        self.lock = threading.Lock()
        self.size = path.stat().st_size if path.exists() else 0
        self.frames = 0
        self._handle = None

    def handle(self):
        if self._handle is None:
            self._handle = open(self.path, "ab")
        return self._handle

    def append(self, frame: bytes, *, fsync: bool) -> None:
        handle = self.handle()
        handle.write(frame)
        handle.flush()
        if fsync:
            os.fsync(handle.fileno())
        self.size += len(frame)
        self.frames += 1

    def reset(self) -> None:
        """Drop the open handle after an out-of-band rewrite (compaction)."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None
        self.size = self.path.stat().st_size if self.path.exists() else 0


class DurabilityManager:
    """Owns a server's WAL directory: capture, recovery, replay, compaction.

    Constructed (and attached) by :class:`~repro.pipeline.server.PphcrServer`
    when ``config.durability.enabled``; construction scans the directory,
    salvages any torn tails in place (``recovery_report``) and continues
    the LSN sequence where the previous process stopped.
    """

    def __init__(
        self,
        config: DurabilityConfig,
        *,
        shards: int,
        telemetry=None,
    ) -> None:
        if not config.directory:
            raise ValidationError("DurabilityManager requires a log directory")
        self._config = config
        self._shards = shards
        self._directory = Path(config.directory)
        self._directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._suspend_depth = 0
        self._writers: Dict[str, _LogWriter] = {}
        self._suppressed_changes = 0
        self._appends = None
        self._bytes = None
        self._fsync_seconds = None
        self._compactions = None
        self._reclaimed = None
        if telemetry is not None and telemetry.enabled:
            metrics = telemetry.metrics
            self._appends = metrics.counter(
                "wal_appends_total",
                "Commit frames appended to the write-ahead log",
                labels=("shard",),
            )
            self._bytes = metrics.counter(
                "wal_bytes_total", "Bytes appended to the write-ahead log"
            )
            self._fsync_seconds = telemetry.latency_histogram(
                "wal_fsync_seconds",
                "Time to flush (and fsync, when enabled) one WAL frame",
            )
            self._compactions = metrics.counter(
                "wal_compactions_total",
                "Checkpoint compactions rewriting the logs as snapshot + tail",
            )
            self._reclaimed = metrics.counter(
                "wal_compaction_reclaimed_bytes_total",
                "Log bytes reclaimed by checkpoint compaction",
            )
        #: Per-file salvage reports from the startup scan (torn tails are
        #: truncated in place; ``bytes_dropped`` says what a crash cost).
        self.recovery_report: List[Dict[str, Any]] = []
        self._next_lsn = 1
        self._recover()

    # Lifecycle ------------------------------------------------------------

    def _recover(self) -> None:
        last_lsn = 0
        for path in log_paths(self._directory):
            report = salvage_file(path, truncate=True)
            self.recovery_report.append(report)
            commits, _good, _reason = scan_frames(path.read_bytes())
            if commits:
                last_lsn = max(last_lsn, commits[-1]["lsn"])
            writer = _LogWriter(path)
            writer.frames = len(commits)
            self._writers[path.stem] = writer
        checkpoint = load_checkpoint(self._directory)
        if checkpoint is not None:
            last_lsn = max(last_lsn, checkpoint["lsn"])
        self._next_lsn = last_lsn + 1

    def attach(self, server) -> None:
        """Subscribe to every change channel of a server.

        Change listeners go on *every* database (sharded and not); the
        derived channels (tracking's ``latest`` table, the content
        catalogue's tables) are suppressed at the policy layer because
        their state is rewritten identically by replaying the fix stream
        and the content domain records — see the module docstring.
        """
        self._observe_sharded("profiles", server.users.profiles_database, record=True)
        self._observe_sharded("feedbacks", server.users.feedback.database, record=True)
        self._observe_sharded("tracking", server.users.tracking.database, record=False)
        self._observe_database("content", server.content.database, record=False)
        server.users.add_fix_listener(self._on_fix, batch=self._on_fixes)
        server.content.set_op_listener(self._on_content_op)
        server.users.set_op_listener(self._on_users_op)
        server.users.tracking.set_op_listener(self._on_tracking_op)
        server.editorial.set_op_listener(self._on_editorial_op)

    @property
    def directory(self) -> Path:
        """The WAL directory (what a replica ships frames from)."""
        return self._directory

    @property
    def last_lsn(self) -> int:
        """The most recently allocated log sequence number (0 when empty)."""
        with self._lock:
            return self._next_lsn - 1

    @property
    def suspended(self) -> bool:
        """Whether capture is currently off (restore/replay in progress)."""
        return self._suspend_depth > 0

    @contextmanager
    def suspended_capture(self) -> Iterator[None]:
        """Turn capture off for the duration (restore and replay paths).

        Replaying a commit drives the same public mutators the original
        write did; without this guard every replayed write would be
        logged a second time.
        """
        self._suspend_depth += 1
        try:
            yield
        finally:
            self._suspend_depth -= 1

    def stats(self) -> Dict[str, Any]:
        """Counters for dashboards: per-log sizes, LSN, suppressed changes."""
        return {
            "directory": str(self._directory),
            "last_lsn": self.last_lsn,
            "logs": {
                key: {"bytes": writer.size, "frames": writer.frames}
                for key, writer in sorted(self._writers.items())
            },
            "suppressed_derived_changes": self._suppressed_changes,
        }

    # Capture --------------------------------------------------------------

    def _observe_sharded(self, name: str, db: ShardedDatabase, *, record: bool) -> None:
        db.add_commit_listener(
            lambda shard, commit: self._on_db_commit(name, shard, commit, record)
        )

    def _observe_database(self, name: str, db: Database, *, record: bool) -> None:
        db.add_commit_listener(
            lambda commit: self._on_db_commit(name, None, commit, record)
        )

    def _on_db_commit(self, name, shard, commit, record) -> None:
        if self.suspended:
            return
        if not record:
            self._suppressed_changes += sum(len(changes) for _t, changes in commit)
            return
        records = []
        for table_name, changes in commit:
            encoded = []
            for change in changes:
                entry = {"op": change.op, "key": change.key, "row": change.row}
                if change.prev_key is not None:
                    entry["prev"] = change.prev_key
                encoded.append(entry)
            records.append(
                {
                    "kind": "table",
                    "db": name,
                    "shard": shard,
                    "table": table_name,
                    "changes": encoded,
                }
            )
        self.append(shard, records)

    def _on_fix(self, fix) -> None:
        self._on_fixes([fix])

    def _on_fixes(self, fixes) -> None:
        if self.suspended or not fixes:
            return
        grouped: Dict[int, list] = {}
        for fix in fixes:
            grouped.setdefault(shard_of(fix.user_id, self._shards), []).append(fix)
        for shard in sorted(grouped):
            encoded = [
                [
                    fix.user_id,
                    fix.timestamp_s,
                    fix.position.lat,
                    fix.position.lon,
                    fix.speed_mps,
                    fix.accuracy_m,
                ]
                for fix in grouped[shard]
            ]
            self.append(shard, [{"kind": "fixes", "shard": shard, "fixes": encoded}])

    def _on_content_op(self, op: str, data: Dict[str, Any]) -> None:
        if self.suspended:
            return
        self.append(None, [{"kind": "content", "op": op, "data": data}])

    def _on_users_op(self, op: str, data: Dict[str, Any]) -> None:
        # Per-user state: the record lands on the owning shard's log so it
        # stays ordered with the user's feedback learning.
        if self.suspended:
            return
        shard = shard_of(data["user_id"], self._shards)
        self.append(shard, [{"kind": "users", "op": op, "data": data}])

    def _on_tracking_op(self, op: str, data: Dict[str, Any]) -> None:
        if self.suspended:
            return
        record = {"kind": "tracking", "op": op}
        record.update(data)
        self.append(None, [record])

    def _on_editorial_op(self, op: str, data: Dict[str, Any]) -> None:
        if self.suspended:
            return
        if op == "inject":
            record = {"kind": "editorial", "op": op, "data": data}
        else:
            record = {"kind": "editorial", "op": op, **data}
        self.append(None, [record])

    def record_server_op(self, op: str, data: Optional[Dict[str, Any]] = None) -> None:
        """Log a server-level operation (e.g. a text-model refresh).

        ``data`` carries the operation's replay payload (e.g. the
        classifier training corpus) and must be JSON-serializable.
        """
        if self.suspended:
            return
        record: Dict[str, Any] = {"kind": "server", "op": op}
        if data is not None:
            record["data"] = data
        self.append(None, [record])

    # Append ---------------------------------------------------------------

    def _log_key(self, shard: Optional[int]) -> str:
        return GLOBAL_LOG if shard is None else f"shard-{shard:03d}"

    def _writer(self, key: str) -> _LogWriter:
        writer = self._writers.get(key)
        if writer is None:
            with self._lock:
                writer = self._writers.get(key)
                if writer is None:
                    writer = _LogWriter(self._directory / f"{key}.log")
                    self._writers[key] = writer
        return writer

    def append(self, shard: Optional[int], records: List[Dict[str, Any]]) -> int:
        """Append one commit to the owning log; returns its LSN."""
        with self._lock:
            lsn = self._next_lsn
            self._next_lsn += 1
        frame = encode_frame({"lsn": lsn, "records": records})
        key = self._log_key(shard)
        writer = self._writer(key)
        with writer.lock:
            t0 = time.perf_counter()
            writer.append(frame, fsync=self._config.fsync)
            elapsed = time.perf_counter() - t0
        if self._appends is not None:
            self._appends.labels(shard=key).inc()
            self._bytes.inc(len(frame))
            self._fsync_seconds.record(elapsed)
        return lsn

    def flush(self) -> None:
        """Flush every open log handle (a replica reads the files)."""
        for writer in list(self._writers.values()):
            with writer.lock:
                if writer._handle is not None:
                    writer._handle.flush()

    # Recovery / replay ----------------------------------------------------

    def read_commits(self, *, after_lsn: int = 0) -> List[Dict[str, Any]]:
        """Every complete logged commit with ``lsn > after_lsn``, LSN-sorted."""
        self.flush()
        return read_log_commits(self._directory, after_lsn=after_lsn)

    def replay_into(self, server, *, after_lsn: int) -> Dict[str, int]:
        """Replay committed frames past ``after_lsn`` into a server.

        Capture suspends for the duration so replayed writes are not
        logged again.  Returns replay counters.
        """
        commits = self.read_commits(after_lsn=after_lsn)
        applied = 0
        with self.suspended_capture():
            for commit in commits:
                applied += apply_commit(server, commit)
        return {
            "after_lsn": after_lsn,
            "last_lsn": commits[-1]["lsn"] if commits else after_lsn,
            "frames_replayed": len(commits),
            "records_applied": applied,
        }

    def load_checkpoint(self) -> Optional[Dict[str, Any]]:
        """The directory's compaction checkpoint payload, if any."""
        return load_checkpoint(self._directory)

    # Compaction -----------------------------------------------------------

    def maybe_compact(self, server, *, force: bool = False) -> Optional[Dict[str, Any]]:
        """Rewrite logs as snapshot + empty tail once over the size budget.

        Called from ``PphcrServer.maintenance_tick``: when any log's size
        reaches ``compact_min_bytes`` (or ``force``), write a whole-server
        checkpoint at the current LSN, then rewrite every log keeping only
        frames *past* the watermark (normally none — an empty tail).
        Recovery and replicas prefer the checkpoint and replay the tails.
        """
        if self.suspended:
            return None
        over_budget = any(
            writer.size >= self._config.compact_min_bytes
            for writer in self._writers.values()
        )
        if not (force or over_budget):
            return None
        watermark = self.last_lsn
        payload = {
            "version": CHECKPOINT_VERSION,
            "lsn": watermark,
            "snapshot": server.snapshot(),
        }
        target = self._directory / CHECKPOINT_NAME
        scratch = target.with_suffix(".tmp")
        scratch.write_bytes(payload_to_bytes(payload, compress=True))
        os.replace(scratch, target)
        reclaimed = 0
        for writer in list(self._writers.values()):
            with writer.lock:
                commits, good, _reason = scan_frames(writer.path.read_bytes())
                kept = [c for c in commits if c["lsn"] > watermark]
                before = writer.size
                if writer._handle is not None:
                    writer._handle.close()
                    writer._handle = None
                with open(writer.path, "wb") as handle:
                    for commit in kept:
                        handle.write(encode_frame(commit))
                writer.reset()
                writer.frames = len(kept)
                reclaimed += before - writer.size
        if self._compactions is not None:
            self._compactions.inc()
            self._reclaimed.inc(reclaimed)
        return {
            "lsn": watermark,
            "reclaimed_bytes": reclaimed,
            "logs": len(self._writers),
        }

"""Declarative index specifications for storage tables.

The seed let callers bolt hash indexes onto a live table with
``create_index`` and left every other access pattern to hand-rolled
sidecars in the stores (sorted publish lists, grid-index copies of the
latest positions, parallel dicts).  An :class:`IndexSpec` instead declares
an index *on the schema*: the table builds it at construction time and
maintains it on every insert/update/delete, and the query planner can
route matching queries through it.

Three kinds are supported, mirroring what the PPHCR stores actually need:

``hash``
    Equality lookups (``kind = 'news'``).  Buckets keep primary keys in
    row (insertion) order so indexed results match a scan's ordering.
``sorted``
    A bisect-backed ordered index over one or more columns.  Serves range
    queries, ordered iteration in either direction, and keyset cursors
    (:class:`~repro.storage.cursor.Page`).  Entries carry the table's
    monotonic row sequence as a tiebreak; ``ties`` controls which side of
    an equal-key run comes first when iterating *descending* (the clip
    listing walks newest-first but keeps insertion order among clips
    published at the same instant).
``spatial``
    A :class:`~repro.geo.grid_index.GridIndex` over a pair of lat/lon
    columns (or a computed :class:`~repro.geo.point.GeoPoint` key).  Rows
    whose position is ``None`` are simply not indexed, so nullable geo
    columns work naturally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.errors import SchemaError

#: Valid values of :attr:`IndexSpec.kind`.
INDEX_KINDS = ("hash", "sorted", "spatial")

#: Valid values of :attr:`IndexSpec.ties` (sorted indexes only).
TIE_ORDERS = ("forward", "reverse")


@dataclass(frozen=True)
class IndexSpec:
    """One declarative secondary index on a :class:`~repro.storage.table.Schema`.

    ``columns`` names the indexed columns (defaults to ``(name,)``); a
    ``key`` callable may replace them for computed keys (the legacy
    ``create_index(key_func=...)`` path).  ``ties`` only applies to sorted
    indexes and picks which walk direction preserves insertion order among
    equal keys: ``"forward"`` (the default) preserves it on ascending
    walks — what a stable ascending sort over a scan produces — while
    ``"reverse"`` preserves it on *descending* walks (the newest-first
    clip listing keeps publish-time ties in insertion order).
    """

    name: str
    kind: str = "hash"
    columns: Tuple[str, ...] = ()
    key: Optional[Callable[[Dict[str, Any]], Any]] = field(default=None, compare=False)
    #: Sorted indexes: tie order among equal keys (see class docstring).
    ties: str = "forward"
    #: Spatial indexes: grid cell size in meters.
    cell_size_m: float = 1000.0

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("index name must be non-empty")
        if self.kind not in INDEX_KINDS:
            raise SchemaError(
                f"index {self.name!r} has unknown kind {self.kind!r}; expected one of {INDEX_KINDS}"
            )
        if self.ties not in TIE_ORDERS:
            raise SchemaError(
                f"index {self.name!r} has unknown tie order {self.ties!r}; expected one of {TIE_ORDERS}"
            )
        if self.cell_size_m <= 0:
            raise SchemaError(f"index {self.name!r} cell_size_m must be > 0")
        if self.kind == "spatial" and self.key is None and len(self.effective_columns) != 2:
            raise SchemaError(
                f"spatial index {self.name!r} needs (lat, lon) columns or a computed key"
            )

    @property
    def effective_columns(self) -> Tuple[str, ...]:
        """The indexed columns (defaulting to the index name)."""
        if self.key is not None:
            return self.columns
        return self.columns if self.columns else (self.name,)

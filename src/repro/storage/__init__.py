"""An in-memory relational storage substrate.

The paper's server keeps its metadata, user profiles and feedback logs in
conventional relational databases (plus PostGIS for tracking data).  This
package provides the equivalent building blocks used throughout the
reproduction: typed tables with schemas, primary keys, secondary indexes,
and a small query layer with filtering, ordering and aggregation.
"""

from repro.storage.database import Database
from repro.storage.index import SecondaryIndex
from repro.storage.query import Query
from repro.storage.table import Column, Schema, Table

__all__ = ["Column", "Database", "Query", "Schema", "SecondaryIndex", "Table"]

"""An in-memory storage engine: typed tables, declarative indexes, a planner.

The paper's server keeps its metadata, user profiles and feedback logs in
conventional relational databases (plus PostGIS for tracking data).  This
package provides the equivalent building blocks used throughout the
reproduction:

* typed tables with schemas, primary keys and **declarative secondary
  indexes** (:class:`IndexSpec`: hash, sorted and spatial kinds) maintained
  automatically on every mutation;
* an **index-aware query planner** (:class:`Query`) that routes equality,
  membership, range and ordered reads through a matching index — with
  :meth:`Query.explain` and scan-parity guarantees — and falls back to the
  seed's full scan otherwise;
* **first-class keyset cursors** (:class:`Page`) for pagination that stays
  stable under concurrent inserts;
* a **unit-of-work write path** (:meth:`Database.batch`) with per-table
  change listeners, and **snapshot/restore** of whole databases as
  versioned JSON-serializable payloads.
"""

from repro.storage.cursor import Page, decode_token, encode_token
from repro.storage.database import Database, payload_from_bytes, payload_to_bytes
from repro.storage.index import HashIndex, SecondaryIndex, SortedIndex, SpatialIndex
from repro.storage.query import Query
from repro.storage.sharding import (
    ShardedDatabase,
    ShardingConfig,
    ShardWorkerPool,
    shard_of,
)
from repro.storage.spec import IndexSpec
from repro.storage.table import Change, Column, Schema, Table
from repro.storage.wal import DurabilityConfig, DurabilityManager

__all__ = [
    "Change",
    "Column",
    "Database",
    "DurabilityConfig",
    "DurabilityManager",
    "HashIndex",
    "IndexSpec",
    "Page",
    "Query",
    "Schema",
    "SecondaryIndex",
    "ShardedDatabase",
    "ShardingConfig",
    "ShardWorkerPool",
    "SortedIndex",
    "SpatialIndex",
    "Table",
    "decode_token",
    "encode_token",
    "payload_from_bytes",
    "payload_to_bytes",
    "shard_of",
]

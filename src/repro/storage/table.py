"""Schema-validated in-memory tables with primary keys and secondary indexes."""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple, Type

from repro.errors import DuplicateError, NotFoundError, SchemaError
from repro.storage.index import SecondaryIndex

Row = Dict[str, Any]


@dataclass(frozen=True)
class Column:
    """A column definition.

    ``dtype`` is a Python type (or tuple of types); ``nullable`` controls
    whether ``None`` is accepted; ``default`` is used when the value is
    missing on insert.
    """

    name: str
    dtype: Any = object
    nullable: bool = False
    default: Any = None
    has_default: bool = False

    def validate(self, value: Any) -> Any:
        """Check one value against the column definition and return it."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        if self.dtype is object:
            return value
        expected = self.dtype if isinstance(self.dtype, tuple) else (self.dtype,)
        # Accept ints where floats are expected, as SQL numeric widening would.
        if float in expected and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {expected!r}, got {type(value).__name__}"
            )
        return value


@dataclass
class Schema:
    """An ordered collection of columns plus the primary-key column name."""

    columns: List[Column]
    primary_key: str
    name: str = "table"
    _by_name: Dict[str, Column] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {column.name: column for column in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"schema {self.name!r} has duplicate column names")
        if self.primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of schema {self.name!r}"
            )

    @property
    def column_names(self) -> List[str]:
        """Names of all columns in definition order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"schema {self.name!r} has no column {name!r}") from exc

    def validate_row(self, row: Row) -> Row:
        """Validate and normalize a full row, applying defaults."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"row has columns not in schema {self.name!r}: {sorted(unknown)}"
            )
        validated: Row = {}
        for column in self.columns:
            if column.name in row:
                validated[column.name] = column.validate(row[column.name])
            elif column.has_default:
                validated[column.name] = copy.copy(column.default)
            elif column.nullable:
                validated[column.name] = None
            else:
                raise SchemaError(
                    f"row missing required column {column.name!r} of schema {self.name!r}"
                )
        return validated


class Table:
    """A single in-memory table.

    Rows are stored as dictionaries keyed by the primary key.  Secondary
    indexes can be declared on any column (or computed key function) and are
    maintained on every mutation.  Returned rows are copies so callers cannot
    corrupt table state by mutating them.
    """

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._rows: Dict[Any, Row] = {}
        self._indexes: Dict[str, SecondaryIndex] = {}

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The table name (from its schema)."""
        return self._schema.name

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    def create_index(self, name: str, key_func: Optional[Callable[[Row], Any]] = None) -> None:
        """Create a secondary index.

        If ``key_func`` is omitted the index is on the column named ``name``.
        Existing rows are indexed immediately.
        """
        if name in self._indexes:
            raise DuplicateError(f"index {name!r} already exists on table {self.name!r}")
        if key_func is None:
            self._schema.column(name)  # validates the column exists
            column_name = name

            def key_func(row: Row, _column: str = column_name) -> Any:
                return row[_column]

        index = SecondaryIndex(name, key_func)
        for primary_key, row in self._rows.items():
            index.add(primary_key, row)
        self._indexes[name] = index

    def insert(self, row: Row) -> Any:
        """Insert a new row; returns its primary key."""
        validated = self._schema.validate_row(row)
        key = validated[self._schema.primary_key]
        if key in self._rows:
            raise DuplicateError(
                f"table {self.name!r} already has a row with key {key!r}"
            )
        self._rows[key] = validated
        for index in self._indexes.values():
            index.add(key, validated)
        return key

    def upsert(self, row: Row) -> Any:
        """Insert the row, replacing any existing row with the same key."""
        validated = self._schema.validate_row(row)
        key = validated[self._schema.primary_key]
        if key in self._rows:
            self.delete(key)
        return self.insert(validated)

    def get(self, key: Any) -> Row:
        """Fetch a row by primary key (copy)."""
        row = self._rows.get(key)
        if row is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        return dict(row)

    def get_or_none(self, key: Any) -> Optional[Row]:
        """Fetch a row by primary key, or ``None`` if absent."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def update(self, key: Any, changes: Row) -> Row:
        """Apply a partial update to the row with the given key."""
        current = self._rows.get(key)
        if current is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        merged = dict(current)
        merged.update(changes)
        validated = self._schema.validate_row(merged)
        new_key = validated[self._schema.primary_key]
        if new_key != key and new_key in self._rows:
            raise DuplicateError(
                f"update would collide with existing key {new_key!r} in table {self.name!r}"
            )
        for index in self._indexes.values():
            index.remove(key, current)
        del self._rows[key]
        self._rows[new_key] = validated
        for index in self._indexes.values():
            index.add(new_key, validated)
        return dict(validated)

    def delete(self, key: Any) -> None:
        """Delete the row with the given key."""
        row = self._rows.pop(key, None)
        if row is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        for index in self._indexes.values():
            index.remove(key, row)

    def rows(self) -> Iterator[Row]:
        """Iterate over copies of all rows (insertion order)."""
        for row in self._rows.values():
            yield dict(row)

    def keys(self) -> List[Any]:
        """All primary keys."""
        return list(self._rows.keys())

    def find_by_index(self, index_name: str, value: Any) -> List[Row]:
        """All rows whose index key equals ``value``."""
        index = self._indexes.get(index_name)
        if index is None:
            raise NotFoundError(f"table {self.name!r} has no index {index_name!r}")
        return [dict(self._rows[key]) for key in index.lookup(value)]

    def scan(self, predicate: Callable[[Row], bool]) -> List[Row]:
        """Full scan returning copies of matching rows."""
        return [dict(row) for row in self._rows.values() if predicate(row)]

    def count(self, predicate: Optional[Callable[[Row], bool]] = None) -> int:
        """Number of rows (optionally matching a predicate)."""
        if predicate is None:
            return len(self._rows)
        return sum(1 for row in self._rows.values() if predicate(row))

    def clear(self) -> None:
        """Remove all rows."""
        self._rows.clear()
        for index in self._indexes.values():
            index.clear()

"""Schema-validated in-memory tables with declarative secondary indexes.

The storage-engine surface of one table:

* **declarative indexes** — :class:`~repro.storage.spec.IndexSpec` entries
  on the :class:`Schema` are built at construction time and maintained on
  every insert/update/delete (hash, sorted and spatial kinds; the legacy
  ``create_index`` remains as a dynamic way to add a spec to a live table);
* **keyset cursors** — :meth:`Table.page_by_index` walks a sorted index in
  either direction and returns a :class:`~repro.storage.cursor.Page` whose
  token resumes strictly after the last row served, stable under
  concurrent inserts;
* **change tracking** — a monotonic :attr:`Table.version` bumps on every
  mutation (the gateway keys weak ETags on it), per-op counters feed
  :meth:`Table.stats`, and registered listeners receive
  :class:`Change` batches (coalesced inside
  :meth:`Database.batch() <repro.storage.database.Database.batch>`);
* **snapshot/restore** — :meth:`Table.snapshot` captures the rows,
  :meth:`Table.restore` reloads them through validation and rebuilds every
  index.
"""

from __future__ import annotations

import copy
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple

from repro.errors import DuplicateError, NotFoundError, SchemaError, ValidationError
from repro.geo import BoundingBox, GeoPoint
from repro.storage.cursor import Page, decode_token, encode_token
from repro.storage.index import HashIndex, SortedIndex, SpatialIndex
from repro.storage.spec import IndexSpec

Row = Dict[str, Any]


@dataclass(frozen=True)
class Column:
    """A column definition.

    ``dtype`` is a Python type (or tuple of types); ``nullable`` controls
    whether ``None`` is accepted; ``default`` is used when the value is
    missing on insert.
    """

    name: str
    dtype: Any = object
    nullable: bool = False
    default: Any = None
    has_default: bool = False

    def validate(self, value: Any) -> Any:
        """Check one value against the column definition and return it."""
        if value is None:
            if self.nullable:
                return None
            raise SchemaError(f"column {self.name!r} is not nullable")
        if self.dtype is object:
            return value
        expected = self.dtype if isinstance(self.dtype, tuple) else (self.dtype,)
        # Accept ints where floats are expected, as SQL numeric widening would.
        if float in expected and isinstance(value, int) and not isinstance(value, bool):
            return float(value)
        if not isinstance(value, expected):
            raise SchemaError(
                f"column {self.name!r} expects {expected!r}, got {type(value).__name__}"
            )
        return value


@dataclass
class Schema:
    """An ordered collection of columns plus primary key and index specs."""

    columns: List[Column]
    primary_key: str
    name: str = "table"
    indexes: List[IndexSpec] = field(default_factory=list)
    _by_name: Dict[str, Column] = field(default_factory=dict, repr=False)

    def __post_init__(self) -> None:
        self._by_name = {column.name: column for column in self.columns}
        if len(self._by_name) != len(self.columns):
            raise SchemaError(f"schema {self.name!r} has duplicate column names")
        if self.primary_key not in self._by_name:
            raise SchemaError(
                f"primary key {self.primary_key!r} is not a column of schema {self.name!r}"
            )
        seen = set()
        for spec in self.indexes:
            if spec.name in seen:
                raise SchemaError(f"schema {self.name!r} has duplicate index {spec.name!r}")
            seen.add(spec.name)
            if spec.key is None:
                for column in spec.effective_columns:
                    self.column(column)  # raises for unknown columns

    @property
    def column_names(self) -> List[str]:
        """Names of all columns in definition order."""
        return [column.name for column in self.columns]

    def column(self, name: str) -> Column:
        """Look up a column by name."""
        try:
            return self._by_name[name]
        except KeyError as exc:
            raise SchemaError(f"schema {self.name!r} has no column {name!r}") from exc

    def validate_row(self, row: Row) -> Row:
        """Validate and normalize a full row, applying defaults."""
        unknown = set(row) - set(self._by_name)
        if unknown:
            raise SchemaError(
                f"row has columns not in schema {self.name!r}: {sorted(unknown)}"
            )
        validated: Row = {}
        for column in self.columns:
            if column.name in row:
                validated[column.name] = column.validate(row[column.name])
            elif column.has_default:
                validated[column.name] = copy.copy(column.default)
            elif column.nullable:
                validated[column.name] = None
            else:
                raise SchemaError(
                    f"row missing required column {column.name!r} of schema {self.name!r}"
                )
        return validated


@dataclass(frozen=True)
class Change:
    """One observed mutation, delivered to table change listeners.

    ``op`` is ``"insert"``/``"update"``/``"delete"`` with the affected
    row, or ``"clear"`` (whole table dropped; ``key`` is ``None``).
    ``prev_key`` is set only on an ``update`` that moved the row to a new
    primary key — replaying the change then needs the old key to find the
    row, exactly like :meth:`Table.update` did.
    """

    op: str
    key: Any
    row: Row
    prev_key: Any = None


#: A change listener receives the batch of changes one write (or one
#: ``Database.batch()`` unit of work) produced for its table.
ChangeListener = Callable[[List[Change]], None]


def _columns_key_func(columns: Tuple[str, ...]) -> Callable[[Row], Any]:
    if len(columns) == 1:
        column = columns[0]
        return lambda row: row[column]
    return lambda row: tuple(row[column] for column in columns)


def _spatial_key_func(spec: IndexSpec) -> Callable[[Row], Optional[GeoPoint]]:
    if spec.key is not None:
        return spec.key  # computed: must return Optional[GeoPoint]
    lat_column, lon_column = spec.effective_columns

    def key_func(row: Row) -> Optional[GeoPoint]:
        lat = row[lat_column]
        lon = row[lon_column]
        if lat is None or lon is None:
            return None
        return GeoPoint(lat, lon)

    return key_func


def build_index(spec: IndexSpec):
    """Construct the index structure a spec describes."""
    if spec.kind == "hash":
        key_func = spec.key if spec.key is not None else _columns_key_func(spec.effective_columns)
        return HashIndex(spec.name, key_func)
    if spec.kind == "sorted":
        key_func = spec.key if spec.key is not None else _columns_key_func(spec.effective_columns)
        return SortedIndex(spec.name, key_func, ties=spec.ties)
    return SpatialIndex(spec.name, _spatial_key_func(spec), cell_size_m=spec.cell_size_m)


class Table:
    """A single in-memory table.

    Rows are stored as dictionaries keyed by the primary key.  Secondary
    indexes are declared on the schema (or added with :meth:`create_index`)
    and maintained on every mutation.  Returned rows are copies so callers
    cannot corrupt table state by mutating them.
    """

    #: Structural, not state: index specs carry key *callables* declared by
    #: the schema (or create_index) that built this table; snapshot()
    #: captures rows and restore() re-derives index contents from them.
    SNAPSHOT_EXEMPT = ("_specs",)

    def __init__(self, schema: Schema) -> None:
        self._schema = schema
        self._rows: Dict[Any, Row] = {}
        self._specs: Dict[str, IndexSpec] = {}
        self._indexes: Dict[str, Any] = {}
        #: Monotonic per-row sequence: assigned on insert (and re-assigned on
        #: update), it is the insertion-order tiebreak sorted indexes and
        #: cursor tokens use.
        self._seqs: Dict[Any, int] = {}
        self._next_seq = 0
        self._version = 0
        self._stats = {
            "inserts": 0,
            "updates": 0,
            "deletes": 0,
            "index_hits": 0,
            "scans": 0,
        }
        self._listeners: List[ChangeListener] = []
        #: Non-None while a ``Database.batch()`` is open: changes buffer
        #: here and are delivered coalesced when the batch closes.
        self._pending_changes: Optional[List[Change]] = None
        #: Telemetry hook: ``(plan, elapsed_s, rows) -> None`` called by
        #: timed read paths (planner queries, keyset page walks).  ``None``
        #: keeps those paths on a single attribute check — the disabled
        #: telemetry budget.
        self._query_observer: Optional[Callable[[Dict[str, Any], float, int], None]] = None
        for spec in schema.indexes:
            self._specs[spec.name] = spec
            self._indexes[spec.name] = build_index(spec)

    @property
    def schema(self) -> Schema:
        """The table schema."""
        return self._schema

    @property
    def name(self) -> str:
        """The table name (from its schema)."""
        return self._schema.name

    @property
    def version(self) -> int:
        """Monotonic change counter: bumps on every committed mutation.

        The cheap "did anything change?" validator — the gateway folds it
        into weak ETags so revalidation is an integer compare.
        """
        return self._version

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, key: Any) -> bool:
        return key in self._rows

    @property
    def query_observer(self) -> Optional[Callable[[Dict[str, Any], float, int], None]]:
        """The installed query observer (``None`` when telemetry is off)."""
        return self._query_observer

    def set_query_observer(
        self, observer: Optional[Callable[[Dict[str, Any], float, int], None]]
    ) -> None:
        """Install (or clear) the telemetry query observer.

        The observer receives ``(plan, elapsed_s, rows)`` for every timed
        read: planner-routed :class:`~repro.storage.query.Query` terminals
        (with their :meth:`~repro.storage.query.Query.explain` plan) and
        :meth:`page_by_index` walks (strategy ``index_page``).
        """
        self._query_observer = observer

    # Index management -----------------------------------------------------

    def create_index(
        self,
        name: str,
        key_func: Optional[Callable[[Row], Any]] = None,
        *,
        kind: str = "hash",
        columns: Tuple[str, ...] = (),
        ties: str = "forward",
        cell_size_m: float = 1000.0,
    ) -> None:
        """Add an index to a live table (existing rows are indexed).

        The declarative path is an :class:`IndexSpec` on the schema; this
        keeps the seed's dynamic API working and now accepts every index
        kind.  Without ``key_func`` or ``columns`` the index is on the
        column named ``name``.
        """
        if name in self._indexes:
            raise DuplicateError(f"index {name!r} already exists on table {self.name!r}")
        spec = IndexSpec(
            name, kind=kind, columns=columns, key=key_func, ties=ties, cell_size_m=cell_size_m
        )
        if spec.key is None:
            for column in spec.effective_columns:
                self._schema.column(column)  # validates the column exists
        index = build_index(spec)
        for primary_key, row in self._rows.items():
            index.add(primary_key, row, self._seqs[primary_key])
        self._specs[name] = spec
        self._indexes[name] = index

    def index_names(self) -> List[str]:
        """Names of all indexes."""
        return sorted(self._indexes.keys())

    def index_spec(self, name: str) -> IndexSpec:
        """The spec an index was declared with."""
        spec = self._specs.get(name)
        if spec is None:
            raise NotFoundError(f"table {self.name!r} has no index {name!r}")
        return spec

    def _index(self, name: str):
        index = self._indexes.get(name)
        if index is None:
            raise NotFoundError(f"table {self.name!r} has no index {name!r}")
        return index

    def _typed_index(self, name: str, kind: str):
        index = self._index(name)
        if index.kind != kind:
            raise ValidationError(
                f"index {name!r} on table {self.name!r} is {index.kind!r}, not {kind!r}"
            )
        return index

    def sorted_index(self, name: str) -> SortedIndex:
        """A sorted index by name (validated kind)."""
        return self._typed_index(name, "sorted")

    def spatial_index(self, name: str) -> SpatialIndex:
        """A spatial index by name (validated kind)."""
        return self._typed_index(name, "spatial")

    def planner_index_for(self, *, kind: str, columns: Tuple[str, ...]):
        """The first index of ``kind`` declared exactly on ``columns``.

        Computed-key indexes are never planner-eligible: the planner can
        only prove a column predicate matches an index that was declared on
        those columns.  Reverse-tie sorted indexes are skipped too — their
        equal-key ordering is a listing convention, not the stable-sort
        order a scan produces, and planner results must match the scan
        exactly.
        """
        for name, spec in self._specs.items():
            if spec.kind != kind or spec.key is not None:
                continue
            if kind == "sorted" and spec.ties != "forward":
                continue
            if spec.effective_columns == columns:
                return self._indexes[name]
        return None

    # Mutation -------------------------------------------------------------

    def add_listener(self, listener: ChangeListener) -> None:
        """Register a callback for committed changes on this table.

        Each single write delivers a one-element batch; writes inside
        :meth:`Database.batch() <repro.storage.database.Database.batch>`
        are coalesced and delivered once when the batch closes — the same
        per-fix vs. bulk shape the user manager's fix-listener channel has.
        """
        self._listeners.append(listener)

    def _commit(self, change: Change) -> None:
        self._version += 1
        if self._pending_changes is not None:
            self._pending_changes.append(change)
        elif self._listeners:
            batch = [change]
            for listener in self._listeners:
                listener(batch)

    def _begin_batch(self) -> None:
        if self._pending_changes is None:
            self._pending_changes = []

    def _end_batch(self) -> None:
        pending, self._pending_changes = self._pending_changes, None
        if pending:
            for listener in self._listeners:
                listener(pending)

    def insert(self, row: Row) -> Any:
        """Insert a new row; returns its primary key."""
        validated = self._schema.validate_row(row)
        key = validated[self._schema.primary_key]
        if key in self._rows:
            raise DuplicateError(
                f"table {self.name!r} already has a row with key {key!r}"
            )
        seq = self._next_seq
        self._next_seq += 1
        self._rows[key] = validated
        self._seqs[key] = seq
        for index in self._indexes.values():
            index.add(key, validated, seq)
        self._stats["inserts"] += 1
        self._commit(Change("insert", key, dict(validated)))
        return key

    def upsert(self, row: Row) -> Any:
        """Insert the row, replacing any existing row with the same key."""
        validated = self._schema.validate_row(row)
        key = validated[self._schema.primary_key]
        if key in self._rows:
            self.update(key, validated)
            return key
        return self.insert(validated)

    def get(self, key: Any) -> Row:
        """Fetch a row by primary key (copy)."""
        row = self._rows.get(key)
        if row is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        return dict(row)

    def get_or_none(self, key: Any) -> Optional[Row]:
        """Fetch a row by primary key, or ``None`` if absent."""
        row = self._rows.get(key)
        return dict(row) if row is not None else None

    def update(self, key: Any, changes: Row) -> Row:
        """Apply a partial update to the row with the given key."""
        current = self._rows.get(key)
        if current is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        merged = dict(current)
        merged.update(changes)
        validated = self._schema.validate_row(merged)
        new_key = validated[self._schema.primary_key]
        if new_key != key and new_key in self._rows:
            raise DuplicateError(
                f"update would collide with existing key {new_key!r} in table {self.name!r}"
            )
        old_seq = self._seqs[key]
        for index in self._indexes.values():
            index.remove(key, current, old_seq)
        del self._rows[key]
        del self._seqs[key]
        seq = self._next_seq
        self._next_seq += 1
        self._rows[new_key] = validated
        self._seqs[new_key] = seq
        for index in self._indexes.values():
            index.add(new_key, validated, seq)
        self._stats["updates"] += 1
        self._commit(
            Change(
                "update",
                new_key,
                dict(validated),
                prev_key=key if new_key != key else None,
            )
        )
        return dict(validated)

    def delete(self, key: Any) -> None:
        """Delete the row with the given key."""
        row = self._rows.pop(key, None)
        if row is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        seq = self._seqs.pop(key)
        for index in self._indexes.values():
            index.remove(key, row, seq)
        self._stats["deletes"] += 1
        self._commit(Change("delete", key, dict(row)))

    def clear(self) -> None:
        """Remove all rows.

        Listeners observe this as one ``Change("clear", None, {})`` — not
        a delete per row — so derived structures kept in sync through the
        listener channel can reset instead of silently retaining rows.
        """
        had_rows = bool(self._rows)
        self._rows.clear()
        self._seqs.clear()
        for index in self._indexes.values():
            index.clear()
        if had_rows:
            self._commit(Change("clear", None, {}))

    # Reads ----------------------------------------------------------------

    def rows(self) -> Iterator[Row]:
        """Iterate over copies of all rows (insertion order)."""
        for row in self._rows.values():
            yield dict(row)

    def keys(self) -> List[Any]:
        """All primary keys."""
        return list(self._rows.keys())

    def seq_of(self, key: Any) -> int:
        """The row sequence of a primary key (insertion-order tiebreak)."""
        seq = self._seqs.get(key)
        if seq is None:
            raise NotFoundError(f"table {self.name!r} has no row with key {key!r}")
        return seq

    def find_by_index(self, index_name: str, value: Any) -> List[Row]:
        """All rows whose index key equals ``value`` (row order).

        Works for hash indexes (bucket lookup) and sorted indexes (an
        equal-bounds range); spatial indexes have their own query methods.
        """
        index = self._index(index_name)
        self._stats["index_hits"] += 1
        if index.kind == "hash":
            return [dict(self._rows[key]) for key in index.lookup(value)]
        if index.kind == "sorted":
            pks = index.pks_between(value, value, low_inclusive=True, high_inclusive=True)
            return [dict(self._rows[key]) for key in pks]
        raise ValidationError(
            f"index {index_name!r} on table {self.name!r} is spatial; "
            "use find_within/find_in_bbox"
        )

    def find_range(
        self,
        index_name: str,
        low: Any = None,
        high: Any = None,
        *,
        low_inclusive: bool = True,
        high_inclusive: bool = False,
        descending: bool = False,
    ) -> List[Row]:
        """Rows whose sorted-index key lies in the bound range, in walk order."""
        index = self.sorted_index(index_name)
        self._stats["index_hits"] += 1
        pks = index.pks_between(
            low,
            high,
            low_inclusive=low_inclusive,
            high_inclusive=high_inclusive,
            descending=descending,
        )
        return [dict(self._rows[key]) for key in pks]

    def rows_in_index_order(self, index_name: str, *, descending: bool = False) -> Iterator[Row]:
        """Walk all rows in sorted-index order."""
        index = self.sorted_index(index_name)
        self._stats["index_hits"] += 1
        for pk in index.iter_pks(descending=descending):
            yield dict(self._rows[pk])

    def find_within(
        self, index_name: str, center: GeoPoint, radius_m: float
    ) -> List[Tuple[Row, float]]:
        """``(row, distance_m)`` pairs within the radius, nearest first."""
        index = self.spatial_index(index_name)
        self._stats["index_hits"] += 1
        return [(dict(self._rows[pk]), distance) for pk, distance in index.within(center, radius_m)]

    def find_in_bbox(self, index_name: str, box: BoundingBox) -> List[Row]:
        """Rows whose indexed position falls inside the box."""
        index = self.spatial_index(index_name)
        self._stats["index_hits"] += 1
        return [dict(self._rows[pk]) for pk in index.in_bbox(box)]

    def scan(self, predicate: Callable[[Row], bool]) -> List[Row]:
        """Full scan returning copies of matching rows."""
        self._stats["scans"] += 1
        return [dict(row) for row in self._rows.values() if predicate(row)]

    def scan_iter(self) -> Iterator[Row]:
        """Lazily iterate row copies, counted as one scan.

        The planner's fallback path — laziness lets short-circuiting
        terminals (``exists``) stop at the first match.
        """
        self._stats["scans"] += 1
        return self.rows()

    def count(self, predicate: Optional[Callable[[Row], bool]] = None) -> int:
        """Number of rows (optionally matching a predicate)."""
        if predicate is None:
            return len(self._rows)
        self._stats["scans"] += 1
        return sum(1 for row in self._rows.values() if predicate(row))

    # Keyset pagination ----------------------------------------------------

    def page_by_index(
        self,
        index_name: str,
        *,
        limit: int,
        after_token: Optional[str] = None,
        descending: bool = False,
        low: Any = None,
        high: Any = None,
        high_inclusive: bool = False,
    ) -> Page[Row]:
        """One keyset page of rows in sorted-index order.

        The token encodes the index key + row sequence of the last row
        served; the next page resumes strictly past it, so walks are
        stable under concurrent inserts (a new row lands on the page its
        key belongs to and never shifts or duplicates later pages).
        ``low``/``high`` optionally restrict the walk to a key range —
        prefix bounds on multi-column indexes give per-user history pages.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        observer = self._query_observer
        start = time.perf_counter() if observer is not None else 0.0
        index = self.sorted_index(index_name)
        self._stats["index_hits"] += 1
        after = None
        if after_token is not None:
            parts = decode_token(after_token)
            key, raw_seq = tuple(parts[:-1]), parts[-1]
            if not key or not isinstance(raw_seq, int) or isinstance(raw_seq, bool):
                raise ValidationError(f"malformed cursor token {after_token!r}")
            after = (key, raw_seq)
        page_entries, more = index.page_entries(
            limit=limit,
            after=after,
            descending=descending,
            low=low,
            high=high,
            high_inclusive=high_inclusive,
        )
        rows = [dict(self._rows[pk]) for _key, _seq, pk in page_entries]
        next_token = (
            encode_token(index.entry_token_parts(page_entries[-1])) if more and rows else None
        )
        if observer is not None:
            observer(
                {
                    "strategy": "index_page",
                    "index": index_name,
                    "table": self.name,
                    "post_filters": 0,
                    "ordered": True,
                },
                time.perf_counter() - start,
                len(rows),
            )
        return Page(items=rows, next_token=next_token)

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> List[Row]:
        """A copy of every row (insertion order).

        Cell values must be JSON-serializable for the snapshot to be
        persistable — true for schema-typed scalar columns.
        """
        return [dict(row) for row in self._rows.values()]

    def bump_version_to(self, version: int) -> None:
        """Raise the change counter to at least ``version``.

        Snapshot restores call this with the captured table version:
        replaying N rows on a fresh table would otherwise land the
        counter back at N, and ETags minted before the snapshot could
        collide with post-restore state and serve stale 304s.
        """
        if version > self._version:
            self._version = version

    def restore(self, rows: Iterable[Row]) -> int:
        """Replace the table contents with ``rows`` (validated, re-indexed).

        Returns the number of rows loaded.  Listeners are not invoked —
        a restore reproduces state, it does not originate changes.
        """
        listeners, self._listeners = self._listeners, []
        # Also suspend batch buffering: with an open Database.batch() the
        # restore's inserts would otherwise be delivered as a coalesced
        # change batch once the listeners are re-attached.
        pending, self._pending_changes = self._pending_changes, None
        try:
            self.clear()
            count = 0
            for row in rows:
                self.insert(row)
                count += 1
        finally:
            self._listeners = listeners
            self._pending_changes = pending
        return count

    def stats(self) -> Dict[str, int]:
        """Operation counters plus current row count and version."""
        summary = dict(self._stats)
        summary["rows"] = len(self._rows)
        summary["version"] = self._version
        summary["indexes"] = len(self._indexes)
        return summary

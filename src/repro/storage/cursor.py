"""First-class keyset cursors for paginated storage reads.

A :class:`Page` is what every paginated storage read returns: the items
plus an opaque ``next_token`` that resumes *strictly after* (or, for
descending walks, strictly before) the last item served.  Tokens encode
the sort key + row sequence of that item, never an offset, so pagination
stays stable while rows are inserted concurrently: a new row lands at its
sorted position and simply appears on the page it belongs to — it never
shifts or duplicates the remaining pages.

Tokens are JSON arrays of scalars.  ``json`` round-trips Python floats
exactly (shortest-repr), so a resumed walk bisects to precisely the same
position the previous page ended at.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Generic, List, Optional, Sequence, TypeVar

from repro.errors import ValidationError

T = TypeVar("T")


@dataclass(frozen=True)
class Page(Generic[T]):
    """One page of a paginated read: the items plus the resume token.

    ``next_token`` is ``None`` when the walk is exhausted.
    """

    items: List[T]
    next_token: Optional[str] = None

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


def encode_token(parts: Sequence[Any]) -> str:
    """Encode a cursor position (key components + row sequence) as a token."""
    return json.dumps(list(parts), separators=(",", ":"))


def decode_token(token: str, *, expected_len: Optional[int] = None) -> List[Any]:
    """Decode a cursor token; raises :class:`ValidationError` when malformed.

    Malformed tokens are client input (the gateway passes them through
    verbatim), so they must surface as a validation failure — a 400 on the
    wire — never as a crash inside the storage layer.
    """
    try:
        parts = json.loads(token)
    except (TypeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"malformed cursor token {token!r}") from exc
    if not isinstance(parts, list) or not parts:
        raise ValidationError(f"malformed cursor token {token!r}")
    for part in parts:
        if part is not None and not isinstance(part, (str, int, float, bool)):
            raise ValidationError(f"malformed cursor token {token!r}")
    if expected_len is not None and len(parts) != expected_len:
        raise ValidationError(
            f"cursor token {token!r} has {len(parts)} parts, expected {expected_len}"
        )
    return parts

"""Shard-partitioned storage: the router in front of per-shard databases.

The ROADMAP names horizontal scale-out — ``Database``-per-shard behind the
one server — as the biggest lever toward large populations, and the
streaming compactor already proved the idiom: users hash-partition into
stable crc32 shards.  This module generalizes it into storage
infrastructure:

* :func:`shard_of` — the one shard assignment every partitioned store uses
  (crc32 of the key, never Python's salted ``hash``), so the tracking
  store, the profiles/feedback DBs, the streaming engine and the compactor
  all agree on which shard owns a user;
* :class:`ShardedDatabase` — N per-shard :class:`~repro.storage.database.Database`
  instances behind one router: single-key reads/writes go to the owning
  shard, multi-shard reads fan out and merge (including keyset-cursor
  pagination whose merged token carries one resume position per shard),
  and snapshot/restore compose per shard so one shard can be captured,
  moved or rebalanced without touching the rest;
* :class:`ShardWorkerPool` — one single-thread executor per shard.  Because
  crc32 partitioning guarantees a user's writes all land on one shard,
  pinning each shard's work to its own worker makes every shard
  single-writer: no locks inside the storage engine, parallelism across
  shards, serial execution within one.

The single-writer-per-shard invariant (see ``docs/ARCHITECTURE.md``,
"Sharding & parallel workers"): all mutations of shard *i*'s state happen
on shard *i*'s worker (or on one thread when no pool is in play).  Small
shared caches keyed per user (mobility-model caches, dirty counters) are
safe across workers because different shards touch disjoint keys and
CPython dict item writes are atomic.
"""

from __future__ import annotations

import threading
import time
import zlib
from concurrent.futures import Future, ThreadPoolExecutor
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterator, List, Optional, Tuple

from repro.errors import PipelineError, ValidationError
from repro.storage.cursor import Page, decode_token, encode_token
from repro.storage.database import Database, payload_from_bytes, payload_to_bytes
from repro.storage.table import Row, Table

#: Version stamp of :class:`ShardedDatabase` snapshot payloads — the same
#: value as :data:`repro.storage.database.SNAPSHOT_VERSION`, because a
#: merged sharded snapshot *is* a database-shaped payload (restorable into
#: any shard count, including 1).
SNAPSHOT_VERSION = 1


def shard_of(key: str, shards: int) -> int:
    """Stable shard assignment for a key (crc32, not salted ``hash``).

    Identical to :meth:`ShardedCompactor.shard_of
    <repro.streaming.compactor.ShardedCompactor.shard_of>` so every
    partitioned component places a user on the same shard across
    processes and restarts.
    """
    if shards == 1:
        return 0
    return zlib.crc32(key.encode("utf-8")) % shards


@dataclass(frozen=True)
class ShardingConfig:
    """How the server partitions per-user state.

    ``shards`` is the partition width shared by every per-user store
    (tracking, profiles, feedback, streaming models); like the compactor's
    shard count, changing it reshuffles every user's shard, so treat it as
    a deployment constant — rebalancing to a new width goes through
    snapshot/restore, which re-routes rows on load.  ``parallel`` enables
    the per-shard worker pool (multi-user batch ingest and compaction
    dispatch one task per shard instead of running serially).
    """

    shards: int = 4
    parallel: bool = True

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise PipelineError("shards must be >= 1")


class ShardWorkerPool:
    """One single-thread executor per shard: the parallel ingest substrate.

    Work for shard *i* always runs on worker *i*, so per-shard state never
    sees two writers — the storage engine stays lock-free.  Executors are
    created lazily (a serial deployment never spawns a thread) and torn
    down with :meth:`shutdown`.
    """

    def __init__(self, shards: int, *, tracer: Optional[Any] = None) -> None:
        if shards < 1:
            raise PipelineError("shards must be >= 1")
        self._shards = shards
        self._executors: List[Optional[ThreadPoolExecutor]] = [None] * shards
        self._lock = threading.Lock()
        #: Optional :class:`~repro.obs.tracing.Tracer`: when set, tasks
        #: adopt the submitter's trace context on the worker thread and run
        #: inside a ``shard.task`` span tagged with the shard id.
        self._tracer = tracer
        # Telemetry counters.  ``submitted`` is lock-guarded (any thread
        # submits); ``completed``/``busy_s`` are only written by shard i's
        # single worker thread, so they need no lock.
        self._submitted = [0] * shards
        self._completed = [0] * shards
        self._busy_s = [0.0] * shards
        # Chaos/testing hook: when set, called with the shard id at the
        # start of every task, before the task body runs.  Raising from the
        # hook fails the task exactly like the task body raising.
        self._fault_hook: Optional[Callable[[int], None]] = None

    @property
    def shard_count(self) -> int:
        """Number of shards this pool serves."""
        return self._shards

    def set_fault_hook(self, hook: Optional[Callable[[int], None]]) -> None:
        """Install (or clear, with ``None``) the per-task fault hook.

        The chaos harness uses this to make worker tasks fail on demand:
        an armed hook raising turns the whole :meth:`map_shards` barrier
        into the error path, which is exactly how a real worker crash
        mid-group presents to callers.
        """
        self._fault_hook = hook

    def _executor(self, shard: int) -> ThreadPoolExecutor:
        if not 0 <= shard < self._shards:
            raise PipelineError(f"shard must be in [0, {self._shards}), got {shard}")
        executor = self._executors[shard]
        if executor is None:
            with self._lock:
                executor = self._executors[shard]
                if executor is None:
                    executor = ThreadPoolExecutor(
                        max_workers=1, thread_name_prefix=f"shard-{shard}"
                    )
                    self._executors[shard] = executor
        return executor

    def submit(self, shard: int, fn: Callable, *args: Any, **kwargs: Any) -> Future:
        """Queue work on one shard's worker (FIFO within the shard).

        When the pool carries a tracer and the submitting thread has an
        active trace, the task re-enters that context on the worker and
        runs inside a ``shard.task`` span — cross-thread trace propagation
        is explicit (thread pools do not inherit thread-locals).
        """
        executor = self._executor(shard)
        with self._lock:
            self._submitted[shard] += 1
        tracer = self._tracer
        context = tracer.capture() if tracer is not None else None

        def run() -> Any:
            start = time.perf_counter()
            try:
                hook = self._fault_hook
                if hook is not None:
                    hook(shard)
                if context is not None:
                    with tracer.adopt(context):
                        with tracer.span("shard.task", shard=shard):
                            return fn(*args, **kwargs)
                return fn(*args, **kwargs)
            finally:
                # Single writer per shard: only worker `shard` touches these.
                self._busy_s[shard] += time.perf_counter() - start
                self._completed[shard] += 1

        return executor.submit(run)

    def stats(self) -> Dict[str, Any]:
        """Per-shard queue depth and busy time, plus the imbalance ratio.

        ``queue_depth`` is submitted-minus-completed (tasks waiting or
        running); ``busy_imbalance`` is max over mean of per-shard busy
        seconds (1.0 = perfectly balanced, only meaningful once some work
        has run).  Telemetry folds this in at pull time
        (:meth:`Telemetry.observe_pool <repro.obs.telemetry.Telemetry.observe_pool>`).
        """
        with self._lock:
            submitted = list(self._submitted)
        completed = list(self._completed)
        busy = list(self._busy_s)
        per_shard = [
            {
                "shard": shard,
                "submitted": submitted[shard],
                "completed": completed[shard],
                "queue_depth": submitted[shard] - completed[shard],
                "busy_s": round(busy[shard], 6),
            }
            for shard in range(self._shards)
        ]
        mean_busy = sum(busy) / self._shards
        imbalance = (max(busy) / mean_busy) if mean_busy > 0 else 0.0
        return {"shards": per_shard, "busy_imbalance": round(imbalance, 4)}

    def map_shards(self, work: Dict[int, Callable[[], Any]]) -> Dict[int, Any]:
        """Run one thunk per shard concurrently; wait for all of them.

        Every thunk runs to completion even when another fails — a
        half-applied shard batch would otherwise be invisible.  The first
        failure (lowest shard index, for determinism) is re-raised after
        the barrier; results are returned per shard otherwise.
        """
        futures = {shard: self.submit(shard, thunk) for shard, thunk in sorted(work.items())}
        results: Dict[int, Any] = {}
        first_error: Optional[Tuple[int, BaseException]] = None
        for shard, future in futures.items():
            try:
                results[shard] = future.result()
            except BaseException as exc:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = (shard, exc)
        if first_error is not None:
            raise first_error[1]
        return results

    def shutdown(self) -> None:
        """Stop all workers (outstanding queued work completes first)."""
        with self._lock:
            executors, self._executors = self._executors, [None] * self._shards
        for executor in executors:
            if executor is not None:
                executor.shutdown(wait=True)


class ShardedDatabase:
    """N crc32-keyed per-shard databases behind one routing façade.

    Construction takes the table-creation recipe (``create_tables``) and
    applies it to every shard, so all shards share one schema.  Reads and
    writes that carry the shard key route to the owning shard
    (:meth:`table_for`); multi-shard reads fan out and merge:

    * :meth:`stats` merges per-shard counters into one
      ``Database.stats()``-shaped report and attaches the per-shard
      breakdown under ``"shards"``;
    * :meth:`page_by_index` k-way-merges per-shard sorted-index walks into
      one globally ordered page whose cursor token carries one resume
      position per shard;
    * :meth:`snapshot` emits a *database-shaped* payload with all shards'
      rows merged — so :meth:`restore` can route rows by the shard key and
      load the same snapshot into a deployment with a **different** shard
      count.  That re-routing restore, together with
      :meth:`snapshot_shard`/:meth:`restore_shard` for single shards, is
      the rebalancing/migration primitive.
    """

    def __init__(
        self,
        name: str,
        *,
        shards: int = 1,
        shard_key: str,
        create_tables: Callable[[Database], None],
    ) -> None:
        if shards < 1:
            raise PipelineError("shards must be >= 1")
        self._name = name
        self._shards = shards
        self._shard_key = shard_key
        self._dbs: List[Database] = []
        for index in range(shards):
            db = Database(name if shards == 1 else f"{name}.s{index}")
            create_tables(db)
            self._dbs.append(db)
        #: Telemetry hook: ``(table_name, elapsed_s) -> None`` timing each
        #: cross-shard fan-out merge (see :meth:`page_by_index`).
        self._fanout_observer: Optional[Callable[[str, float], None]] = None

    @property
    def name(self) -> str:
        """The logical database name (shard databases are ``name.sN``)."""
        return self._name

    @property
    def shard_count(self) -> int:
        """Number of shards."""
        return self._shards

    @property
    def shard_key(self) -> str:
        """The column whose value routes a row to its shard."""
        return self._shard_key

    def shard_of(self, key: str) -> int:
        """The shard owning ``key`` (stable crc32 assignment)."""
        return shard_of(key, self._shards)

    def shard(self, index: int) -> Database:
        """One shard's database by index."""
        if not 0 <= index < self._shards:
            raise PipelineError(f"shard must be in [0, {self._shards}), got {index}")
        return self._dbs[index]

    @property
    def databases(self) -> List[Database]:
        """All per-shard databases, in shard order."""
        return list(self._dbs)

    def set_fanout_observer(self, observer: Optional[Callable[[str, float], None]]) -> None:
        """Install a telemetry observer timing cross-shard fan-out reads."""
        self._fanout_observer = observer

    def add_commit_listener(self, listener: Callable[[int, Any], None]) -> None:
        """Observe every shard's atomic commits, tagged with the shard index.

        ``listener(shard, commit)`` with the same commit shape as
        :meth:`Database.add_commit_listener
        <repro.storage.database.Database.add_commit_listener>` — the
        write-ahead log uses the shard index to route frames to the
        owning shard's log file.
        """
        for index, db in enumerate(self._dbs):
            db.add_commit_listener(
                lambda commit, _shard=index: listener(_shard, commit)
            )

    def for_key(self, key: str) -> Database:
        """The database owning ``key``."""
        return self._dbs[self.shard_of(key)]

    def table_for(self, key: str, table_name: str) -> Table:
        """The owning shard's table — the single-key read/write route."""
        return self.for_key(key).table(table_name)

    def tables(self, table_name: str) -> List[Table]:
        """One table per shard, in shard order (the fan-out route)."""
        return [db.table(table_name) for db in self._dbs]

    def table_names(self) -> List[str]:
        """Names of the tables every shard carries."""
        return self._dbs[0].table_names()

    def version(self, table_name: str) -> int:
        """Summed change counter of a table across shards.

        Any single-shard write bumps exactly one addend by one, so the sum
        is a monotonic whole-table validator — and it matches what a
        single unsharded table's counter would read for the same history,
        which keeps ETags identical across shard layouts.
        """
        return sum(table.version for table in self.tables(table_name))

    def total_rows(self) -> int:
        """Total rows across all shards and tables."""
        return sum(db.total_rows() for db in self._dbs)

    def stats(self) -> Dict[str, Any]:
        """Merged ``Database.stats()`` plus the per-shard breakdown.

        The top-level shape matches :meth:`Database.stats
        <repro.storage.database.Database.stats>` (dashboards render it
        unchanged); ``"shards"`` carries each shard's own stats so the ops
        panel can show skew.
        """
        per_shard = [db.stats() for db in self._dbs]
        tables: Dict[str, Dict[str, int]] = {}
        for name in self.table_names():
            merged: Dict[str, int] = {}
            for shard_stats in per_shard:
                for key, value in shard_stats["tables"][name].items():
                    merged[key] = merged.get(key, 0) + value
            # Index count is structural, not additive: every shard carries
            # the same schema.
            merged["indexes"] = per_shard[0]["tables"][name]["indexes"]
            tables[name] = merged
        return {
            "database": self._name,
            "tables": tables,
            "total_rows": sum(stats["total_rows"] for stats in per_shard),
            "index_hits": sum(stats["index_hits"] for stats in per_shard),
            "scans": sum(stats["scans"] for stats in per_shard),
            "shards": per_shard,
        }

    # Merged keyset pagination --------------------------------------------

    def page_by_index(
        self,
        table_name: str,
        index_name: str,
        *,
        limit: int,
        after_token: Optional[str] = None,
        descending: bool = False,
        low: Any = None,
        high: Any = None,
        high_inclusive: bool = False,
    ) -> Page[Row]:
        """One globally ordered keyset page merged across all shards.

        Each shard's sorted index is walked independently and the streams
        k-way merge by index key (ties break by shard, then insertion
        order — deterministic).  The cursor token is a JSON array with one
        entry per shard: that shard's own resume token (or ``None`` if the
        merge has not consumed from it yet), so resuming replays no rows
        and stays stable under concurrent inserts exactly like the
        single-table walk.  Tokens are therefore shard-layout-specific —
        an opaque resume handle, not portable state.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        observer = self._fanout_observer
        start = time.perf_counter() if observer is not None else 0.0
        shard_tokens: List[Optional[str]] = [None] * self._shards
        if after_token is not None:
            parts = decode_token(after_token, expected_len=self._shards)
            for index, part in enumerate(parts):
                if part is not None and not isinstance(part, str):
                    raise ValidationError(f"malformed cursor token {after_token!r}")
                shard_tokens[index] = part

        # Fetch up to `limit` entries per shard past its resume position.
        fetched: List[List[Tuple[Any, int, Any]]] = []
        more_flags: List[bool] = []
        indexes = []
        tables = self.tables(table_name)
        for table, token in zip(tables, shard_tokens):
            index = table.sorted_index(index_name)
            indexes.append(index)
            after = None
            if token is not None:
                token_parts = decode_token(token)
                key, raw_seq = tuple(token_parts[:-1]), token_parts[-1]
                if not key or not isinstance(raw_seq, int) or isinstance(raw_seq, bool):
                    raise ValidationError(f"malformed cursor token {after_token!r}")
                after = (key, raw_seq)
            entries, more = index.page_entries(
                limit=limit,
                after=after,
                descending=descending,
                low=low,
                high=high,
                high_inclusive=high_inclusive,
            )
            fetched.append(entries)
            more_flags.append(more)

        # K-way merge the per-shard streams by key (shard index breaks ties).
        positions = [0] * self._shards
        merged_rows: List[Row] = []
        while len(merged_rows) < limit:
            best_shard = -1
            best_key = None
            for shard_index in range(self._shards):
                position = positions[shard_index]
                if position >= len(fetched[shard_index]):
                    continue
                key = fetched[shard_index][position][0]
                if best_shard < 0 or (key > best_key if descending else key < best_key):
                    best_shard, best_key = shard_index, key
            if best_shard < 0:
                break
            entry = fetched[best_shard][positions[best_shard]]
            positions[best_shard] += 1
            merged_rows.append(tables[best_shard].get(entry[2]))
            shard_tokens[best_shard] = encode_token(
                indexes[best_shard].entry_token_parts(entry)
            )
        has_more = any(
            positions[index] < len(fetched[index]) or more_flags[index]
            for index in range(self._shards)
        )
        next_token = encode_token(shard_tokens) if has_more and merged_rows else None
        if observer is not None:
            observer(table_name, time.perf_counter() - start)
        return Page(items=merged_rows, next_token=next_token)

    # Unit of work ---------------------------------------------------------

    @contextmanager
    def batch(self) -> Iterator["ShardedDatabase"]:
        """Open a write batch spanning every shard (coalesced per table)."""
        with ExitStack() as stack:
            for db in self._dbs:
                stack.enter_context(db.batch())
            yield self

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A database-shaped payload with all shards' rows merged.

        The shape is exactly :meth:`Database.snapshot
        <repro.storage.database.Database.snapshot>` (rows concatenated in
        shard order, versions summed), so the payload is portable across
        shard layouts: :meth:`restore` re-routes each row by the shard key.
        """
        tables: Dict[str, Dict[str, Any]] = {}
        for name in self.table_names():
            rows: List[Row] = []
            version = 0
            for table in self.tables(name):
                rows.extend(table.snapshot())
                version += table.version
            tables[name] = {"rows": rows, "table_version": version}
        return {"version": SNAPSHOT_VERSION, "name": self._name, "tables": tables}

    def restore(self, payload: Dict[str, Any]) -> Dict[str, int]:
        """Load a merged snapshot, routing every row to its owning shard.

        Accepts payloads captured under **any** shard count (including a
        plain :class:`Database` snapshot) — this is how a deployment
        rebalances to a new width: snapshot, rebuild with the new count,
        restore.  Returns rows loaded per table.  Summed table versions
        are preserved so ETags minted before the snapshot stay invalid.
        """
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported database snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        tables = payload.get("tables")
        if not isinstance(tables, dict):
            raise ValidationError("database snapshot payload has no table map")
        known = set(self.table_names())
        unknown = set(tables) - known
        if unknown:
            raise ValidationError(
                f"snapshot has tables unknown to database {self._name!r}: {sorted(unknown)}"
            )
        loaded: Dict[str, int] = {}
        for name in self.table_names():
            entry = tables.get(name, {"rows": [], "table_version": 0})
            rows = entry["rows"]
            per_shard: List[List[Row]] = [[] for _ in range(self._shards)]
            for row in rows:
                key = row.get(self._shard_key)
                if not isinstance(key, str):
                    raise ValidationError(
                        f"snapshot row in table {name!r} lacks shard key {self._shard_key!r}"
                    )
                per_shard[self.shard_of(key)].append(row)
            count = 0
            shard_tables = self.tables(name)
            for table, shard_rows in zip(shard_tables, per_shard):
                count += table.restore(shard_rows)
            # Preserve the summed change counter: replaying n_i inserts per
            # shard lands the sum at the row count; raise shard 0 by the
            # deficit so version() matches the captured total.
            total_version = entry.get("table_version", 0)
            replayed = sum(table.version for table in shard_tables)
            if total_version > replayed:
                shard_tables[0].bump_version_to(
                    shard_tables[0].version + (total_version - replayed)
                )
            loaded[name] = count
        return loaded

    def snapshot_shard(self, shard: int) -> Dict[str, Any]:
        """One shard's database snapshot — the migration/rebalancing unit."""
        return self.shard(shard).snapshot()

    def restore_shard(self, shard: int, payload: Dict[str, Any]) -> Dict[str, int]:
        """Load one shard's snapshot without touching the other shards.

        Every row must actually route to ``shard`` under this router's
        layout — moving rows *between* layouts goes through the re-routing
        :meth:`restore` instead.
        """
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported database snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        for name, entry in payload.get("tables", {}).items():
            for row in entry.get("rows", []):
                key = row.get(self._shard_key)
                if not isinstance(key, str) or self.shard_of(key) != shard:
                    raise ValidationError(
                        f"row with shard key {key!r} in table {name!r} does not "
                        f"belong to shard {shard}"
                    )
        return self.shard(shard).restore(payload)

    def snapshot_bytes(self, *, compress: bool = False) -> bytes:
        """The merged snapshot serialized (optionally gzip-compressed)."""
        return payload_to_bytes(self.snapshot(), compress=compress)

    def restore_bytes(self, raw: bytes) -> Dict[str, int]:
        """Load a :meth:`snapshot_bytes` payload (compression auto-detected)."""
        return self.restore(payload_from_bytes(raw))

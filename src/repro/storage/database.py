"""A named collection of tables: the in-memory stand-in for the server's DBs.

The PPHCR server (paper Figure 3) uses several databases: the metadata DB,
the profiles DB, the feedbacks DB and the PostGIS tracking DB.  In this
reproduction each of those is a :class:`Database` instance holding typed
:class:`~repro.storage.table.Table` objects (the tracking DB additionally
wraps a spatial index, see :mod:`repro.spatialdb`).
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import DuplicateError, NotFoundError
from repro.storage.query import Query
from repro.storage.table import Schema, Table


class Database:
    """A named registry of tables."""

    def __init__(self, name: str) -> None:
        self._name = name
        self._tables: Dict[str, Table] = {}

    @property
    def name(self) -> str:
        """The database name."""
        return self._name

    def create_table(self, schema: Schema) -> Table:
        """Create a table from a schema; fails if the name is taken."""
        if schema.name in self._tables:
            raise DuplicateError(
                f"database {self._name!r} already has a table {schema.name!r}"
            )
        table = Table(schema)
        self._tables[schema.name] = table
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise NotFoundError(f"database {self._name!r} has no table {name!r}")
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and all its rows."""
        if name not in self._tables:
            raise NotFoundError(f"database {self._name!r} has no table {name!r}")
        del self._tables[name]

    def table_names(self) -> List[str]:
        """Names of all tables."""
        return sorted(self._tables.keys())

    def query(self, table_name: str) -> Query:
        """Start a query against a table."""
        return Query(self.table(table_name))

    def total_rows(self) -> int:
        """Total number of rows across all tables (used by dashboards)."""
        return sum(len(table) for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

"""A named collection of tables: the in-memory stand-in for the server's DBs.

The PPHCR server (paper Figure 3) uses several databases: the metadata DB,
the profiles DB, the feedbacks DB and the PostGIS tracking DB.  In this
reproduction each of those is a :class:`Database` instance holding typed
:class:`~repro.storage.table.Table` objects (the tracking DB additionally
wraps a spatial index, see :mod:`repro.spatialdb`).

Beyond the table registry, the database is the unit-of-work and the
persistence boundary:

* :meth:`Database.batch` opens a write batch — change-listener
  notifications from every member table buffer and are delivered
  *coalesced, per table* when the batch closes (the generalization of the
  user manager's bulk fix-listener channel);
* :meth:`Database.snapshot` / :meth:`Database.restore` capture and reload
  every table as one versioned, JSON-serializable payload;
* :meth:`Database.stats` aggregates per-table row counts, mutation
  counters and the planner's index-hit/scan counters for the dashboard.
"""

from __future__ import annotations

import gzip
import json
from contextlib import contextmanager
from typing import Any, Callable, Dict, Iterator, List, Tuple

from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.storage.query import Query
from repro.storage.table import Change, ChangeListener, Schema, Table

#: One atomic commit as observed by a database commit listener: the
#: per-table change groups a single write (or one closed ``batch()``)
#: produced, in delivery order.
Commit = List[Tuple[str, List[Change]]]

#: A commit listener receives one :data:`Commit` per unit of work.
CommitListener = Callable[[Commit], None]

#: Version stamp written into (and checked against) snapshot payloads.
SNAPSHOT_VERSION = 1

#: The gzip magic bytes — how :func:`payload_from_bytes` auto-detects a
#: compressed payload without a flag day on the wire format.
_GZIP_MAGIC = b"\x1f\x8b"


def payload_to_bytes(payload: Dict[str, Any], *, compress: bool = False) -> bytes:
    """Serialize a snapshot payload (optionally gzip-compressed).

    Compression is deterministic (``mtime=0``), so the same payload always
    yields the same bytes — rebalancing tooling can compare shard archives
    byte-for-byte.  ``gzip.decompress`` of the compressed form equals the
    uncompressed form exactly.
    """
    if not isinstance(payload, dict):
        raise ValidationError("snapshot payload must be a JSON object")
    raw = json.dumps(payload, separators=(",", ":"), sort_keys=True).encode("utf-8")
    if compress:
        return gzip.compress(raw, mtime=0)
    return raw


def payload_from_bytes(raw: bytes) -> Dict[str, Any]:
    """Deserialize a :func:`payload_to_bytes` blob (compression auto-detected)."""
    if not isinstance(raw, (bytes, bytearray)):
        raise ValidationError("snapshot bytes must be a bytes object")
    if raw[:2] == _GZIP_MAGIC:
        try:
            raw = gzip.decompress(raw)
        except (OSError, EOFError) as exc:
            raise ValidationError(f"corrupt gzip snapshot payload: {exc}") from exc
    try:
        payload = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ValidationError(f"malformed snapshot payload: {exc}") from exc
    if not isinstance(payload, dict):
        raise ValidationError("snapshot payload must be a JSON object")
    return payload


class Database:
    """A named registry of tables."""

    #: Wiring, not state: commit listeners are re-attached by whoever owns
    #: the database (the WAL, shard bridges) after a restore, and the
    #: bridged-table set refills as those bridges re-register.
    SNAPSHOT_EXEMPT = ("_commit_listeners", "_bridged")

    def __init__(self, name: str) -> None:
        self._name = name
        self._tables: Dict[str, Table] = {}
        self._batch_depth = 0
        self._query_observer = None
        self._commit_listeners: List[CommitListener] = []
        self._bridged: set = set()
        self._commit_buffer: Any = None

    @property
    def name(self) -> str:
        """The database name."""
        return self._name

    def create_table(self, schema: Schema) -> Table:
        """Create a table from a schema; fails if the name is taken."""
        if schema.name in self._tables:
            raise DuplicateError(
                f"database {self._name!r} already has a table {schema.name!r}"
            )
        table = Table(schema)
        self._tables[schema.name] = table
        if self._batch_depth > 0:
            table._begin_batch()
        if self._query_observer is not None:
            table.set_query_observer(self._query_observer)
        if self._commit_listeners:
            self._bridge_table(schema.name, table)
        return table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        table = self._tables.get(name)
        if table is None:
            raise NotFoundError(f"database {self._name!r} has no table {name!r}")
        return table

    def drop_table(self, name: str) -> None:
        """Remove a table and all its rows."""
        if name not in self._tables:
            raise NotFoundError(f"database {self._name!r} has no table {name!r}")
        del self._tables[name]

    def table_names(self) -> List[str]:
        """Names of all tables."""
        return sorted(self._tables.keys())

    def query(self, table_name: str) -> Query:
        """Start a query against a table."""
        return Query(self.table(table_name))

    def total_rows(self) -> int:
        """Total number of rows across all tables (used by dashboards)."""
        return sum(len(table) for table in self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def set_query_observer(self, observer) -> None:
        """Install a telemetry query observer on every table (and future ones).

        See :meth:`Table.set_query_observer
        <repro.storage.table.Table.set_query_observer>`; ``None`` clears.
        """
        self._query_observer = observer
        for table in self._tables.values():
            table.set_query_observer(observer)

    # Unit of work ---------------------------------------------------------

    def add_listener(self, table_name: str, listener: ChangeListener) -> None:
        """Register a change listener on one member table."""
        self.table(table_name).add_listener(listener)

    def add_commit_listener(self, listener: CommitListener) -> None:
        """Observe whole units of work instead of single tables.

        The listener receives one :data:`Commit` — a list of
        ``(table_name, [Change, ...])`` groups — per atomic write: a bare
        mutation outside a batch delivers a one-group commit immediately,
        while everything inside one outermost :meth:`batch` arrives as a
        single commit with every touched table's coalesced changes.  This
        is the write-ahead log's feed: commit boundaries here become
        atomic commit records there.
        """
        if not self._commit_listeners:
            for name, table in self._tables.items():
                self._bridge_table(name, table)
        self._commit_listeners.append(listener)

    def _bridge_table(self, name: str, table: Table) -> None:
        if name in self._bridged:
            return
        self._bridged.add(name)
        table.add_listener(
            lambda changes, _name=name: self._observe_table_changes(_name, changes)
        )

    def _observe_table_changes(self, table_name: str, changes: List[Change]) -> None:
        if not self._commit_listeners or not changes:
            return
        group = (table_name, list(changes))
        if self._commit_buffer is not None:
            self._commit_buffer.append(group)
            return
        commit = [group]
        for listener in self._commit_listeners:
            listener(commit)

    @contextmanager
    def batch(self) -> Iterator["Database"]:
        """Open a write batch over every table in the database.

        Inside the batch, mutations apply immediately (reads see them) but
        change-listener notifications buffer; when the batch closes each
        table delivers its changes as *one* coalesced batch — the same
        per-item vs. bulk shape the user manager's fix listeners have.
        Batches nest: only the outermost close delivers.  Changes made
        before an exception are still delivered, mirroring how partial
        batch ingests notify listeners of the fixes that were accepted.
        """
        self._batch_depth += 1
        if self._batch_depth == 1:
            for table in self._tables.values():
                table._begin_batch()
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                if self._commit_listeners:
                    self._commit_buffer = []
                try:
                    for table in self._tables.values():
                        table._end_batch()
                finally:
                    buffered, self._commit_buffer = self._commit_buffer, None
                    if buffered:
                        for listener in self._commit_listeners:
                            listener(buffered)

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A versioned, JSON-serializable payload of every table's rows.

        Schemas are code, not data: the payload carries rows only and a
        restore replays them through the live schema's validation, so a
        snapshot cannot smuggle rows past type checking.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "name": self._name,
            "tables": {
                name: {"rows": table.snapshot(), "table_version": table.version}
                for name, table in self._tables.items()
            },
        }

    def restore(self, payload: Dict[str, Any]) -> Dict[str, int]:
        """Load a :meth:`snapshot` payload into this database's tables.

        Tables must already exist (created by the owning store's
        constructor); unknown tables in the payload raise, missing ones
        are cleared.  Returns rows loaded per table.
        """
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported database snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        tables = payload.get("tables")
        if not isinstance(tables, dict):
            raise ValidationError("database snapshot payload has no table map")
        unknown = set(tables) - set(self._tables)
        if unknown:
            raise ValidationError(
                f"snapshot has tables unknown to database {self._name!r}: {sorted(unknown)}"
            )
        loaded: Dict[str, int] = {}
        for name, table in self._tables.items():
            entry = tables.get(name, {"rows": [], "table_version": 0})
            loaded[name] = table.restore(entry["rows"])
            # Re-arm the change counter: replaying N inserts on a fresh
            # table lands at version N, which could collide with ETags
            # minted before the snapshot was taken.
            table.bump_version_to(entry.get("table_version", 0))
        return loaded

    def snapshot_bytes(self, *, compress: bool = False) -> bytes:
        """The snapshot serialized to bytes, optionally gzip-compressed.

        The per-shard rebalancing path ships these blobs between
        processes; compression keeps them small and the round trip is
        exact: decompressing the compressed form yields byte-identical
        output to ``snapshot_bytes(compress=False)``.
        """
        return payload_to_bytes(self.snapshot(), compress=compress)

    def restore_bytes(self, raw: bytes) -> Dict[str, int]:
        """Load a :meth:`snapshot_bytes` blob (compression auto-detected)."""
        return self.restore(payload_from_bytes(raw))

    def stats(self) -> Dict[str, Any]:
        """Aggregate per-table statistics (rows, writes, planner counters)."""
        tables = {name: table.stats() for name, table in self._tables.items()}
        return {
            "database": self._name,
            "tables": tables,
            "total_rows": sum(stats["rows"] for stats in tables.values()),
            "index_hits": sum(stats["index_hits"] for stats in tables.values()),
            "scans": sum(stats["scans"] for stats in tables.values()),
        }

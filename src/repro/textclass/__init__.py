"""Text classification: tokenizer, vocabulary, multinomial Naive Bayes, TF-IDF.

This is the "Bayesian classifier trained with a set of news, according to a
set of 30 categories" of the paper's clip data management component,
implemented from scratch so its behaviour is fully inspectable.
"""

from repro.textclass.evaluation import ClassificationReport, evaluate_classifier
from repro.textclass.naive_bayes import NaiveBayesClassifier
from repro.textclass.tfidf import TfIdfVectorizer
from repro.textclass.tokenizer import Tokenizer
from repro.textclass.vocabulary import Vocabulary

__all__ = [
    "ClassificationReport",
    "NaiveBayesClassifier",
    "TfIdfVectorizer",
    "Tokenizer",
    "Vocabulary",
    "evaluate_classifier",
]

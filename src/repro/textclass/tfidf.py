"""TF-IDF vectorization and cosine similarity.

Used by the content-based recommender to compare clips textually (e.g. for
"more like what the listener kept listening to") in addition to the
category-level profile matching.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ClassificationError
from repro.textclass.tokenizer import Tokenizer
from repro.textclass.vocabulary import Vocabulary

SparseVector = Dict[int, float]


class TfIdfVectorizer:
    """Classic TF-IDF with smoothed inverse document frequency."""

    def __init__(self, *, tokenizer: Optional[Tokenizer] = None, max_features: Optional[int] = None) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._max_features = max_features
        self._vocabulary: Optional[Vocabulary] = None
        self._idf: List[float] = []

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._vocabulary is not None

    @property
    def vocabulary(self) -> Vocabulary:
        """The fitted vocabulary."""
        self._require_fitted()
        return self._vocabulary  # type: ignore[return-value]

    def fit(self, documents: Sequence[str]) -> "TfIdfVectorizer":
        """Learn the vocabulary and IDF weights from a corpus."""
        if not documents:
            raise ClassificationError("cannot fit TF-IDF on an empty corpus")
        tokenized = self._tokenizer.tokenize_many(documents)
        self._vocabulary = Vocabulary.build(tokenized, max_size=self._max_features)
        document_frequency = [0] * len(self._vocabulary)
        for tokens in tokenized:
            seen = set()
            for token in tokens:
                if token in self._vocabulary and token not in seen:
                    document_frequency[self._vocabulary.index_of(token)] += 1
                    seen.add(token)
        n = len(documents)
        self._idf = [
            math.log((1 + n) / (1 + df)) + 1.0 for df in document_frequency
        ]
        return self

    def transform(self, document: str) -> SparseVector:
        """Vectorize one document into a sparse, L2-normalized TF-IDF vector."""
        self._require_fitted()
        tokens = self._tokenizer.tokenize(document)
        counts = Counter(
            self._vocabulary.index_of(token) for token in tokens if token in self._vocabulary
        )
        if not counts:
            return {}
        total = sum(counts.values())
        vector = {
            index: (count / total) * self._idf[index] for index, count in counts.items()
        }
        norm = math.sqrt(sum(value * value for value in vector.values()))
        if norm == 0.0:
            return {}
        return {index: value / norm for index, value in vector.items()}

    def fit_transform(self, documents: Sequence[str]) -> List[SparseVector]:
        """Fit on the corpus and vectorize every document."""
        self.fit(documents)
        return [self.transform(document) for document in documents]

    def transform_many(self, documents: Iterable[str]) -> List[SparseVector]:
        """Vectorize a batch."""
        return [self.transform(document) for document in documents]

    def _require_fitted(self) -> None:
        if self._vocabulary is None:
            raise ClassificationError("vectorizer must be fitted before transform")


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (0 if either is empty).

    Vectors produced by :class:`TfIdfVectorizer` are already normalized, so
    this reduces to a sparse dot product, but un-normalized inputs are also
    handled correctly.
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(index, 0.0) for index, value in a.items())
    norm_a = math.sqrt(sum(value * value for value in a.values()))
    norm_b = math.sqrt(sum(value * value for value in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)

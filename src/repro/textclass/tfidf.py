"""TF-IDF vectorization and cosine similarity.

Used by the content-based recommender to compare clips textually (e.g. for
"more like what the listener kept listening to") in addition to the
category-level profile matching.
"""

from __future__ import annotations

import math
from collections import Counter, OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence

from repro.errors import ClassificationError
from repro.textclass.tokenizer import Tokenizer
from repro.textclass.vocabulary import Vocabulary

SparseVector = Dict[int, float]


class TfIdfVectorizer:
    """Classic TF-IDF with smoothed inverse document frequency."""

    def __init__(
        self,
        *,
        tokenizer: Optional[Tokenizer] = None,
        max_features: Optional[int] = None,
        cache_size: int = 4096,
    ) -> None:
        self._tokenizer = tokenizer or Tokenizer()
        self._max_features = max_features
        self._vocabulary: Optional[Vocabulary] = None
        self._idf: List[float] = []
        # Transforming the same transcript is a ranking hot path (every
        # recommend tick re-vectorizes candidate clips), so vectors are
        # memoized per document text; a refit invalidates the lot.
        self._cache_size = max(0, cache_size)
        self._cache: "OrderedDict[str, SparseVector]" = OrderedDict()
        self._cache_hits = 0
        self._cache_misses = 0

    @property
    def is_fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._vocabulary is not None

    @property
    def vocabulary(self) -> Vocabulary:
        """The fitted vocabulary."""
        self._require_fitted()
        return self._vocabulary  # type: ignore[return-value]

    def fit(self, documents: Sequence[str]) -> "TfIdfVectorizer":
        """Learn the vocabulary and IDF weights from a corpus."""
        if not documents:
            raise ClassificationError("cannot fit TF-IDF on an empty corpus")
        tokenized = self._tokenizer.tokenize_many(documents)
        self._vocabulary = Vocabulary.build(tokenized, max_size=self._max_features)
        document_frequency = [0] * len(self._vocabulary)
        for tokens in tokenized:
            seen = set()
            for token in tokens:
                if token in self._vocabulary and token not in seen:
                    document_frequency[self._vocabulary.index_of(token)] += 1
                    seen.add(token)
        n = len(documents)
        self._idf = [
            math.log((1 + n) / (1 + df)) + 1.0 for df in document_frequency
        ]
        # The fitted vocabulary/IDF changed: memoized vectors are stale.
        self._cache.clear()
        self._cache_hits = 0
        self._cache_misses = 0
        return self

    def transform(self, document: str) -> SparseVector:
        """Vectorize one document into a sparse, L2-normalized TF-IDF vector.

        Vectors are memoized per document text (LRU, ``cache_size`` entries)
        so repeated transforms — ``transform_many`` over a clip archive full
        of recurring transcripts — skip tokenization entirely.  Callers get
        a fresh dict each time, so mutating a result cannot poison the cache.
        """
        self._require_fitted()
        if self._cache_size > 0:
            cached = self._cache.get(document)
            if cached is not None:
                self._cache.move_to_end(document)
                self._cache_hits += 1
                return dict(cached)
            self._cache_misses += 1
        vector = self._vectorize(document)
        if self._cache_size > 0:
            self._cache[document] = vector
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)
            return dict(vector)
        return vector

    def _vectorize(self, document: str) -> SparseVector:
        tokens = self._tokenizer.tokenize(document)
        counts = Counter(
            self._vocabulary.index_of(token) for token in tokens if token in self._vocabulary
        )
        if not counts:
            return {}
        total = sum(counts.values())
        vector = {
            index: (count / total) * self._idf[index] for index, count in counts.items()
        }
        norm = math.sqrt(sum(value * value for value in vector.values()))
        if norm == 0.0:
            return {}
        return {index: value / norm for index, value in vector.items()}

    def fit_transform(self, documents: Sequence[str]) -> List[SparseVector]:
        """Fit on the corpus and vectorize every document."""
        self.fit(documents)
        return [self.transform(document) for document in documents]

    def transform_many(self, documents: Iterable[str]) -> List[SparseVector]:
        """Vectorize a batch (repeated documents tokenize once)."""
        return [self.transform(document) for document in documents]

    def cache_info(self) -> Dict[str, int]:
        """Memoization counters: hits, misses, current size, capacity."""
        return {
            "hits": self._cache_hits,
            "misses": self._cache_misses,
            "size": len(self._cache),
            "capacity": self._cache_size,
        }

    def _require_fitted(self) -> None:
        if self._vocabulary is None:
            raise ClassificationError("vectorizer must be fitted before transform")


def cosine_similarity(a: SparseVector, b: SparseVector) -> float:
    """Cosine similarity of two sparse vectors (0 if either is empty).

    Vectors produced by :class:`TfIdfVectorizer` are already normalized, so
    this reduces to a sparse dot product, but un-normalized inputs are also
    handled correctly.
    """
    if not a or not b:
        return 0.0
    if len(b) < len(a):
        a, b = b, a
    dot = sum(value * b.get(index, 0.0) for index, value in a.items())
    norm_a = math.sqrt(sum(value * value for value in a.values()))
    norm_b = math.sqrt(sum(value * value for value in b.values()))
    if norm_a == 0.0 or norm_b == 0.0:
        return 0.0
    return dot / (norm_a * norm_b)

"""Multinomial Naive Bayes text classifier with Laplace smoothing."""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import ClassificationError
from repro.textclass.tokenizer import Tokenizer
from repro.textclass.vocabulary import Vocabulary


class NaiveBayesClassifier:
    """The paper's Bayesian news classifier.

    Trains per-category unigram likelihoods with Laplace (add-``alpha``)
    smoothing and classifies via maximum a-posteriori.  ``predict_proba``
    returns a normalized posterior which downstream code stores on
    :class:`~repro.content.model.AudioClip` as its category score vector.
    """

    def __init__(self, *, alpha: float = 1.0, tokenizer: Optional[Tokenizer] = None) -> None:
        if alpha <= 0:
            raise ClassificationError(f"alpha must be > 0, got {alpha}")
        self._alpha = alpha
        self._tokenizer = tokenizer or Tokenizer()
        self._vocabulary: Optional[Vocabulary] = None
        self._class_priors: Dict[str, float] = {}
        self._word_log_likelihood: Dict[str, Dict[str, float]] = {}
        self._unknown_log_likelihood: Dict[str, float] = {}
        self._classes: List[str] = []

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return bool(self._classes)

    @property
    def classes(self) -> List[str]:
        """Known class labels (training order preserved, then sorted)."""
        return list(self._classes)

    def fit(self, texts: Sequence[str], labels: Sequence[str]) -> "NaiveBayesClassifier":
        """Train on parallel lists of documents and labels."""
        if len(texts) != len(labels):
            raise ClassificationError("texts and labels must have the same length")
        if not texts:
            raise ClassificationError("cannot train on an empty dataset")
        tokenized = self._tokenizer.tokenize_many(texts)
        self._vocabulary = Vocabulary.build(tokenized, min_count=1)
        vocabulary_size = max(1, len(self._vocabulary))

        class_document_counts: Counter = Counter(labels)
        total_documents = len(texts)
        token_counts: Dict[str, Counter] = defaultdict(Counter)
        class_token_totals: Dict[str, int] = defaultdict(int)
        for tokens, label in zip(tokenized, labels):
            known = [token for token in tokens if token in self._vocabulary]
            token_counts[label].update(known)
            class_token_totals[label] += len(known)

        self._classes = sorted(class_document_counts.keys())
        self._class_priors = {
            label: math.log(count / total_documents)
            for label, count in class_document_counts.items()
        }
        self._word_log_likelihood = {}
        self._unknown_log_likelihood = {}
        for label in self._classes:
            denominator = class_token_totals[label] + self._alpha * vocabulary_size
            likelihoods: Dict[str, float] = {}
            for token in self._vocabulary.tokens():
                count = token_counts[label][token]
                likelihoods[token] = math.log((count + self._alpha) / denominator)
            self._word_log_likelihood[label] = likelihoods
            self._unknown_log_likelihood[label] = math.log(self._alpha / denominator)
        return self

    def log_posteriors(self, text: str) -> Dict[str, float]:
        """Unnormalized log posterior per class."""
        self._require_trained()
        tokens = self._tokenizer.tokenize(text)
        scores: Dict[str, float] = {}
        for label in self._classes:
            score = self._class_priors[label]
            likelihoods = self._word_log_likelihood[label]
            unknown = self._unknown_log_likelihood[label]
            for token in tokens:
                score += likelihoods.get(token, unknown)
            scores[label] = score
        return scores

    def predict(self, text: str) -> str:
        """Most probable class for a document."""
        scores = self.log_posteriors(text)
        return max(scores.items(), key=lambda pair: (pair[1], pair[0]))[0]

    def predict_proba(self, text: str) -> Dict[str, float]:
        """Normalized posterior distribution over classes."""
        scores = self.log_posteriors(text)
        maximum = max(scores.values())
        exponentials = {label: math.exp(score - maximum) for label, score in scores.items()}
        total = sum(exponentials.values())
        return {label: value / total for label, value in exponentials.items()}

    def predict_many(self, texts: Iterable[str]) -> List[str]:
        """Predict a batch of documents."""
        return [self.predict(text) for text in texts]

    def top_k(self, text: str, k: int = 3) -> List[Tuple[str, float]]:
        """The ``k`` most probable classes with their posterior mass."""
        if k < 1:
            raise ClassificationError(f"k must be >= 1, got {k}")
        probabilities = self.predict_proba(text)
        ranked = sorted(probabilities.items(), key=lambda pair: pair[1], reverse=True)
        return ranked[:k]

    def informative_tokens(self, label: str, *, top: int = 10) -> List[str]:
        """The tokens with the highest likelihood under a class (diagnostics)."""
        self._require_trained()
        if label not in self._word_log_likelihood:
            raise ClassificationError(f"unknown class {label!r}")
        likelihoods = self._word_log_likelihood[label]
        ranked = sorted(likelihoods.items(), key=lambda pair: pair[1], reverse=True)
        return [token for token, _score in ranked[:top]]

    def _require_trained(self) -> None:
        if not self.is_trained:
            raise ClassificationError("classifier must be trained before prediction")

"""Tokenization and normalization of transcripts."""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Optional

from repro.errors import ValidationError

_TOKEN_PATTERN = re.compile(r"[a-zàèéìòù]+", re.IGNORECASE)

#: A small set of Italian-ish function words dropped by default.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    {
        "il", "lo", "la", "le", "gli", "un", "una", "di", "da", "in", "con",
        "su", "per", "tra", "fra", "che", "chi", "cui", "non", "come", "dove",
        "quando", "anche", "ma", "ed", "se", "del", "della", "dei", "delle",
        "al", "alla", "ai", "alle", "nel", "nella", "sono", "essere", "stato",
    }
)


class Tokenizer:
    """Lower-cases, extracts alphabetic tokens and filters stopwords."""

    def __init__(
        self,
        *,
        stopwords: Optional[Iterable[str]] = None,
        min_token_length: int = 2,
    ) -> None:
        if min_token_length < 1:
            raise ValidationError("min_token_length must be >= 1")
        self._stopwords = frozenset(stopwords) if stopwords is not None else DEFAULT_STOPWORDS
        self._min_token_length = min_token_length

    def tokenize(self, text: str) -> List[str]:
        """Split ``text`` into normalized tokens."""
        if text is None:
            raise ValidationError("text must not be None")
        tokens = _TOKEN_PATTERN.findall(text.lower())
        return [
            token
            for token in tokens
            if len(token) >= self._min_token_length and token not in self._stopwords
        ]

    def tokenize_many(self, texts: Iterable[str]) -> List[List[str]]:
        """Tokenize a batch of documents."""
        return [self.tokenize(text) for text in texts]

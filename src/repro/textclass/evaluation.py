"""Classifier evaluation: accuracy, per-class precision/recall/F1, confusion."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import ClassificationError
from repro.textclass.naive_bayes import NaiveBayesClassifier


@dataclass(frozen=True)
class ClassMetrics:
    """Precision / recall / F1 for one class."""

    label: str
    precision: float
    recall: float
    f1: float
    support: int


@dataclass(frozen=True)
class ClassificationReport:
    """Aggregate evaluation of a classifier on a labeled test set."""

    accuracy: float
    macro_f1: float
    per_class: Dict[str, ClassMetrics]
    confusion: Dict[Tuple[str, str], int]  # (true, predicted) -> count
    total: int

    def most_confused_pairs(self, top: int = 5) -> List[Tuple[Tuple[str, str], int]]:
        """Off-diagonal confusion cells with the highest counts."""
        off_diagonal = [
            (pair, count) for pair, count in self.confusion.items() if pair[0] != pair[1]
        ]
        off_diagonal.sort(key=lambda item: item[1], reverse=True)
        return off_diagonal[:top]


def evaluate_classifier(
    classifier: NaiveBayesClassifier,
    texts: Sequence[str],
    labels: Sequence[str],
) -> ClassificationReport:
    """Evaluate predictions of ``classifier`` against ground-truth ``labels``."""
    if len(texts) != len(labels):
        raise ClassificationError("texts and labels must have the same length")
    if not texts:
        raise ClassificationError("cannot evaluate on an empty test set")
    predictions = classifier.predict_many(texts)
    confusion: Dict[Tuple[str, str], int] = {}
    correct = 0
    for truth, predicted in zip(labels, predictions):
        confusion[(truth, predicted)] = confusion.get((truth, predicted), 0) + 1
        if truth == predicted:
            correct += 1

    class_labels = sorted(set(labels) | set(predictions))
    per_class: Dict[str, ClassMetrics] = {}
    f1_values: List[float] = []
    for label in class_labels:
        true_positive = confusion.get((label, label), 0)
        false_positive = sum(
            count for (truth, predicted), count in confusion.items()
            if predicted == label and truth != label
        )
        false_negative = sum(
            count for (truth, predicted), count in confusion.items()
            if truth == label and predicted != label
        )
        support = true_positive + false_negative
        precision = (
            true_positive / (true_positive + false_positive)
            if (true_positive + false_positive) > 0
            else 0.0
        )
        recall = true_positive / support if support > 0 else 0.0
        f1 = 2 * precision * recall / (precision + recall) if (precision + recall) > 0 else 0.0
        per_class[label] = ClassMetrics(label, precision, recall, f1, support)
        if support > 0:
            f1_values.append(f1)

    macro_f1 = sum(f1_values) / len(f1_values) if f1_values else 0.0
    return ClassificationReport(
        accuracy=correct / len(texts),
        macro_f1=macro_f1,
        per_class=per_class,
        confusion=confusion,
        total=len(texts),
    )

"""Vocabulary: a bidirectional token <-> index mapping with frequency pruning."""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, List, Optional

from repro.errors import NotFoundError, ValidationError


class Vocabulary:
    """Maps tokens to dense integer indices.

    Construction can prune rare tokens (``min_count``) and cap the size
    (``max_size``, keeping the most frequent tokens).
    """

    def __init__(self) -> None:
        self._token_to_index: Dict[str, int] = {}
        self._index_to_token: List[str] = []
        self._counts: Counter = Counter()

    @classmethod
    def build(
        cls,
        documents: Iterable[List[str]],
        *,
        min_count: int = 1,
        max_size: Optional[int] = None,
    ) -> "Vocabulary":
        """Build a vocabulary from tokenized documents."""
        if min_count < 1:
            raise ValidationError("min_count must be >= 1")
        if max_size is not None and max_size < 1:
            raise ValidationError("max_size must be >= 1")
        counts: Counter = Counter()
        for tokens in documents:
            counts.update(tokens)
        vocabulary = cls()
        eligible = [
            (token, count) for token, count in counts.items() if count >= min_count
        ]
        eligible.sort(key=lambda pair: (-pair[1], pair[0]))
        if max_size is not None:
            eligible = eligible[:max_size]
        for token, count in eligible:
            vocabulary._add(token, count)
        return vocabulary

    def _add(self, token: str, count: int) -> None:
        if token in self._token_to_index:
            return
        self._token_to_index[token] = len(self._index_to_token)
        self._index_to_token.append(token)
        self._counts[token] = count

    def __len__(self) -> int:
        return len(self._index_to_token)

    def __contains__(self, token: str) -> bool:
        return token in self._token_to_index

    def index_of(self, token: str) -> int:
        """Index of a known token."""
        index = self._token_to_index.get(token)
        if index is None:
            raise NotFoundError(f"token {token!r} is not in the vocabulary")
        return index

    def token_at(self, index: int) -> str:
        """Token at a given index."""
        if not 0 <= index < len(self._index_to_token):
            raise NotFoundError(f"vocabulary has no index {index}")
        return self._index_to_token[index]

    def count_of(self, token: str) -> int:
        """Training-corpus frequency of a token (0 if unknown)."""
        return self._counts.get(token, 0)

    def tokens(self) -> List[str]:
        """All tokens in index order."""
        return list(self._index_to_token)

    def encode(self, tokens: Iterable[str], *, skip_unknown: bool = True) -> List[int]:
        """Map tokens to indices, skipping (or raising on) unknown tokens."""
        indices: List[int] = []
        for token in tokens:
            index = self._token_to_index.get(token)
            if index is None:
                if skip_unknown:
                    continue
                raise NotFoundError(f"token {token!r} is not in the vocabulary")
            indices.append(index)
        return indices

"""Client-side buffering and schedule synchronization.

"The app synchronizes metadata and implements buffering and synchronization
to ensure that the selected live audio is seamlessly replaced by the
recommended clips."  Figure 4 of the paper shows the effect: the live
programmes continue in the buffer while a recommended clip plays, and a
programme that started 20 minutes ago can be presented time-shifted
afterwards.

The :class:`BufferManager` keeps a rolling buffer of the live service,
tracks the playback offset (how far behind live the listener currently is)
and answers the two questions the player needs: "can I seamlessly resume the
live programme at this offset?" and "how much buffered audio do I have?".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import DeliveryError
from repro.util.timeutils import TimeWindow


@dataclass(frozen=True)
class BufferedSegment:
    """A contiguous stretch of live audio held in the client buffer."""

    service_id: str
    window: TimeWindow  # the broadcast-time interval the segment covers

    @property
    def duration_s(self) -> float:
        """Length of the buffered segment."""
        return self.window.duration_s


class BufferManager:
    """A rolling live-audio buffer with a bounded capacity."""

    def __init__(self, *, capacity_s: float = 3600.0) -> None:
        if capacity_s <= 0:
            raise DeliveryError("capacity_s must be > 0")
        self._capacity_s = capacity_s
        self._segments: List[BufferedSegment] = []
        self._service_id: Optional[str] = None

    @property
    def capacity_s(self) -> float:
        """Maximum amount of live audio the buffer can hold."""
        return self._capacity_s

    @property
    def service_id(self) -> Optional[str]:
        """The service currently being buffered."""
        return self._service_id

    def tune(self, service_id: str, *, at_s: float) -> None:
        """Start buffering a (new) service; any previous buffer is dropped."""
        self._service_id = service_id
        self._segments = [BufferedSegment(service_id, TimeWindow(at_s, at_s))]

    def record_reception(self, *, from_s: float, to_s: float) -> None:
        """Extend the buffer with live audio received in ``[from_s, to_s)``."""
        if self._service_id is None:
            raise DeliveryError("buffer must be tuned to a service before receiving audio")
        if to_s < from_s:
            raise DeliveryError("reception interval end must be >= start")
        if self._segments and self._segments[-1].window.end_s >= from_s:
            last = self._segments[-1]
            merged = TimeWindow(last.window.start_s, max(last.window.end_s, to_s))
            self._segments[-1] = BufferedSegment(self._service_id, merged)
        else:
            self._segments.append(
                BufferedSegment(self._service_id, TimeWindow(from_s, to_s))
            )
        self._evict()

    def _evict(self) -> None:
        # Drop the oldest audio beyond capacity, measured from the newest sample.
        if not self._segments:
            return
        newest = self._segments[-1].window.end_s
        horizon = newest - self._capacity_s
        kept: List[BufferedSegment] = []
        for segment in self._segments:
            if segment.window.end_s <= horizon:
                continue
            start = max(segment.window.start_s, horizon)
            kept.append(BufferedSegment(segment.service_id, TimeWindow(start, segment.window.end_s)))
        self._segments = kept

    def buffered_duration_s(self) -> float:
        """Total amount of live audio currently buffered."""
        return sum(segment.duration_s for segment in self._segments)

    def newest_instant_s(self) -> Optional[float]:
        """Broadcast time of the newest buffered sample."""
        return self._segments[-1].window.end_s if self._segments else None

    def oldest_instant_s(self) -> Optional[float]:
        """Broadcast time of the oldest buffered sample."""
        return self._segments[0].window.start_s if self._segments else None

    def is_available(self, broadcast_instant_s: float) -> bool:
        """Whether audio broadcast at the given instant is still in the buffer."""
        return any(
            segment.window.contains(broadcast_instant_s) or segment.window.end_s == broadcast_instant_s
            for segment in self._segments
        )

    def can_resume_at(self, broadcast_instant_s: float) -> bool:
        """Whether playback can seamlessly resume from this broadcast instant.

        True when the instant is buffered or is the live edge itself.
        """
        newest = self.newest_instant_s()
        if newest is None:
            return False
        if broadcast_instant_s >= newest:
            return True  # at or beyond the live edge: just play live
        return self.is_available(broadcast_instant_s)

    def max_time_shift_s(self) -> float:
        """How far behind live playback can currently lag."""
        newest = self.newest_instant_s()
        oldest = self.oldest_instant_s()
        if newest is None or oldest is None:
            return 0.0
        return newest - oldest

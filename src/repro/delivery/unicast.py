"""Unicast (Internet streaming) delivery with per-byte accounting."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import DeliveryError
from repro.util.ids import new_id


@dataclass
class UnicastSession:
    """One listener's HTTP streaming session."""

    session_id: str
    user_id: str
    bytes_sent: int = 0
    transfers: List[Dict] = field(default_factory=list)

    def record_transfer(self, *, content_id: str, bytes_count: int, purpose: str) -> None:
        """Account a transfer of ``bytes_count`` bytes to this session."""
        if bytes_count < 0:
            raise DeliveryError(f"bytes_count must be >= 0, got {bytes_count}")
        self.bytes_sent += bytes_count
        self.transfers.append(
            {"content_id": content_id, "bytes": bytes_count, "purpose": purpose}
        )


class UnicastServer:
    """The broadcaster's streaming / clip-download endpoint.

    Tracks every byte delivered over unicast, broken down by purpose
    (``live_stream``, ``clip``, ``time_shift``) so the optimization bench can
    attribute cost to the hybrid design decisions.
    """

    def __init__(self, *, default_bitrate_kbps: int = 96) -> None:
        if default_bitrate_kbps <= 0:
            raise DeliveryError("default_bitrate_kbps must be > 0")
        self._default_bitrate_kbps = default_bitrate_kbps
        self._sessions: Dict[str, UnicastSession] = {}

    def open_session(self, user_id: str) -> UnicastSession:
        """Open (or return) the streaming session of a user."""
        existing = self._sessions.get(user_id)
        if existing is not None:
            return existing
        session = UnicastSession(session_id=new_id("ucs"), user_id=user_id)
        self._sessions[user_id] = session
        return session

    def stream_live(
        self, user_id: str, service_id: str, duration_s: float, *, bitrate_kbps: Optional[int] = None
    ) -> int:
        """Account live-stream listening over IP; returns bytes delivered."""
        if duration_s < 0:
            raise DeliveryError("duration_s must be >= 0")
        rate = bitrate_kbps if bitrate_kbps is not None else self._default_bitrate_kbps
        bytes_count = int(duration_s * rate * 1000 / 8)
        self.open_session(user_id).record_transfer(
            content_id=service_id, bytes_count=bytes_count, purpose="live_stream"
        )
        return bytes_count

    def download_clip(self, user_id: str, clip_id: str, size_bytes: int) -> int:
        """Account a clip download; returns bytes delivered."""
        if size_bytes < 0:
            raise DeliveryError("size_bytes must be >= 0")
        self.open_session(user_id).record_transfer(
            content_id=clip_id, bytes_count=size_bytes, purpose="clip"
        )
        return size_bytes

    def stream_time_shift(self, user_id: str, programme_id: str, duration_s: float) -> int:
        """Account time-shifted playback of a live programme."""
        bytes_count = int(duration_s * self._default_bitrate_kbps * 1000 / 8)
        self.open_session(user_id).record_transfer(
            content_id=programme_id, bytes_count=bytes_count, purpose="time_shift"
        )
        return bytes_count

    def session_for(self, user_id: str) -> Optional[UnicastSession]:
        """The session of a user, if one exists."""
        return self._sessions.get(user_id)

    def total_bytes(self, *, purpose: Optional[str] = None) -> int:
        """Total unicast bytes delivered (optionally for one purpose)."""
        total = 0
        for session in self._sessions.values():
            if purpose is None:
                total += session.bytes_sent
            else:
                total += sum(t["bytes"] for t in session.transfers if t["purpose"] == purpose)
        return total

    def session_count(self) -> int:
        """Number of open sessions."""
        return len(self._sessions)

"""The hybrid playback timeline.

The :class:`HybridPlayer` is the model of what the listener actually hears:
an alternation of live radio (possibly time-shifted from the buffer) and
recommended clips, with every transition recorded as a
:class:`PlaybackSegment`.  It reproduces the behaviour illustrated by
Figures 1 and 4 of the paper: live programmes are seamlessly replaced by
clips, the replaced live audio keeps accumulating in the buffer, and a
programme that already started can be played time-shifted after the clip.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Optional

from repro.content.model import AudioClip
from repro.content.schedule import LinearSchedule
from repro.delivery.buffering import BufferManager
from repro.errors import DeliveryError
from repro.util.timeutils import TimeWindow, format_clock


class SegmentSource(enum.Enum):
    """Where the audio in a playback segment comes from."""

    LIVE = "live"                # live broadcast, at the live edge
    TIME_SHIFTED = "time_shifted"  # live service played from the buffer
    CLIP = "clip"                # a recommended or editorially injected clip
    SILENCE = "silence"          # nothing playing (should not normally happen)


@dataclass(frozen=True)
class PlaybackSegment:
    """One contiguous stretch of audio heard by the listener."""

    source: SegmentSource
    window: TimeWindow            # listener (wall-clock) time
    service_id: Optional[str] = None
    programme_id: Optional[str] = None
    clip_id: Optional[str] = None
    broadcast_offset_s: float = 0.0  # how far behind live (for TIME_SHIFTED)

    @property
    def duration_s(self) -> float:
        """Length of the segment."""
        return self.window.duration_s

    def describe(self) -> str:
        """Human-readable row for timeline output (Figure 4 style)."""
        label = {
            SegmentSource.LIVE: f"LIVE {self.service_id} / {self.programme_id}",
            SegmentSource.TIME_SHIFTED: (
                f"TIME-SHIFT {self.service_id} / {self.programme_id} "
                f"(-{self.broadcast_offset_s / 60.0:.0f} min)"
            ),
            SegmentSource.CLIP: f"CLIP {self.clip_id}",
            SegmentSource.SILENCE: "SILENCE",
        }[self.source]
        return f"{format_clock(self.window.start_s)}-{format_clock(self.window.end_s)}  {label}"


class HybridPlayer:
    """State machine producing the listener's playback timeline."""

    def __init__(self, user_id: str, *, buffer_capacity_s: float = 3600.0) -> None:
        self._user_id = user_id
        self._buffer = BufferManager(capacity_s=buffer_capacity_s)
        self._segments: List[PlaybackSegment] = []
        self._service_id: Optional[str] = None
        self._schedule: Optional[LinearSchedule] = None
        self._clock_s: Optional[float] = None
        self._playback_offset_s = 0.0  # how far behind live the listener currently is

    # State -----------------------------------------------------------------

    @property
    def user_id(self) -> str:
        """The listener this player belongs to."""
        return self._user_id

    @property
    def buffer(self) -> BufferManager:
        """The underlying live-audio buffer."""
        return self._buffer

    @property
    def current_time_s(self) -> Optional[float]:
        """The player's wall clock (None before tuning)."""
        return self._clock_s

    @property
    def playback_offset_s(self) -> float:
        """How far behind the live edge the listener currently is."""
        return self._playback_offset_s

    @property
    def current_service_id(self) -> Optional[str]:
        """The tuned service."""
        return self._service_id

    def segments(self) -> List[PlaybackSegment]:
        """The playback history so far."""
        return list(self._segments)

    def timeline(self) -> List[str]:
        """Human-readable playback timeline."""
        return [segment.describe() for segment in self._segments]

    # Operations ---------------------------------------------------------------

    def tune(self, service_id: str, schedule: LinearSchedule, *, at_s: float) -> None:
        """Tune to a live service at a given wall-clock instant."""
        if schedule.service_id != service_id:
            raise DeliveryError(
                f"schedule belongs to {schedule.service_id!r}, not {service_id!r}"
            )
        self._service_id = service_id
        self._schedule = schedule
        self._clock_s = at_s
        self._playback_offset_s = 0.0
        self._buffer.tune(service_id, at_s=at_s)

    def play_live(self, duration_s: float) -> PlaybackSegment:
        """Play the tuned service for ``duration_s`` of listener time.

        If the listener is behind live (after a clip), the audio comes from
        the buffer (TIME_SHIFTED); otherwise it is the live edge.  The buffer
        keeps receiving the live signal either way.
        """
        self._require_tuned()
        if duration_s <= 0:
            raise DeliveryError("duration_s must be > 0")
        start = self._clock_s
        end = start + duration_s
        # Live reception continues during playback.
        self._buffer.record_reception(from_s=start, to_s=end)
        broadcast_start = start - self._playback_offset_s
        programme = self._schedule.programme_at(broadcast_start)
        source = SegmentSource.LIVE if self._playback_offset_s == 0 else SegmentSource.TIME_SHIFTED
        segment = PlaybackSegment(
            source=source,
            window=TimeWindow(start, end),
            service_id=self._service_id,
            programme_id=programme.programme_id if programme else None,
            broadcast_offset_s=self._playback_offset_s,
        )
        self._segments.append(segment)
        self._clock_s = end
        return segment

    def play_clip(self, clip: AudioClip) -> PlaybackSegment:
        """Replace the live audio with a recommended clip.

        While the clip plays, the live broadcast keeps filling the buffer, so
        the listener falls behind live by the clip's duration (up to the
        buffer capacity).
        """
        self._require_tuned()
        start = self._clock_s
        end = start + clip.duration_s
        self._buffer.record_reception(from_s=start, to_s=end)
        self._playback_offset_s = min(
            self._playback_offset_s + clip.duration_s, self._buffer.max_time_shift_s()
        )
        segment = PlaybackSegment(
            source=SegmentSource.CLIP,
            window=TimeWindow(start, end),
            service_id=self._service_id,
            clip_id=clip.clip_id,
        )
        self._segments.append(segment)
        self._clock_s = end
        return segment

    def skip_to_live(self) -> None:
        """Jump back to the live edge, dropping the accumulated offset."""
        self._require_tuned()
        self._playback_offset_s = 0.0

    def skip_current_programme(self) -> Optional[float]:
        """Skip the rest of the programme currently playing.

        Returns the amount of skipped audio (seconds), or ``None`` when no
        programme boundary is known.  The playback offset shrinks by the
        skipped amount (the listener moves toward live).
        """
        self._require_tuned()
        broadcast_now = self._clock_s - self._playback_offset_s
        remaining = self._schedule.remaining_in_current(broadcast_now)
        if remaining <= 0:
            return None
        skipped = min(remaining, self._playback_offset_s) if self._playback_offset_s > 0 else 0.0
        if self._playback_offset_s > 0:
            self._playback_offset_s = max(0.0, self._playback_offset_s - remaining)
        return remaining if skipped == 0.0 else skipped

    def can_resume_programme(self, programme_start_s: float) -> bool:
        """Whether a programme that began at ``programme_start_s`` is replayable."""
        return self._buffer.can_resume_at(programme_start_s)

    def total_listened_s(self) -> float:
        """Total listener time across all segments."""
        return sum(segment.duration_s for segment in self._segments)

    def clip_share(self) -> float:
        """Fraction of listening time spent on recommended clips."""
        total = self.total_listened_s()
        if total <= 0:
            return 0.0
        clips = sum(
            segment.duration_s
            for segment in self._segments
            if segment.source == SegmentSource.CLIP
        )
        return clips / total

    def _require_tuned(self) -> None:
        if self._service_id is None or self._schedule is None or self._clock_s is None:
            raise DeliveryError("player must be tuned to a service first")

"""The broadcast channel model (FM / DAB+).

A broadcast channel delivers one live service to any number of receivers at
a fixed bitrate; the marginal network cost of an additional listener is
zero.  The model tracks which services are carried and converts listening
time into the *equivalent* bytes a unicast delivery would have cost, which
is what the network optimization bench compares.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.content.model import RadioService
from repro.errors import DeliveryError, NotFoundError


@dataclass(frozen=True)
class BroadcastReceptionWindow:
    """A period during which a listener received a service over broadcast."""

    user_id: str
    service_id: str
    start_s: float
    end_s: float

    @property
    def duration_s(self) -> float:
        """Length of the reception window."""
        return self.end_s - self.start_s


class BroadcastChannel:
    """A one-to-many broadcast multiplex carrying live services."""

    def __init__(self, *, name: str = "dab-mux-1") -> None:
        self._name = name
        self._services: Dict[str, RadioService] = {}
        self._receptions: List[BroadcastReceptionWindow] = []

    @property
    def name(self) -> str:
        """Multiplex name."""
        return self._name

    def carry(self, service: RadioService) -> None:
        """Add a service to the multiplex."""
        self._services[service.service_id] = service

    def carries(self, service_id: str) -> bool:
        """Whether the service is available on this multiplex."""
        return service_id in self._services

    def service(self, service_id: str) -> RadioService:
        """Look up a carried service."""
        service = self._services.get(service_id)
        if service is None:
            raise NotFoundError(f"multiplex {self._name!r} does not carry {service_id!r}")
        return service

    def record_reception(
        self, user_id: str, service_id: str, start_s: float, end_s: float
    ) -> BroadcastReceptionWindow:
        """Record that a listener received a service over the air."""
        if end_s < start_s:
            raise DeliveryError("reception window end must be >= start")
        self.service(service_id)
        window = BroadcastReceptionWindow(user_id, service_id, start_s, end_s)
        self._receptions.append(window)
        return window

    def receptions(self) -> List[BroadcastReceptionWindow]:
        """All recorded reception windows."""
        return list(self._receptions)

    def total_listening_s(self) -> float:
        """Total listener-seconds received over broadcast."""
        return sum(window.duration_s for window in self._receptions)

    def equivalent_unicast_bytes(self) -> int:
        """Bytes a unicast CDN would have served for the same listening.

        This is the saving the hybrid architecture realizes: broadcast
        reception costs the network nothing per listener, while streaming the
        same audio would cost ``duration * bitrate`` per listener.
        """
        total = 0
        for window in self._receptions:
            service = self._services[window.service_id]
            total += int(window.duration_s * service.bitrate_kbps * 1000 / 8)
        return total

"""Network resource optimization analysis.

Quantifies the paper's claim that hybrid content radio "supports network
resource optimization, allowing effective use of the broadcast channel and
the Internet": for a population of listeners we compare the unicast bytes
required by

* pure streaming (everything over IP), versus
* hybrid delivery (live audio over broadcast where available, only the
  personalized clips and time-shifted audio over IP).

The model is intentionally analytic — listener counts, listening hours,
clip replacement share and broadcast coverage are parameters — so the bench
can sweep audience size and produce the crossover curves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.errors import ValidationError


@dataclass(frozen=True)
class DeliveryCostReport:
    """Unicast byte totals for one scenario configuration."""

    listeners: int
    pure_streaming_bytes: int
    hybrid_unicast_bytes: int
    broadcast_equivalent_bytes: int

    @property
    def savings_bytes(self) -> int:
        """Unicast bytes avoided by the hybrid architecture."""
        return self.pure_streaming_bytes - self.hybrid_unicast_bytes

    @property
    def savings_ratio(self) -> float:
        """Fraction of unicast traffic avoided (0 when streaming is free)."""
        if self.pure_streaming_bytes <= 0:
            return 0.0
        return self.savings_bytes / self.pure_streaming_bytes


class DeliveryCostModel:
    """Analytic unicast-cost model for the streaming-vs-hybrid comparison."""

    def __init__(
        self,
        *,
        bitrate_kbps: int = 96,
        listening_hours_per_listener: float = 1.5,
        clip_replacement_share: float = 0.2,
        broadcast_coverage: float = 0.85,
        metadata_overhead_bytes: int = 200_000,
    ) -> None:
        if bitrate_kbps <= 0:
            raise ValidationError("bitrate_kbps must be > 0")
        if listening_hours_per_listener < 0:
            raise ValidationError("listening_hours_per_listener must be >= 0")
        if not 0.0 <= clip_replacement_share <= 1.0:
            raise ValidationError("clip_replacement_share must be in [0, 1]")
        if not 0.0 <= broadcast_coverage <= 1.0:
            raise ValidationError("broadcast_coverage must be in [0, 1]")
        if metadata_overhead_bytes < 0:
            raise ValidationError("metadata_overhead_bytes must be >= 0")
        self._bitrate_kbps = bitrate_kbps
        self._listening_s = listening_hours_per_listener * 3600.0
        self._clip_share = clip_replacement_share
        self._coverage = broadcast_coverage
        self._metadata_bytes = metadata_overhead_bytes

    def _bytes_for(self, seconds: float) -> int:
        return int(seconds * self._bitrate_kbps * 1000 / 8)

    def pure_streaming_bytes(self, listeners: int) -> int:
        """Unicast bytes when every listener streams everything over IP."""
        if listeners < 0:
            raise ValidationError("listeners must be >= 0")
        per_listener = self._bytes_for(self._listening_s) + self._metadata_bytes
        return listeners * per_listener

    def hybrid_unicast_bytes(self, listeners: int) -> int:
        """Unicast bytes under hybrid delivery.

        Listeners inside broadcast coverage receive the linear share over the
        air and only download the personalized clips (plus metadata);
        listeners outside coverage behave like pure streaming clients.
        """
        if listeners < 0:
            raise ValidationError("listeners must be >= 0")
        covered = int(round(listeners * self._coverage))
        uncovered = listeners - covered
        clip_seconds = self._listening_s * self._clip_share
        covered_bytes = covered * (self._bytes_for(clip_seconds) + self._metadata_bytes)
        uncovered_bytes = uncovered * (
            self._bytes_for(self._listening_s) + self._metadata_bytes
        )
        return covered_bytes + uncovered_bytes

    def broadcast_equivalent_bytes(self, listeners: int) -> int:
        """Bytes delivered over the air, expressed as their unicast equivalent."""
        covered = int(round(listeners * self._coverage))
        linear_seconds = self._listening_s * (1.0 - self._clip_share)
        return covered * self._bytes_for(linear_seconds)

    def report(self, listeners: int) -> DeliveryCostReport:
        """Full comparison for one audience size."""
        return DeliveryCostReport(
            listeners=listeners,
            pure_streaming_bytes=self.pure_streaming_bytes(listeners),
            hybrid_unicast_bytes=self.hybrid_unicast_bytes(listeners),
            broadcast_equivalent_bytes=self.broadcast_equivalent_bytes(listeners),
        )

    def sweep(self, audience_sizes: List[int]) -> List[DeliveryCostReport]:
        """Reports for a list of audience sizes (the Q-2 bench series)."""
        return [self.report(size) for size in audience_sizes]

    def crossover_clip_share(self) -> float:
        """The clip-replacement share at which hybrid stops saving bandwidth.

        With full coverage, hybrid unicast equals pure streaming when the
        clip share reaches 1.0; with partial coverage the effective saving is
        ``coverage * (1 - clip_share)`` of the audio bytes.  Returns the clip
        share at which the saving drops to zero (always 1.0, included for
        explicitness in reports and as a sanity check in tests).
        """
        return 1.0

    def per_listener_saving_bytes(self) -> int:
        """Average unicast bytes saved per listener."""
        report = self.report(1000)
        return int(report.savings_bytes / 1000)

    def parameters(self) -> Dict[str, float]:
        """The model parameters (for inclusion in bench output)."""
        return {
            "bitrate_kbps": float(self._bitrate_kbps),
            "listening_hours": self._listening_s / 3600.0,
            "clip_replacement_share": self._clip_share,
            "broadcast_coverage": self._coverage,
            "metadata_overhead_bytes": float(self._metadata_bytes),
        }

"""Hybrid audio delivery: broadcast/unicast channels, buffering, playback.

The paper argues that building personalization on top of linear radio lets
"the efficiency of content delivery ... be optimized, if the device allows
using a broadcast technology to receive the audio from the broadcast
channel".  This package models both delivery paths with byte-level
accounting, the client-side buffering that makes seamless replacement and
time-shifting possible, the playback timeline itself, and the optimizer that
quantifies the broadcast-vs-streaming trade-off (bench Q-2).
"""

from repro.delivery.broadcast import BroadcastChannel
from repro.delivery.buffering import BufferManager, BufferedSegment
from repro.delivery.optimizer import DeliveryCostModel, DeliveryCostReport
from repro.delivery.player import HybridPlayer, PlaybackSegment, SegmentSource
from repro.delivery.unicast import UnicastSession, UnicastServer

__all__ = [
    "BroadcastChannel",
    "BufferManager",
    "BufferedSegment",
    "DeliveryCostModel",
    "DeliveryCostReport",
    "HybridPlayer",
    "PlaybackSegment",
    "SegmentSource",
    "UnicastServer",
    "UnicastSession",
]

"""The 30-category taxonomy used to classify audio content.

The paper states that extracted speech "is then classified with a Bayesian
classifier trained with a set of news, according to a set of 30 categories
spacing from art to culture, music, economics".  The exact list is not
published, so we define a 30-category taxonomy spanning the same editorial
space as a public-service broadcaster's output.  Category identities only
matter in that users and clips are described over the same taxonomy.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import NotFoundError


@dataclass(frozen=True)
class Category:
    """A content category with a coarse editorial group."""

    index: int
    name: str
    group: str


_RAW_CATEGORIES: Tuple[Tuple[str, str], ...] = (
    ("art", "culture"),
    ("culture", "culture"),
    ("history", "culture"),
    ("literature", "culture"),
    ("cinema", "culture"),
    ("theatre", "culture"),
    ("music-classical", "music"),
    ("music-pop", "music"),
    ("music-jazz", "music"),
    ("music-opera", "music"),
    ("news-national", "news"),
    ("news-international", "news"),
    ("news-local", "news"),
    ("politics", "news"),
    ("economics", "news"),
    ("finance", "news"),
    ("technology", "knowledge"),
    ("science", "knowledge"),
    ("health", "knowledge"),
    ("environment", "knowledge"),
    ("education", "knowledge"),
    ("sport-football", "sport"),
    ("sport-motors", "sport"),
    ("sport-other", "sport"),
    ("food-and-wine", "lifestyle"),
    ("travel", "lifestyle"),
    ("fashion", "lifestyle"),
    ("comedy", "entertainment"),
    ("talk-show", "entertainment"),
    ("traffic-and-weather", "service"),
)

#: The canonical ordered list of 30 categories.
CATEGORIES: Tuple[Category, ...] = tuple(
    Category(index, name, group) for index, (name, group) in enumerate(_RAW_CATEGORIES)
)

_BY_NAME: Dict[str, Category] = {category.name: category for category in CATEGORIES}


def category_names() -> List[str]:
    """Names of all 30 categories in canonical order."""
    return [category.name for category in CATEGORIES]


def category_by_name(name: str) -> Category:
    """Look up a category by name."""
    category = _BY_NAME.get(name)
    if category is None:
        raise NotFoundError(f"unknown category {name!r}")
    return category


def category_groups() -> List[str]:
    """Distinct editorial groups in first-appearance order."""
    seen: List[str] = []
    for category in CATEGORIES:
        if category.group not in seen:
            seen.append(category.group)
    return seen


def categories_in_group(group: str) -> List[Category]:
    """All categories belonging to an editorial group."""
    members = [category for category in CATEGORIES if category.group == group]
    if not members:
        raise NotFoundError(f"unknown category group {group!r}")
    return members

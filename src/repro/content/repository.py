"""The content repository: clips, services, programmes and schedules.

This is the "Metadata DB" + "Content Repository" pair of the paper's server
architecture (Figure 3), backed by the in-memory relational substrate so the
recommender and the clip data management component query it the same way the
production system would query its databases.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, Iterable, List, Optional, Tuple

from repro.content.model import AudioClip, ContentKind, LiveProgramme, RadioService
from repro.content.schedule import LinearSchedule
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint, GridIndex
from repro.storage import Column, Database, Schema
from repro.util.timeutils import TimeWindow


class ContentRepository:
    """Registry of services, programmes, clips and per-service schedules."""

    def __init__(self) -> None:
        self._db = Database("content")
        self._clips_table = self._db.create_table(
            Schema(
                name="clips",
                primary_key="clip_id",
                columns=[
                    Column("clip_id", str),
                    Column("kind", str),
                    Column("duration_s", float),
                    Column("primary_category", str, nullable=True),
                    Column("published_s", float, has_default=True, default=0.0),
                ],
            )
        )
        self._clips_table.create_index("kind")
        self._clips_table.create_index("primary_category")
        # Publish-time ordering: entries are (published_s, -seq, clip_id)
        # kept sorted ascending, so iterating in reverse yields newest-first
        # with insertion order preserved among equal publish times — the
        # same ordering a stable descending sort over all clips produces.
        self._published: List[Tuple[float, int, str]] = []
        self._clip_seq: Dict[str, int] = {}
        self._next_seq = 0
        # Spatial index over geo-tag centres for route-pruned scoring.
        self._geo_index: GridIndex[str] = GridIndex(cell_size_m=2000.0)
        self._clips: Dict[str, AudioClip] = {}
        self._services: Dict[str, RadioService] = {}
        # Sorted service ids so the paginated listing bisects instead of
        # re-sorting the registry on every page request.
        self._service_ids: List[str] = []
        self._programmes: Dict[str, LiveProgramme] = {}
        self._schedules: Dict[str, LinearSchedule] = {}

    # Services and programmes ---------------------------------------------

    def add_service(self, service: RadioService) -> None:
        """Register a live radio service."""
        if service.service_id in self._services:
            raise DuplicateError(f"service {service.service_id!r} already registered")
        self._services[service.service_id] = service
        insort(self._service_ids, service.service_id)
        self._schedules[service.service_id] = LinearSchedule(service.service_id)

    def service(self, service_id: str) -> RadioService:
        """Look up a service."""
        service = self._services.get(service_id)
        if service is None:
            raise NotFoundError(f"unknown service {service_id!r}")
        return service

    def services(self) -> List[RadioService]:
        """All registered services."""
        return [self._services[key] for key in self._service_ids]

    def services_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Tuple[List[RadioService], Optional[str]]:
        """One page of services ordered by id, plus the next cursor.

        The cursor is the last service id already served; the next page
        resumes strictly after it via bisect, so pagination stays stable
        under concurrent service registration (new ids simply appear in
        their sorted position on a later page, never duplicating a page).
        A ``None`` next cursor means the listing is exhausted.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        start = bisect_right(self._service_ids, cursor) if cursor is not None else 0
        page_ids = self._service_ids[start : start + limit]
        next_cursor = page_ids[-1] if start + limit < len(self._service_ids) else None
        return [self._services[service_id] for service_id in page_ids], next_cursor

    def add_programme(self, programme: LiveProgramme) -> None:
        """Register a programme (its service must exist)."""
        if programme.programme_id in self._programmes:
            raise DuplicateError(f"programme {programme.programme_id!r} already registered")
        self.service(programme.service_id)
        self._programmes[programme.programme_id] = programme

    def programme(self, programme_id: str) -> LiveProgramme:
        """Look up a programme."""
        programme = self._programmes.get(programme_id)
        if programme is None:
            raise NotFoundError(f"unknown programme {programme_id!r}")
        return programme

    def schedule_programme(self, programme_id: str, window: TimeWindow) -> None:
        """Place a registered programme on its service's schedule."""
        programme = self.programme(programme_id)
        self._schedules[programme.service_id].add(programme, window)

    def schedule(self, service_id: str) -> LinearSchedule:
        """The schedule of a service."""
        self.service(service_id)
        return self._schedules[service_id]

    # Clips ------------------------------------------------------------------

    def add_clip(self, clip: AudioClip) -> None:
        """Register an audio clip."""
        if clip.clip_id in self._clips:
            raise DuplicateError(f"clip {clip.clip_id!r} already registered")
        self._clips[clip.clip_id] = clip
        seq = self._next_seq
        self._next_seq += 1
        self._clip_seq[clip.clip_id] = seq
        insort(self._published, (clip.published_s, -seq, clip.clip_id))
        if clip.geo_location is not None:
            self._geo_index.insert(clip.clip_id, clip.geo_location)
        self._clips_table.insert(
            {
                "clip_id": clip.clip_id,
                "kind": clip.kind.value,
                "duration_s": clip.duration_s,
                "primary_category": clip.primary_category,
                "published_s": clip.published_s,
            }
        )

    def add_clips(self, clips: Iterable[AudioClip]) -> int:
        """Register many clips; returns how many were added."""
        count = 0
        for clip in clips:
            self.add_clip(clip)
            count += 1
        return count

    def replace_clip(self, clip: AudioClip) -> None:
        """Replace an existing clip (e.g. after classification adds scores)."""
        if clip.clip_id not in self._clips:
            raise NotFoundError(f"unknown clip {clip.clip_id!r}")
        previous = self._clips[clip.clip_id]
        self._clips[clip.clip_id] = clip
        seq = self._clip_seq[clip.clip_id]
        if previous.published_s != clip.published_s:
            index = bisect_left(self._published, (previous.published_s, -seq, clip.clip_id))
            del self._published[index]
            insort(self._published, (clip.published_s, -seq, clip.clip_id))
        if clip.geo_location is not None:
            self._geo_index.insert(clip.clip_id, clip.geo_location)
        elif previous.geo_location is not None:
            self._geo_index.remove(clip.clip_id)
        self._clips_table.update(
            clip.clip_id,
            {
                "kind": clip.kind.value,
                "duration_s": clip.duration_s,
                "primary_category": clip.primary_category,
                "published_s": clip.published_s,
            },
        )

    def clip(self, clip_id: str) -> AudioClip:
        """Look up a clip."""
        clip = self._clips.get(clip_id)
        if clip is None:
            raise NotFoundError(f"unknown clip {clip_id!r}")
        return clip

    def clips(self) -> List[AudioClip]:
        """All clips in insertion order."""
        return list(self._clips.values())

    def clip_count(self) -> int:
        """Number of registered clips."""
        return len(self._clips)

    def clips_by_kind(self, kind: ContentKind) -> List[AudioClip]:
        """All clips of one kind."""
        rows = self._clips_table.find_by_index("kind", kind.value)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_by_category(self, category: str) -> List[AudioClip]:
        """All clips whose primary category matches."""
        rows = self._clips_table.find_by_index("primary_category", category)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_published_after(self, cutoff_s: float) -> List[AudioClip]:
        """Clips published at or after ``cutoff_s``, newest first.

        Served from the sorted publish-time index in O(log n + k) instead
        of scanning and re-sorting the whole clip table.
        """
        start = bisect_left(self._published, (cutoff_s,))
        return [
            self._clips[clip_id] for _published, _seq, clip_id in reversed(self._published[start:])
        ]

    def clips_newest_first(self) -> List[AudioClip]:
        """All clips ordered by publish time, newest first."""
        return [self._clips[clip_id] for _published, _seq, clip_id in reversed(self._published)]

    @staticmethod
    def _clip_cursor(entry: Tuple[float, int, str]) -> str:
        published_s, negative_seq, _clip_id = entry
        return f"{published_s!r}:{-negative_seq}"

    def clips_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Tuple[List[AudioClip], Optional[str]]:
        """One newest-first page of clips, plus the next cursor.

        Pages walk the sorted publish-time index backwards in
        O(log n + limit).  The cursor encodes the (publish time, sequence)
        key of the last clip served, so the next page resumes at strictly
        older clips even while new clips are being published — a freshly
        ingested clip lands *before* the cursor position and never shifts
        or duplicates the remaining pages.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        if cursor is None:
            end = len(self._published)
        else:
            try:
                raw_published, raw_seq = cursor.rsplit(":", 1)
                key = (float(raw_published), -int(raw_seq))
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"malformed clip cursor {cursor!r}") from exc
            end = bisect_left(self._published, key)
        start = max(0, end - limit)
        page = [self._clips[clip_id] for _p, _s, clip_id in reversed(self._published[start:end])]
        next_cursor = self._clip_cursor(self._published[start]) if start > 0 and page else None
        return page, next_cursor

    def clips_max_duration(self, max_duration_s: float) -> List[AudioClip]:
        """Clips that fit inside a time budget."""
        rows = self._db.query("clips").where(
            lambda row: row["duration_s"] <= max_duration_s
        ).all()
        return [self._clips[row["clip_id"]] for row in rows]

    def geo_tagged_clips(self) -> List[AudioClip]:
        """All clips carrying a geographic footprint."""
        return [clip for clip in self._clips.values() if clip.is_geo_tagged]

    @property
    def geo_index(self) -> GridIndex[str]:
        """The grid index over geo-tag centres (clip ids as items)."""
        return self._geo_index

    def geo_clips_in_bbox(self, box: BoundingBox) -> List[AudioClip]:
        """Geo-tagged clips whose tag centre falls inside ``box``."""
        return [self._clips[clip_id] for clip_id in self._geo_index.query_bbox(box)]

    def geo_clips_near(self, center: GeoPoint, radius_m: float) -> List[AudioClip]:
        """Geo-tagged clips whose tag centre is within ``radius_m`` of ``center``."""
        return [self._clips[clip_id] for clip_id, _distance in self._geo_index.query_radius(center, radius_m)]

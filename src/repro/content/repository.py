"""The content repository: clips, services, programmes and schedules.

This is the "Metadata DB" + "Content Repository" pair of the paper's server
architecture (Figure 3), backed by the in-memory relational substrate so the
recommender and the clip data management component query it the same way the
production system would query its databases.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from repro.content.model import AudioClip, ContentKind, LiveProgramme, RadioService
from repro.content.schedule import LinearSchedule
from repro.errors import DuplicateError, NotFoundError
from repro.storage import Column, Database, Schema
from repro.util.timeutils import TimeWindow


class ContentRepository:
    """Registry of services, programmes, clips and per-service schedules."""

    def __init__(self) -> None:
        self._db = Database("content")
        self._clips_table = self._db.create_table(
            Schema(
                name="clips",
                primary_key="clip_id",
                columns=[
                    Column("clip_id", str),
                    Column("kind", str),
                    Column("duration_s", float),
                    Column("primary_category", str, nullable=True),
                    Column("published_s", float, has_default=True, default=0.0),
                ],
            )
        )
        self._clips_table.create_index("kind")
        self._clips_table.create_index("primary_category")
        self._clips: Dict[str, AudioClip] = {}
        self._services: Dict[str, RadioService] = {}
        self._programmes: Dict[str, LiveProgramme] = {}
        self._schedules: Dict[str, LinearSchedule] = {}

    # Services and programmes ---------------------------------------------

    def add_service(self, service: RadioService) -> None:
        """Register a live radio service."""
        if service.service_id in self._services:
            raise DuplicateError(f"service {service.service_id!r} already registered")
        self._services[service.service_id] = service
        self._schedules[service.service_id] = LinearSchedule(service.service_id)

    def service(self, service_id: str) -> RadioService:
        """Look up a service."""
        service = self._services.get(service_id)
        if service is None:
            raise NotFoundError(f"unknown service {service_id!r}")
        return service

    def services(self) -> List[RadioService]:
        """All registered services."""
        return [self._services[key] for key in sorted(self._services)]

    def add_programme(self, programme: LiveProgramme) -> None:
        """Register a programme (its service must exist)."""
        if programme.programme_id in self._programmes:
            raise DuplicateError(f"programme {programme.programme_id!r} already registered")
        self.service(programme.service_id)
        self._programmes[programme.programme_id] = programme

    def programme(self, programme_id: str) -> LiveProgramme:
        """Look up a programme."""
        programme = self._programmes.get(programme_id)
        if programme is None:
            raise NotFoundError(f"unknown programme {programme_id!r}")
        return programme

    def schedule_programme(self, programme_id: str, window: TimeWindow) -> None:
        """Place a registered programme on its service's schedule."""
        programme = self.programme(programme_id)
        self._schedules[programme.service_id].add(programme, window)

    def schedule(self, service_id: str) -> LinearSchedule:
        """The schedule of a service."""
        self.service(service_id)
        return self._schedules[service_id]

    # Clips ------------------------------------------------------------------

    def add_clip(self, clip: AudioClip) -> None:
        """Register an audio clip."""
        if clip.clip_id in self._clips:
            raise DuplicateError(f"clip {clip.clip_id!r} already registered")
        self._clips[clip.clip_id] = clip
        self._clips_table.insert(
            {
                "clip_id": clip.clip_id,
                "kind": clip.kind.value,
                "duration_s": clip.duration_s,
                "primary_category": clip.primary_category,
                "published_s": clip.published_s,
            }
        )

    def add_clips(self, clips: Iterable[AudioClip]) -> int:
        """Register many clips; returns how many were added."""
        count = 0
        for clip in clips:
            self.add_clip(clip)
            count += 1
        return count

    def replace_clip(self, clip: AudioClip) -> None:
        """Replace an existing clip (e.g. after classification adds scores)."""
        if clip.clip_id not in self._clips:
            raise NotFoundError(f"unknown clip {clip.clip_id!r}")
        self._clips[clip.clip_id] = clip
        self._clips_table.update(
            clip.clip_id,
            {
                "kind": clip.kind.value,
                "duration_s": clip.duration_s,
                "primary_category": clip.primary_category,
                "published_s": clip.published_s,
            },
        )

    def clip(self, clip_id: str) -> AudioClip:
        """Look up a clip."""
        clip = self._clips.get(clip_id)
        if clip is None:
            raise NotFoundError(f"unknown clip {clip_id!r}")
        return clip

    def clips(self) -> List[AudioClip]:
        """All clips in insertion order."""
        return list(self._clips.values())

    def clip_count(self) -> int:
        """Number of registered clips."""
        return len(self._clips)

    def clips_by_kind(self, kind: ContentKind) -> List[AudioClip]:
        """All clips of one kind."""
        rows = self._clips_table.find_by_index("kind", kind.value)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_by_category(self, category: str) -> List[AudioClip]:
        """All clips whose primary category matches."""
        rows = self._clips_table.find_by_index("primary_category", category)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_published_after(self, cutoff_s: float) -> List[AudioClip]:
        """Clips published after ``cutoff_s`` (recency filter for candidates)."""
        rows = (
            self._db.query("clips")
            .where(lambda row: row["published_s"] >= cutoff_s)
            .order_by("published_s", descending=True)
            .all()
        )
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_max_duration(self, max_duration_s: float) -> List[AudioClip]:
        """Clips that fit inside a time budget."""
        rows = self._db.query("clips").where(
            lambda row: row["duration_s"] <= max_duration_s
        ).all()
        return [self._clips[row["clip_id"]] for row in rows]

    def geo_tagged_clips(self) -> List[AudioClip]:
        """All clips carrying a geographic footprint."""
        return [clip for clip in self._clips.values() if clip.is_geo_tagged]

"""The content repository: clips, services, programmes and schedules.

This is the "Metadata DB" + "Content Repository" pair of the paper's server
architecture (Figure 3), backed by the in-memory relational substrate so the
recommender and the clip data management component query it the same way the
production system would query its databases.

Every secondary access path is a declarative
:class:`~repro.storage.spec.IndexSpec` on the metadata tables — the
publish-time ordering, the geo-tag grid and the kind/category buckets that
used to be hand-rolled sidecar structures (a sorted list, a parallel
``GridIndex``, a seq dict) are all maintained by the storage engine now,
and the paginated listings are thin delegations to the engine's keyset
cursors (:class:`~repro.storage.cursor.Page`).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.content.model import AudioClip, ContentKind, LiveProgramme, RadioService
from repro.content.schedule import LinearSchedule
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.geo import BoundingBox, GeoPoint, GridIndex
from repro.storage import Column, Database, IndexSpec, Schema
from repro.util.timeutils import TimeWindow

#: Version stamp of :meth:`ContentRepository.snapshot` payloads.
SNAPSHOT_VERSION = 1


class ContentRepository:
    """Registry of services, programmes, clips and per-service schedules."""

    def __init__(self) -> None:
        self._db = Database("content")
        self._clips_table = self._db.create_table(
            Schema(
                name="clips",
                primary_key="clip_id",
                columns=[
                    Column("clip_id", str),
                    Column("kind", str),
                    Column("duration_s", float),
                    Column("primary_category", str, nullable=True),
                    Column("published_s", float, has_default=True, default=0.0),
                    Column("seq", int),
                    Column("lat", float, nullable=True),
                    Column("lon", float, nullable=True),
                ],
                indexes=[
                    IndexSpec("kind"),
                    IndexSpec("primary_category"),
                    IndexSpec("duration_s", kind="sorted", columns=("duration_s",)),
                    # Publish-time ordering over (published_s, -seq): a
                    # descending walk (the newest-first listing) keeps clips
                    # published at the same instant in insertion order — the
                    # ordering a stable descending sort produces — and the
                    # stable ``seq`` column (not the storage row sequence)
                    # keeps that position across ``replace_clip``.
                    IndexSpec(
                        "published",
                        kind="sorted",
                        columns=("published_s", "seq"),
                        key=lambda row: (row["published_s"], -row["seq"]),
                    ),
                    # Geo-tag centres for route-pruned scoring; untagged
                    # clips (null lat/lon) are simply not indexed.
                    IndexSpec("geo", kind="spatial", columns=("lat", "lon"), cell_size_m=2000.0),
                ],
            )
        )
        self._services_table = self._db.create_table(
            Schema(
                name="services",
                primary_key="service_id",
                columns=[Column("service_id", str)],
                indexes=[IndexSpec("by_id", kind="sorted", columns=("service_id",))],
            )
        )
        self._clips: Dict[str, AudioClip] = {}
        #: Monotonic publish-tie sequence stored in the ``seq`` column — the
        #: publish-time index orders equal publish times by it.
        self._next_seq = 0
        self._services: Dict[str, RadioService] = {}
        self._programmes: Dict[str, LiveProgramme] = {}
        self._schedules: Dict[str, LinearSchedule] = {}
        #: Durability hook: the WAL records catalogue mutations as domain
        #: operations with *full* payloads (the metadata tables are lossy
        #: projections — no title/scores/transcript), so replay rebuilds
        #: the dict caches and tables identically via the public methods.
        self._op_listener = None

    @property
    def database(self) -> Database:
        """The metadata DB (exposed for dashboards and stats)."""
        return self._db

    @property
    def clips_version(self) -> int:
        """Change counter of the clip metadata table (ETag validator)."""
        return self._clips_table.version

    @property
    def services_version(self) -> int:
        """Change counter of the services table (ETag validator)."""
        return self._services_table.version

    # Durability hooks ------------------------------------------------------

    def set_op_listener(self, listener) -> None:
        """Install the WAL's domain-operation listener (``None`` clears).

        ``listener(op, data)`` fires after each successful catalogue
        mutation with a payload sufficient to replay it exactly through
        :meth:`apply_logged_op`.
        """
        self._op_listener = listener

    def _log_op(self, op: str, data: Dict[str, Any]) -> None:
        if self._op_listener is not None:
            self._op_listener(op, data)

    @staticmethod
    def _service_payload(service: RadioService) -> Dict[str, Any]:
        return {
            "service_id": service.service_id,
            "name": service.name,
            "bitrate_kbps": service.bitrate_kbps,
            "genre": service.genre,
        }

    @staticmethod
    def _programme_payload(programme: LiveProgramme) -> Dict[str, Any]:
        return {
            "programme_id": programme.programme_id,
            "service_id": programme.service_id,
            "title": programme.title,
            "categories": list(programme.categories),
            "description": programme.description,
        }

    def apply_logged_op(self, op: str, data: Dict[str, Any]) -> None:
        """Replay one logged catalogue operation (the WAL's replay entry)."""
        if op == "add_clip":
            self.add_clip(self._clip_from_payload(data))
        elif op == "replace_clip":
            self.replace_clip(self._clip_from_payload(data))
        elif op == "add_service":
            self.add_service(
                RadioService(
                    service_id=data["service_id"],
                    name=data["name"],
                    bitrate_kbps=data.get("bitrate_kbps", 96),
                    genre=data.get("genre", "general"),
                )
            )
        elif op == "add_programme":
            self.add_programme(
                LiveProgramme(
                    programme_id=data["programme_id"],
                    service_id=data["service_id"],
                    title=data["title"],
                    categories=list(data.get("categories", [])),
                    description=data.get("description", ""),
                )
            )
        elif op == "schedule_programme":
            self.schedule_programme(
                data["programme_id"], TimeWindow(data["start_s"], data["end_s"])
            )
        else:
            raise ValidationError(f"unknown logged content op {op!r}")

    # Services and programmes ---------------------------------------------

    def add_service(self, service: RadioService) -> None:
        """Register a live radio service."""
        if service.service_id in self._services:
            raise DuplicateError(f"service {service.service_id!r} already registered")
        self._services[service.service_id] = service
        self._services_table.insert({"service_id": service.service_id})
        self._schedules[service.service_id] = LinearSchedule(service.service_id)
        self._log_op("add_service", self._service_payload(service))

    def service(self, service_id: str) -> RadioService:
        """Look up a service."""
        service = self._services.get(service_id)
        if service is None:
            raise NotFoundError(f"unknown service {service_id!r}")
        return service

    def services(self) -> List[RadioService]:
        """All registered services, ordered by id."""
        return [
            self._services[row["service_id"]]
            for row in self._services_table.rows_in_index_order("by_id")
        ]

    def services_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Tuple[List[RadioService], Optional[str]]:
        """One page of services ordered by id, plus the next cursor.

        A thin delegation to the storage engine's keyset cursor over the
        ``by_id`` index: the token resumes strictly after the last service
        served, so pagination stays stable under concurrent registration
        (new ids simply appear in their sorted position on a later page,
        never duplicating one).  A ``None`` next cursor means the listing
        is exhausted.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        page = self._services_table.page_by_index("by_id", limit=limit, after_token=cursor)
        return [self._services[row["service_id"]] for row in page.items], page.next_token

    def add_programme(self, programme: LiveProgramme) -> None:
        """Register a programme (its service must exist)."""
        if programme.programme_id in self._programmes:
            raise DuplicateError(f"programme {programme.programme_id!r} already registered")
        self.service(programme.service_id)
        self._programmes[programme.programme_id] = programme
        self._log_op("add_programme", self._programme_payload(programme))

    def programme(self, programme_id: str) -> LiveProgramme:
        """Look up a programme."""
        programme = self._programmes.get(programme_id)
        if programme is None:
            raise NotFoundError(f"unknown programme {programme_id!r}")
        return programme

    def schedule_programme(self, programme_id: str, window: TimeWindow) -> None:
        """Place a registered programme on its service's schedule."""
        programme = self.programme(programme_id)
        self._schedules[programme.service_id].add(programme, window)
        self._log_op(
            "schedule_programme",
            {"programme_id": programme_id, "start_s": window.start_s, "end_s": window.end_s},
        )

    def schedule(self, service_id: str) -> LinearSchedule:
        """The schedule of a service."""
        self.service(service_id)
        return self._schedules[service_id]

    # Clips ------------------------------------------------------------------

    def _clip_row(self, clip: AudioClip, seq: int) -> Dict[str, Any]:
        location = clip.geo_location
        return {
            "clip_id": clip.clip_id,
            "kind": clip.kind.value,
            "duration_s": clip.duration_s,
            "primary_category": clip.primary_category,
            "published_s": clip.published_s,
            "seq": seq,
            "lat": location.lat if location is not None else None,
            "lon": location.lon if location is not None else None,
        }

    def add_clip(self, clip: AudioClip) -> None:
        """Register an audio clip."""
        if clip.clip_id in self._clips:
            raise DuplicateError(f"clip {clip.clip_id!r} already registered")
        self._clips[clip.clip_id] = clip
        seq = self._next_seq
        self._next_seq += 1
        self._clips_table.insert(self._clip_row(clip, seq))
        self._log_op("add_clip", self._clip_payload(clip))

    def add_clips(self, clips: Iterable[AudioClip]) -> int:
        """Register many clips; returns how many were added."""
        count = 0
        with self._db.batch():
            for clip in clips:
                self.add_clip(clip)
                count += 1
        return count

    def replace_clip(self, clip: AudioClip) -> None:
        """Replace an existing clip (e.g. after classification adds scores).

        The storage engine re-indexes the row, so a changed publish time or
        geo tag moves the clip in the publish-time and spatial indexes
        automatically; its ``seq`` (publish-tie position) is preserved.
        """
        if clip.clip_id not in self._clips:
            raise NotFoundError(f"unknown clip {clip.clip_id!r}")
        self._clips[clip.clip_id] = clip
        seq = self._clips_table.get(clip.clip_id)["seq"]
        self._clips_table.update(clip.clip_id, self._clip_row(clip, seq))
        self._log_op("replace_clip", self._clip_payload(clip))

    def clip(self, clip_id: str) -> AudioClip:
        """Look up a clip."""
        clip = self._clips.get(clip_id)
        if clip is None:
            raise NotFoundError(f"unknown clip {clip_id!r}")
        return clip

    def clips(self) -> List[AudioClip]:
        """All clips in insertion order."""
        return list(self._clips.values())

    def clip_count(self) -> int:
        """Number of registered clips."""
        return len(self._clips)

    def clips_by_kind(self, kind: ContentKind) -> List[AudioClip]:
        """All clips of one kind."""
        rows = self._clips_table.find_by_index("kind", kind.value)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_by_category(self, category: str) -> List[AudioClip]:
        """All clips whose primary category matches."""
        rows = self._clips_table.find_by_index("primary_category", category)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_published_after(self, cutoff_s: float) -> List[AudioClip]:
        """Clips published at or after ``cutoff_s``, newest first.

        A descending range walk of the declarative publish-time index:
        O(log n + k) instead of scanning and re-sorting the whole table.
        """
        rows = self._clips_table.find_range("published", low=cutoff_s, descending=True)
        return [self._clips[row["clip_id"]] for row in rows]

    def clips_newest_first(self) -> List[AudioClip]:
        """All clips ordered by publish time, newest first."""
        return [
            self._clips[row["clip_id"]]
            for row in self._clips_table.rows_in_index_order("published", descending=True)
        ]

    def clips_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Tuple[List[AudioClip], Optional[str]]:
        """One newest-first page of clips, plus the next cursor.

        A thin delegation to the storage engine's descending keyset cursor
        over the publish-time index.  The token encodes the (publish time,
        row sequence) of the last clip served, so the next page resumes at
        strictly older clips even while new clips are being published — a
        freshly ingested clip lands *before* the cursor position and never
        shifts or duplicates the remaining pages.
        """
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        page = self._clips_table.page_by_index(
            "published", limit=limit, after_token=cursor, descending=True
        )
        return [self._clips[row["clip_id"]] for row in page.items], page.next_token

    def clips_max_duration(self, max_duration_s: float) -> List[AudioClip]:
        """Clips that fit inside a time budget (planner: duration index)."""
        rows = self._db.query("clips").where_le("duration_s", max_duration_s).all()
        return [self._clips[row["clip_id"]] for row in rows]

    def geo_tagged_clips(self) -> List[AudioClip]:
        """All clips carrying a geographic footprint."""
        return [clip for clip in self._clips.values() if clip.is_geo_tagged]

    @property
    def geo_index(self) -> GridIndex[str]:
        """The grid index over geo-tag centres (clip ids as items).

        This is the declarative spatial index's grid — shared with the
        context scorer for route-pruned candidate scoring.
        """
        return self._clips_table.spatial_index("geo").grid

    def geo_clips_in_bbox(self, box: BoundingBox) -> List[AudioClip]:
        """Geo-tagged clips whose tag centre falls inside ``box``."""
        return [
            self._clips[row["clip_id"]] for row in self._clips_table.find_in_bbox("geo", box)
        ]

    def geo_clips_near(self, center: GeoPoint, radius_m: float) -> List[AudioClip]:
        """Geo-tagged clips whose tag centre is within ``radius_m`` of ``center``."""
        return [
            self._clips[row["clip_id"]]
            for row, _distance in self._clips_table.find_within("geo", center, radius_m)
        ]

    # Snapshot / restore ---------------------------------------------------

    @staticmethod
    def _clip_payload(clip: AudioClip) -> Dict[str, Any]:
        location = clip.geo_location
        return {
            "clip_id": clip.clip_id,
            "title": clip.title,
            "kind": clip.kind.value,
            "duration_s": clip.duration_s,
            "category_scores": dict(clip.category_scores),
            "source_programme_id": clip.source_programme_id,
            "transcript": clip.transcript,
            "geo_location": [location.lat, location.lon] if location is not None else None,
            "geo_radius_m": clip.geo_radius_m,
            "geo_decay_m": clip.geo_decay_m,
            "published_s": clip.published_s,
            "size_bytes": clip.size_bytes,
        }

    @staticmethod
    def _clip_from_payload(payload: Dict[str, Any]) -> AudioClip:
        location = payload.get("geo_location")
        return AudioClip(
            clip_id=payload["clip_id"],
            title=payload["title"],
            kind=ContentKind(payload["kind"]),
            duration_s=payload["duration_s"],
            category_scores=dict(payload.get("category_scores", {})),
            source_programme_id=payload.get("source_programme_id"),
            transcript=payload.get("transcript"),
            geo_location=GeoPoint(location[0], location[1]) if location else None,
            geo_radius_m=payload.get("geo_radius_m"),
            geo_decay_m=payload.get("geo_decay_m"),
            published_s=payload.get("published_s", 0.0),
            size_bytes=payload.get("size_bytes", 0),
        )

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable payload of the whole content catalogue."""
        return {
            "version": SNAPSHOT_VERSION,
            # Change counters ride along so post-restore ETags can never
            # collide with ones minted before the snapshot was taken.
            "clips_version": self._clips_table.version,
            "services_version": self._services_table.version,
            "clips": [self._clip_payload(clip) for clip in self._clips.values()],
            "services": [
                {
                    "service_id": service.service_id,
                    "name": service.name,
                    "bitrate_kbps": service.bitrate_kbps,
                    "genre": service.genre,
                }
                for service in self._services.values()
            ],
            "programmes": [
                {
                    "programme_id": programme.programme_id,
                    "service_id": programme.service_id,
                    "title": programme.title,
                    "categories": list(programme.categories),
                    "description": programme.description,
                }
                for programme in self._programmes.values()
            ],
            "schedules": {
                service_id: [
                    [entry.programme_id, entry.window.start_s, entry.window.end_s]
                    for entry in schedule.entries()
                ]
                for service_id, schedule in self._schedules.items()
            },
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot` payload, replacing the catalogue."""
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported content snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        self._clips = {}
        self._services = {}
        self._programmes = {}
        self._schedules = {}
        self._clips_table.restore([])
        self._services_table.restore([])
        for raw in payload.get("services", []):
            self.add_service(
                RadioService(
                    service_id=raw["service_id"],
                    name=raw["name"],
                    bitrate_kbps=raw.get("bitrate_kbps", 96),
                    genre=raw.get("genre", "general"),
                )
            )
        for raw in payload.get("programmes", []):
            self.add_programme(
                LiveProgramme(
                    programme_id=raw["programme_id"],
                    service_id=raw["service_id"],
                    title=raw["title"],
                    categories=list(raw.get("categories", [])),
                    description=raw.get("description", ""),
                )
            )
        for service_id, entries in payload.get("schedules", {}).items():
            for programme_id, start_s, end_s in entries:
                self.schedule_programme(programme_id, TimeWindow(start_s, end_s))
        with self._db.batch():
            for raw in payload.get("clips", []):
                self.add_clip(self._clip_from_payload(raw))
        self._clips_table.bump_version_to(payload.get("clips_version", 0))
        self._services_table.bump_version_to(payload.get("services_version", 0))

"""Geographic relevance of audio items.

Figure 2 of the paper shows an item ("B") recommended because it "is also
relevant to location L_B the user will reach".  The paper's future work
section plans to "estimate the geographic relevance of audio items available
in the archives"; this module implements that estimation for the
reproduction: clips may carry a geographic footprint (a centre point and a
radius) and their relevance to a *point*, a *route*, or a *predicted
destination* decays smoothly with distance.

Two evaluation paths are provided:

* the reference path (:func:`geographic_relevance` and friends), which
  scores one clip at a time and is kept as the readable specification;
* a batched fast path (:class:`RouteSamples` + :class:`RouteRelevanceScorer`)
  that materializes the sampled route once per request, precomputes the
  radian/cosine terms of the haversine formula for every probe point, and
  optionally prunes far-away clips through a :class:`~repro.geo.GridIndex`
  over tag centres.  The fast path returns the same scores as the reference
  path (pruned clips score 0 instead of < 1e-12).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.content.model import AudioClip
from repro.errors import ValidationError
from repro.geo import BoundingBox, GeoPoint, GridIndex, Polyline
from repro.geo.geodesy import EARTH_RADIUS_M, haversine_m

#: Default footprint parameters for clips that do not carry their own.
DEFAULT_RADIUS_M = 2000.0
DEFAULT_DECAY_M = 4000.0

#: exp(-28) < 1e-12: a clip whose footprint is more than ``radius_m +
#: 28 * decay_m`` from every probe point scores indistinguishably from zero,
#: so the spatial pre-pruning may drop it without observable effect.
_NEGLIGIBLE_DECAY_FACTOR = 28.0


@dataclass(frozen=True)
class GeoTag:
    """A geographic footprint: relevance 1 inside ``radius_m``, decaying outside."""

    location: GeoPoint
    radius_m: float = DEFAULT_RADIUS_M
    decay_m: float = DEFAULT_DECAY_M

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValidationError(f"radius_m must be > 0, got {self.radius_m}")
        if self.decay_m <= 0:
            raise ValidationError(f"decay_m must be > 0, got {self.decay_m}")

    def relevance_at_distance(self, distance_m: float) -> float:
        """Relevance for a listener ``distance_m`` away from the tag centre."""
        if distance_m <= self.radius_m:
            return 1.0
        return math.exp(-(distance_m - self.radius_m) / self.decay_m)

    def relevance_at(self, point: GeoPoint) -> float:
        """Relevance of the tagged content for a listener at ``point``."""
        return self.relevance_at_distance(haversine_m(self.location, point))

    @property
    def reach_m(self) -> float:
        """Distance beyond which the footprint's relevance is negligible."""
        return self.radius_m + self.decay_m * _NEGLIGIBLE_DECAY_FACTOR


def clip_geo_tag(clip: AudioClip) -> Optional[GeoTag]:
    """The clip's geographic footprint, if it is geo-tagged."""
    if clip.geo_location is None:
        return None
    radius = clip.geo_radius_m if clip.geo_radius_m is not None else DEFAULT_RADIUS_M
    decay = clip.geo_decay_m if clip.geo_decay_m is not None else DEFAULT_DECAY_M
    return GeoTag(clip.geo_location, radius, decay)


class RouteSamples:
    """Arc-length-indexed samples of a route with precomputed trigonometry.

    Materialized once per recommendation tick and shared by every candidate
    scored against the same route, so the route is interpolated and
    converted to radians a single time instead of once per clip.
    """

    __slots__ = ("arcs", "points", "lat_rad", "lon_rad", "cos_lat")

    def __init__(self, arcs: Sequence[float], points: Sequence[GeoPoint]) -> None:
        if len(arcs) != len(points) or not points:
            raise ValidationError("RouteSamples needs matching, non-empty arcs and points")
        self.arcs: List[float] = list(arcs)
        self.points: List[GeoPoint] = list(points)
        self.lat_rad: List[float] = [math.radians(p.lat) for p in self.points]
        self.lon_rad: List[float] = [math.radians(p.lon) for p in self.points]
        self.cos_lat: List[float] = [math.cos(lat) for lat in self.lat_rad]

    @classmethod
    def from_route(cls, route: Polyline, samples: int) -> "RouteSamples":
        """Sample ``route`` at ``samples`` evenly spaced arc-length positions."""
        count = max(2, samples)
        if len(route) == 1 or route.length_m <= 0.0:
            return cls([0.0], [route.start])
        arcs = [index / (count - 1) * route.length_m for index in range(count)]
        return cls(arcs, route.sample_points(count))

    def __len__(self) -> int:
        return len(self.points)

    def nearest(self, target: GeoPoint) -> Tuple[int, float]:
        """Index and distance of the sample closest to ``target``.

        Ties keep the earliest sample, matching a sequential scan with a
        strict ``<`` comparison.
        """
        lat_t = math.radians(target.lat)
        lon_t = math.radians(target.lon)
        cos_t = math.cos(lat_t)
        sin = math.sin
        best_index = 0
        best_h = math.inf
        for index, (lat_s, lon_s, cos_s) in enumerate(
            zip(self.lat_rad, self.lon_rad, self.cos_lat)
        ):
            # Haversine numerator; monotone in distance, so the min-h sample
            # is the min-distance sample and asin/sqrt run only once below.
            h = sin((lat_t - lat_s) / 2.0) ** 2 + cos_s * cos_t * sin((lon_t - lon_s) / 2.0) ** 2
            if h < best_h:
                best_h = h
                best_index = index
        distance = 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(min(1.0, best_h)))
        return best_index, distance


class RouteRelevanceScorer:
    """Batched geographic relevance against a fixed listener geometry.

    The probe set (current position, predicted destination, sampled route)
    is converted to radians once; each clip then needs only the flattened
    haversine inner loop — no per-comparison :class:`GeoPoint` allocation,
    no per-clip route resampling — and an optional grid index prunes clips
    whose footprint cannot reach any probe point.
    """

    def __init__(
        self,
        *,
        current_position: Optional[GeoPoint] = None,
        route: Optional[Polyline] = None,
        destination: Optional[GeoPoint] = None,
        route_samples: int = 25,
        samples: Optional[RouteSamples] = None,
    ) -> None:
        if samples is None and route is not None and len(route) > 0 and route.length_m > 0:
            samples = RouteSamples.from_route(route, route_samples)
        self._samples = samples
        probes: List[GeoPoint] = []
        if current_position is not None:
            probes.append(current_position)
        if destination is not None:
            probes.append(destination)
        if samples is not None:
            probes.extend(samples.points)
        self._probes = probes
        self._lat_rad = [math.radians(p.lat) for p in probes]
        self._lon_rad = [math.radians(p.lon) for p in probes]
        self._cos_lat = [math.cos(lat) for lat in self._lat_rad]
        self._bounds = BoundingBox.from_points(probes) if probes else None

    @property
    def route_samples(self) -> Optional[RouteSamples]:
        """The materialized route samples (None without a usable route)."""
        return self._samples

    @property
    def bounds(self) -> Optional[BoundingBox]:
        """Bounding box of all probe points (None without probes)."""
        return self._bounds

    def min_distance_m(self, location: GeoPoint) -> float:
        """Smallest great-circle distance from ``location`` to any probe."""
        if not self._probes:
            return math.inf
        lat_t = math.radians(location.lat)
        lon_t = math.radians(location.lon)
        cos_t = math.cos(lat_t)
        sin = math.sin
        best_h = math.inf
        for lat_p, lon_p, cos_p in zip(self._lat_rad, self._lon_rad, self._cos_lat):
            h = sin((lat_p - lat_t) / 2.0) ** 2 + cos_t * cos_p * sin((lon_p - lon_t) / 2.0) ** 2
            if h < best_h:
                best_h = h
        return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(min(1.0, best_h)))

    def tag_relevance(self, tag: GeoTag) -> float:
        """Best footprint relevance over all probe points (0 without probes)."""
        distance = self.min_distance_m(tag.location)
        if math.isinf(distance):
            return 0.0
        return tag.relevance_at_distance(distance)

    def score(self, clip: AudioClip) -> float:
        """Geographic relevance of one clip (0.5 for non-geo-tagged clips)."""
        tag = clip_geo_tag(clip)
        if tag is None:
            return 0.5
        return self.tag_relevance(tag)

    def score_many(
        self,
        clips: Sequence[AudioClip],
        *,
        geo_index: Optional[GridIndex[str]] = None,
    ) -> Dict[str, float]:
        """Scores for a batch of clips keyed by clip id.

        With a ``geo_index`` over tag centres, clips whose footprint cannot
        reach the probe bounding box are scored 0 without running the inner
        loop (their true score is below 1e-12).
        """
        tags = [clip_geo_tag(clip) for clip in clips]
        near: Optional[set] = None
        if geo_index is not None and self._bounds is not None:
            reach = 0.0
            for tag in tags:
                if tag is not None:
                    reach = max(reach, tag.reach_m)
            box = self._expanded_bounds(reach)
            if box is not None:
                near = set(geo_index.query_bbox(box))
        scores: Dict[str, float] = {}
        for clip, tag in zip(clips, tags):
            if tag is None:
                scores[clip.clip_id] = 0.5
            elif near is not None and clip.clip_id not in near and clip.clip_id in geo_index:
                scores[clip.clip_id] = 0.0
            else:
                scores[clip.clip_id] = self.tag_relevance(tag)
        return scores

    def _expanded_bounds(self, reach_m: float) -> Optional[BoundingBox]:
        """Probe bounding box grown by ``reach_m`` (None when unsafe to prune)."""
        box = self._bounds
        if box is None:
            return None
        dlat = math.degrees(reach_m / EARTH_RADIUS_M) * 1.05
        widest_lat = max(abs(box.min_lat - dlat), abs(box.max_lat + dlat))
        if widest_lat >= 89.0:
            return None  # too close to a pole for the planar lon expansion
        cos_lat = math.cos(math.radians(widest_lat))
        dlon = math.degrees(reach_m / (EARTH_RADIUS_M * cos_lat)) * 1.05
        return BoundingBox(
            max(-90.0, box.min_lat - dlat),
            max(-180.0, box.min_lon - dlon),
            min(90.0, box.max_lat + dlat),
            min(180.0, box.max_lon + dlon),
        )


def geographic_relevance(
    clip: AudioClip,
    *,
    current_position: Optional[GeoPoint] = None,
    route: Optional[Polyline] = None,
    destination: Optional[GeoPoint] = None,
    route_samples: int = 25,
    samples: Optional[RouteSamples] = None,
) -> float:
    """Geographic relevance of a clip for a listener's spatial context.

    The score is the maximum footprint relevance over the listener's current
    position, points sampled along the projected route, and the predicted
    destination.  Non-geo-tagged clips get a neutral score of 0.5 so that
    purely national content is neither boosted nor punished by location.

    ``samples`` lets callers scoring many clips against the same route pass
    the materialized sample points instead of re-interpolating per clip.
    """
    tag = clip_geo_tag(clip)
    if tag is None:
        return 0.5
    best = 0.0
    if current_position is not None:
        best = max(best, tag.relevance_at(current_position))
    if destination is not None:
        best = max(best, tag.relevance_at(destination))
    route_points: Sequence[GeoPoint] = ()
    if samples is not None:
        route_points = samples.points
    elif route is not None and len(route) > 0 and route.length_m > 0:
        route_points = route.sample_points(max(2, route_samples))
    for point in route_points:
        best = max(best, tag.relevance_at(point))
        if best >= 1.0:  # inside the footprint plateau: cannot improve
            break
    return best


def best_route_point(
    clip: AudioClip,
    route: Polyline,
    *,
    samples: int = 50,
    table: Optional[RouteSamples] = None,
) -> Optional[GeoPoint]:
    """The point along the route where the clip is most relevant.

    Used by the scheduler to time a geo-tagged clip so it plays as the
    listener approaches the relevant location (Figure 2's item B at L_B).
    Returns ``None`` for non-geo-tagged clips.  Passing a shared ``table``
    avoids re-sampling the route for every clip of a plan.
    """
    tag = clip_geo_tag(clip)
    if tag is None or route.length_m <= 0:
        return None
    # Footprint relevance is monotone in distance to the tag centre, so the
    # most relevant route point is simply the sampled point closest to it
    # (this also breaks ties inside the radius plateau sensibly).
    if table is None:
        table = RouteSamples.from_route(route, samples)
    index, _distance = table.nearest(tag.location)
    return table.points[index]


def distance_along_route_to_point(
    route: Polyline,
    target: GeoPoint,
    *,
    samples: int = 100,
    table: Optional[RouteSamples] = None,
) -> float:
    """Arc-length position along the route closest to ``target``.

    A sampled approximation that is accurate enough for scheduling decisions
    (errors of a few hundred meters translate to a few seconds of timing).
    """
    if route.length_m <= 0:
        return 0.0
    if table is None:
        table = RouteSamples.from_route(route, samples)
    index, _distance = table.nearest(target)
    return table.arcs[index]

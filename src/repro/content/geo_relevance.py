"""Geographic relevance of audio items.

Figure 2 of the paper shows an item ("B") recommended because it "is also
relevant to location L_B the user will reach".  The paper's future work
section plans to "estimate the geographic relevance of audio items available
in the archives"; this module implements that estimation for the
reproduction: clips may carry a geographic footprint (a centre point and a
radius) and their relevance to a *point*, a *route*, or a *predicted
destination* decays smoothly with distance.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.content.model import AudioClip
from repro.errors import ValidationError
from repro.geo import GeoPoint, Polyline
from repro.geo.geodesy import haversine_m


@dataclass(frozen=True)
class GeoTag:
    """A geographic footprint: relevance 1 inside ``radius_m``, decaying outside."""

    location: GeoPoint
    radius_m: float = 2000.0
    decay_m: float = 4000.0

    def __post_init__(self) -> None:
        if self.radius_m <= 0:
            raise ValidationError(f"radius_m must be > 0, got {self.radius_m}")
        if self.decay_m <= 0:
            raise ValidationError(f"decay_m must be > 0, got {self.decay_m}")

    def relevance_at(self, point: GeoPoint) -> float:
        """Relevance of the tagged content for a listener at ``point``."""
        distance = haversine_m(self.location, point)
        if distance <= self.radius_m:
            return 1.0
        return math.exp(-(distance - self.radius_m) / self.decay_m)


def clip_geo_tag(clip: AudioClip) -> Optional[GeoTag]:
    """The clip's geographic footprint, if it is geo-tagged."""
    if clip.geo_location is None:
        return None
    radius = clip.geo_radius_m if clip.geo_radius_m is not None else 2000.0
    return GeoTag(clip.geo_location, radius)


def geographic_relevance(
    clip: AudioClip,
    *,
    current_position: Optional[GeoPoint] = None,
    route: Optional[Polyline] = None,
    destination: Optional[GeoPoint] = None,
    route_samples: int = 25,
) -> float:
    """Geographic relevance of a clip for a listener's spatial context.

    The score is the maximum footprint relevance over the listener's current
    position, points sampled along the projected route, and the predicted
    destination.  Non-geo-tagged clips get a neutral score of 0.5 so that
    purely national content is neither boosted nor punished by location.
    """
    tag = clip_geo_tag(clip)
    if tag is None:
        return 0.5
    best = 0.0
    if current_position is not None:
        best = max(best, tag.relevance_at(current_position))
    if destination is not None:
        best = max(best, tag.relevance_at(destination))
    if route is not None and len(route) > 0 and route.length_m > 0:
        samples = max(2, route_samples)
        for index in range(samples):
            fraction = index / (samples - 1)
            point = route.point_at_distance(fraction * route.length_m)
            best = max(best, tag.relevance_at(point))
            if best >= 0.999:
                break
    return best


def best_route_point(
    clip: AudioClip, route: Polyline, *, samples: int = 50
) -> Optional[GeoPoint]:
    """The point along the route where the clip is most relevant.

    Used by the scheduler to time a geo-tagged clip so it plays as the
    listener approaches the relevant location (Figure 2's item B at L_B).
    Returns ``None`` for non-geo-tagged clips.
    """
    tag = clip_geo_tag(clip)
    if tag is None or route.length_m <= 0:
        return None
    # Footprint relevance is monotone in distance to the tag centre, so the
    # most relevant route point is simply the sampled point closest to it
    # (this also breaks ties inside the radius plateau sensibly).
    best_point: Optional[GeoPoint] = None
    best_distance = float("inf")
    for index in range(max(2, samples)):
        fraction = index / (samples - 1)
        point = route.point_at_distance(fraction * route.length_m)
        distance = haversine_m(point, tag.location)
        if distance < best_distance:
            best_distance = distance
            best_point = point
    return best_point


def distance_along_route_to_point(route: Polyline, target: GeoPoint, *, samples: int = 100) -> float:
    """Arc-length position along the route closest to ``target``.

    A sampled approximation that is accurate enough for scheduling decisions
    (errors of a few hundred meters translate to a few seconds of timing).
    """
    if route.length_m <= 0:
        return 0.0
    best_distance = float("inf")
    best_arc = 0.0
    for index in range(max(2, samples)):
        fraction = index / (samples - 1)
        arc = fraction * route.length_m
        point = route.point_at_distance(arc)
        distance = haversine_m(point, target)
        if distance < best_distance:
            best_distance = distance
            best_arc = arc
    return best_arc

"""RadioDNS-style service metadata (ETSI TS 103 270 hybrid lookup).

The paper's hybrid radio service relies on the RadioDNS standards to
associate a broadcast service (identified by its transmission parameters)
with Internet resources (streams, metadata, programme information).  We
model the pieces of that standard the pipeline needs: service identifiers,
bearers (broadcast or IP ways of receiving the same service) and the
service-information document used by clients to discover them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.errors import NotFoundError, ValidationError
from repro.util.validation import require_non_empty


@dataclass(frozen=True)
class ServiceIdentifier:
    """The broadcast parameters identifying a service (FM or DAB).

    For FM the identifier is (country, PI code, frequency); for DAB it is
    (ECC, EId, SId, SCIdS).  Only the fields required to build the RadioDNS
    FQDN are modelled.
    """

    system: str  # "fm" | "dab" | "ip"
    country: str = "it"
    pi_code: Optional[str] = None
    frequency_khz: Optional[int] = None
    eid: Optional[str] = None
    sid: Optional[str] = None
    scids: str = "0"

    def __post_init__(self) -> None:
        if self.system not in ("fm", "dab", "ip"):
            raise ValidationError(f"unknown bearer system {self.system!r}")
        if self.system == "fm" and (self.pi_code is None or self.frequency_khz is None):
            raise ValidationError("fm identifiers require pi_code and frequency_khz")
        if self.system == "dab" and (self.eid is None or self.sid is None):
            raise ValidationError("dab identifiers require eid and sid")

    def fqdn(self) -> str:
        """The RadioDNS lookup FQDN for this identifier."""
        if self.system == "fm":
            frequency = f"{self.frequency_khz:05d}"
            return f"{frequency}.{self.pi_code}.{self.country}.fm.radiodns.org"
        if self.system == "dab":
            return f"{self.scids}.{self.sid}.{self.eid}.{self.country}.dab.radiodns.org"
        return f"ip.radiodns.org"


@dataclass(frozen=True)
class Bearer:
    """One way of receiving a service: a broadcast mux or an IP stream."""

    bearer_id: str
    kind: str  # "fm" | "dab" | "ip"
    cost_rank: int = 0          # lower = preferred by the client
    bitrate_kbps: int = 96
    url: Optional[str] = None   # for IP bearers

    def __post_init__(self) -> None:
        require_non_empty(self.bearer_id, "bearer_id")
        if self.kind not in ("fm", "dab", "ip"):
            raise ValidationError(f"unknown bearer kind {self.kind!r}")
        if self.kind == "ip" and not self.url:
            raise ValidationError("ip bearers require a url")

    @property
    def is_broadcast(self) -> bool:
        """Whether receiving this bearer consumes no unicast bandwidth."""
        return self.kind in ("fm", "dab")


@dataclass
class ServiceInformation:
    """The SI document for one service: identifiers plus available bearers."""

    service_id: str
    name: str
    identifiers: List[ServiceIdentifier] = field(default_factory=list)
    bearers: List[Bearer] = field(default_factory=list)
    description: str = ""

    def add_bearer(self, bearer: Bearer) -> None:
        """Register an additional bearer."""
        if any(existing.bearer_id == bearer.bearer_id for existing in self.bearers):
            raise ValidationError(f"bearer {bearer.bearer_id!r} already registered")
        self.bearers.append(bearer)

    def preferred_bearer(self, *, broadcast_available: bool = True) -> Bearer:
        """The bearer a client should use.

        Broadcast bearers are preferred (lowest cost_rank first) when the
        device can receive them; otherwise the best IP bearer is returned.
        """
        candidates = [
            bearer
            for bearer in self.bearers
            if broadcast_available or not bearer.is_broadcast
        ]
        if not candidates:
            raise NotFoundError(f"service {self.service_id!r} has no usable bearer")
        return sorted(candidates, key=lambda bearer: (bearer.cost_rank, bearer.bearer_id))[0]


class ServiceDirectory:
    """Registry of :class:`ServiceInformation` documents (the SI server)."""

    def __init__(self) -> None:
        self._services: Dict[str, ServiceInformation] = {}

    def register(self, info: ServiceInformation) -> None:
        """Add or replace a service-information document."""
        self._services[info.service_id] = info

    def lookup(self, service_id: str) -> ServiceInformation:
        """Fetch the SI document for a service."""
        info = self._services.get(service_id)
        if info is None:
            raise NotFoundError(f"no service information for {service_id!r}")
        return info

    def lookup_by_identifier(self, identifier: ServiceIdentifier) -> ServiceInformation:
        """Hybrid lookup: resolve broadcast parameters to the SI document."""
        fqdn = identifier.fqdn()
        for info in self._services.values():
            if any(existing.fqdn() == fqdn for existing in info.identifiers):
                return info
        raise NotFoundError(f"no service matches identifier {fqdn}")

    def service_ids(self) -> List[str]:
        """All registered service ids."""
        return sorted(self._services.keys())

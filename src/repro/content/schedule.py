"""Linear programme schedules (the broadcaster's EPG).

The hybrid radio client needs to know the boundaries of the programmes on
the live service it is playing so it can replace a programme seamlessly
(Figures 1 and 4).  The schedule also drives the time-shifted playback of a
live programme that started earlier ("The rabbit's roar" in scenario 2.1.2).
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import List, Optional

from repro.content.model import LiveProgramme
from repro.errors import NotFoundError, ValidationError
from repro.util.timeutils import TimeWindow


@dataclass(frozen=True)
class ScheduledProgramme:
    """A programme placed on a service's timeline."""

    programme: LiveProgramme
    window: TimeWindow

    @property
    def programme_id(self) -> str:
        """Identifier of the underlying programme."""
        return self.programme.programme_id

    @property
    def duration_s(self) -> float:
        """Scheduled duration."""
        return self.window.duration_s


class LinearSchedule:
    """The time-ordered schedule of one linear radio service."""

    def __init__(self, service_id: str) -> None:
        self._service_id = service_id
        self._entries: List[ScheduledProgramme] = []
        self._starts: List[float] = []

    @property
    def service_id(self) -> str:
        """The service this schedule belongs to."""
        return self._service_id

    def __len__(self) -> int:
        return len(self._entries)

    def add(self, programme: LiveProgramme, window: TimeWindow) -> ScheduledProgramme:
        """Append a programme; windows must not overlap existing entries."""
        if programme.service_id != self._service_id:
            raise ValidationError(
                f"programme {programme.programme_id!r} belongs to service "
                f"{programme.service_id!r}, not {self._service_id!r}"
            )
        for existing in self._entries:
            if existing.window.overlaps(window):
                raise ValidationError(
                    f"programme window {window} overlaps existing entry "
                    f"{existing.programme_id!r} {existing.window}"
                )
        entry = ScheduledProgramme(programme, window)
        position = bisect.bisect_left(self._starts, window.start_s)
        self._entries.insert(position, entry)
        self._starts.insert(position, window.start_s)
        return entry

    def entries(self) -> List[ScheduledProgramme]:
        """All entries in start-time order."""
        return list(self._entries)

    def programme_at(self, instant_s: float) -> Optional[ScheduledProgramme]:
        """The programme on air at ``instant_s`` (or ``None`` during a gap)."""
        position = bisect.bisect_right(self._starts, instant_s) - 1
        if position < 0:
            return None
        entry = self._entries[position]
        return entry if entry.window.contains(instant_s) else None

    def next_boundary_after(self, instant_s: float) -> Optional[float]:
        """The next programme start or end strictly after ``instant_s``."""
        boundaries: List[float] = []
        for entry in self._entries:
            boundaries.extend((entry.window.start_s, entry.window.end_s))
        future = sorted(boundary for boundary in boundaries if boundary > instant_s)
        return future[0] if future else None

    def entries_between(self, start_s: float, end_s: float) -> List[ScheduledProgramme]:
        """Entries overlapping ``[start_s, end_s)``."""
        window = TimeWindow(start_s, end_s)
        return [entry for entry in self._entries if entry.window.overlaps(window)]

    def find(self, programme_id: str) -> ScheduledProgramme:
        """The schedule entry for a programme id."""
        for entry in self._entries:
            if entry.programme_id == programme_id:
                return entry
        raise NotFoundError(
            f"programme {programme_id!r} is not on the schedule of {self._service_id!r}"
        )

    def remaining_in_current(self, instant_s: float) -> float:
        """Seconds left in the programme on air at ``instant_s`` (0 in a gap)."""
        current = self.programme_at(instant_s)
        if current is None:
            return 0.0
        return current.window.end_s - instant_s

    def coverage_window(self) -> Optional[TimeWindow]:
        """The window from the first start to the last end (``None`` if empty)."""
        if not self._entries:
            return None
        return TimeWindow(self._entries[0].window.start_s, max(e.window.end_s for e in self._entries))

"""Content entities: radio services, live programmes and audio clips."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.content.categories import category_by_name
from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.util.validation import require_non_empty, require_positive


class ContentKind(enum.Enum):
    """What kind of audio item a clip is."""

    PODCAST = "podcast"
    NEWS = "news"
    MUSIC = "music"
    ADVERTISEMENT = "advertisement"
    TIME_SHIFTED = "time_shifted"


@dataclass(frozen=True)
class RadioService:
    """A live linear radio service (one of the broadcaster's stations)."""

    service_id: str
    name: str
    bitrate_kbps: int = 96
    genre: str = "general"

    def __post_init__(self) -> None:
        require_non_empty(self.service_id, "service_id")
        require_non_empty(self.name, "name")
        require_positive(self.bitrate_kbps, "bitrate_kbps")


@dataclass(frozen=True)
class LiveProgramme:
    """A programme broadcast on a linear service."""

    programme_id: str
    service_id: str
    title: str
    categories: List[str] = field(default_factory=list)
    description: str = ""

    def __post_init__(self) -> None:
        require_non_empty(self.programme_id, "programme_id")
        require_non_empty(self.service_id, "service_id")
        require_non_empty(self.title, "title")
        for name in self.categories:
            category_by_name(name)  # raises NotFoundError on unknown categories


@dataclass(frozen=True)
class AudioClip:
    """A replaceable audio item: podcast episode, news bulletin, ad, ...

    ``category_scores`` is a distribution over (a subset of) the 30
    categories: for editorially tagged podcasts it is 1.0 on the tagged
    categories; for speech content it is the posterior produced by the
    Bayesian classifier.  ``geo_tags`` carries optional geographic relevance
    (see :mod:`repro.content.geo_relevance`).
    """

    clip_id: str
    title: str
    kind: ContentKind
    duration_s: float
    category_scores: Dict[str, float] = field(default_factory=dict)
    source_programme_id: Optional[str] = None
    transcript: Optional[str] = None
    geo_location: Optional[GeoPoint] = None
    geo_radius_m: Optional[float] = None
    geo_decay_m: Optional[float] = None
    published_s: float = 0.0
    size_bytes: int = 0

    def __post_init__(self) -> None:
        require_non_empty(self.clip_id, "clip_id")
        require_non_empty(self.title, "title")
        require_positive(self.duration_s, "duration_s")
        if self.geo_radius_m is not None and self.geo_radius_m <= 0:
            raise ValidationError(f"geo_radius_m must be > 0, got {self.geo_radius_m}")
        if self.geo_decay_m is not None and self.geo_decay_m <= 0:
            raise ValidationError(f"geo_decay_m must be > 0, got {self.geo_decay_m}")
        for name, score in self.category_scores.items():
            category_by_name(name)
            if score < 0:
                raise ValidationError(
                    f"category score for {name!r} must be >= 0, got {score}"
                )
        if self.size_bytes < 0:
            raise ValidationError(f"size_bytes must be >= 0, got {self.size_bytes}")

    @property
    def primary_category(self) -> Optional[str]:
        """The highest-scoring category, if any."""
        if not self.category_scores:
            return None
        return max(self.category_scores.items(), key=lambda pair: pair[1])[0]

    @property
    def is_geo_tagged(self) -> bool:
        """Whether the clip has a geographic relevance footprint."""
        return self.geo_location is not None

    def normalized_scores(self) -> Dict[str, float]:
        """Category scores normalized to sum to 1 (empty dict if untagged)."""
        total = sum(self.category_scores.values())
        if total <= 0:
            return {}
        return {name: score / total for name, score in self.category_scores.items()}

    def estimated_size_bytes(self, bitrate_kbps: int = 96) -> int:
        """Size estimate from duration and bitrate when ``size_bytes`` is unset."""
        if self.size_bytes > 0:
            return self.size_bytes
        return int(self.duration_s * bitrate_kbps * 1000 / 8)

"""Estimating the geographic relevance of archive audio items.

The paper's future work plans "to estimate the geographic relevance of audio
items available in the archives", by analysing informative and entertainment
content as well as advertisements.  This module implements that estimation
for the reproduction: a gazetteer maps place names to locations, and the
estimator scans an item's transcript (or title) for place mentions, turning
the mention statistics into a :class:`~repro.content.geo_relevance.GeoTag`.

The gazetteer can be built from the synthetic city's points of interest, so
archive items generated with place mentions become geo-tagged exactly the
way a production system would geo-tag real archive content from named
entities.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Dict, Iterable, List, Optional, Tuple

from repro.content.model import AudioClip
from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.geo.geodesy import centroid
from repro.util.validation import require_non_empty


@dataclass(frozen=True)
class GazetteerEntry:
    """A named place the estimator can recognise in transcripts."""

    name: str
    location: GeoPoint
    radius_m: float = 2000.0
    aliases: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        require_non_empty(self.name, "name")
        if self.radius_m <= 0:
            raise ValidationError(f"radius_m must be > 0, got {self.radius_m}")

    def surface_forms(self) -> List[str]:
        """All lowercase forms that count as a mention of this place."""
        return [self.name.lower()] + [alias.lower() for alias in self.aliases]


@dataclass(frozen=True)
class GeoEstimate:
    """The outcome of estimating one clip's geographic relevance."""

    clip_id: str
    location: Optional[GeoPoint]
    radius_m: Optional[float]
    mentioned_places: Dict[str, int]
    confidence: float

    @property
    def is_geo_relevant(self) -> bool:
        """Whether the clip should be treated as geographically targeted."""
        return self.location is not None


class Gazetteer:
    """A lookup table of known place names."""

    def __init__(self, entries: Iterable[GazetteerEntry] = ()) -> None:
        self._entries: Dict[str, GazetteerEntry] = {}
        self._surface_to_entry: Dict[str, str] = {}
        for entry in entries:
            self.add(entry)

    def add(self, entry: GazetteerEntry) -> None:
        """Register a place (later registrations override earlier aliases)."""
        self._entries[entry.name] = entry
        for form in entry.surface_forms():
            self._surface_to_entry[form] = entry.name

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, name: str) -> bool:
        return name in self._entries

    def entry(self, name: str) -> GazetteerEntry:
        """Look up a place by canonical name."""
        if name not in self._entries:
            raise ValidationError(f"gazetteer has no place named {name!r}")
        return self._entries[name]

    def names(self) -> List[str]:
        """Canonical names of all places."""
        return sorted(self._entries.keys())

    def match(self, token: str) -> Optional[GazetteerEntry]:
        """The place a single token refers to, if any."""
        name = self._surface_to_entry.get(token.lower())
        return self._entries[name] if name is not None else None

    @classmethod
    def from_city(cls, city, *, radius_m: float = 2500.0) -> "Gazetteer":
        """Build a gazetteer from a synthetic city's points of interest.

        POI names like ``market-2`` become the place tokens ``market`` is too
        ambiguous for, so the full slug is used as the surface form (this is
        what the synthetic transcript generator emits).
        """
        entries = [
            GazetteerEntry(name=name, location=location, radius_m=radius_m)
            for name, location in city.pois.items()
        ]
        return cls(entries)


class GeoRelevanceEstimator:
    """Estimates a clip's geographic footprint from its transcript/title."""

    def __init__(
        self,
        gazetteer: Gazetteer,
        *,
        min_mentions: int = 1,
        min_confidence: float = 0.25,
    ) -> None:
        if min_mentions < 1:
            raise ValidationError("min_mentions must be >= 1")
        if not 0.0 <= min_confidence <= 1.0:
            raise ValidationError("min_confidence must be in [0, 1]")
        self._gazetteer = gazetteer
        self._min_mentions = min_mentions
        self._min_confidence = min_confidence

    def estimate(self, clip: AudioClip) -> GeoEstimate:
        """Estimate the geographic relevance of one clip.

        The confidence is the share of recognised place mentions concentrated
        on the dominant place: a clip that mentions one neighbourhood five
        times is confidently local; a clip that mentions ten different cities
        once each is national and gets no footprint.
        """
        text_parts = [clip.title]
        if clip.transcript:
            text_parts.append(clip.transcript)
        text = " ".join(text_parts).lower()
        mentions: Dict[str, int] = {}
        for name in self._gazetteer.names():
            entry = self._gazetteer.entry(name)
            # Hyphenated place slugs and their aliases can overlap ("castello"
            # inside "piazza-castello"), so take the best-matching surface
            # form per place rather than summing overlapping matches.
            count = max(
                len(re.findall(r"(?<![a-z0-9])" + re.escape(form) + r"(?![a-z0-9])", text))
                for form in entry.surface_forms()
            )
            if count > 0:
                mentions[name] = count

        if not mentions:
            return GeoEstimate(clip.clip_id, None, None, {}, 0.0)

        total = sum(mentions.values())
        dominant_name, dominant_count = max(mentions.items(), key=lambda pair: pair[1])
        confidence = dominant_count / total
        if dominant_count < self._min_mentions or confidence < self._min_confidence:
            return GeoEstimate(clip.clip_id, None, None, mentions, confidence)

        # Centre the footprint on the mentioned places weighted by frequency,
        # and size it to cover the dominant place comfortably.
        weighted_points: List[GeoPoint] = []
        for name, count in mentions.items():
            weighted_points.extend([self._gazetteer.entry(name).location] * count)
        location = centroid(weighted_points)
        radius = self._gazetteer.entry(dominant_name).radius_m
        return GeoEstimate(clip.clip_id, location, radius, mentions, confidence)

    def annotate(self, clip: AudioClip) -> AudioClip:
        """Return a copy of the clip carrying the estimated geo tag (if any)."""
        estimate = self.estimate(clip)
        if not estimate.is_geo_relevant:
            return clip
        return replace(clip, geo_location=estimate.location, geo_radius_m=estimate.radius_m)

    def annotate_archive(self, clips: Iterable[AudioClip]) -> Tuple[List[AudioClip], int]:
        """Annotate a whole archive; returns (clips, number newly geo-tagged)."""
        annotated: List[AudioClip] = []
        tagged = 0
        for clip in clips:
            if clip.is_geo_tagged:
                annotated.append(clip)
                continue
            updated = self.annotate(clip)
            if updated.is_geo_tagged:
                tagged += 1
            annotated.append(updated)
        return annotated, tagged

"""Audio content model, repository, linear schedule and RadioDNS metadata.

This package models the broadcaster side of the paper: the 10 live radio
services with their programme schedules, the daily podcast/clip production
classified into 30 categories, RadioDNS-style service metadata enabling the
hybrid lookup, and geographic relevance tags for location-aware content.
"""

from repro.content.categories import CATEGORIES, Category, category_by_name, category_names
from repro.content.geo_estimator import Gazetteer, GazetteerEntry, GeoRelevanceEstimator
from repro.content.geo_relevance import (
    GeoTag,
    RouteRelevanceScorer,
    RouteSamples,
    geographic_relevance,
)
from repro.content.model import AudioClip, ContentKind, LiveProgramme, RadioService
from repro.content.radiodns import Bearer, ServiceIdentifier, ServiceInformation
from repro.content.repository import ContentRepository
from repro.content.schedule import LinearSchedule, ScheduledProgramme

__all__ = [
    "AudioClip",
    "Bearer",
    "CATEGORIES",
    "Category",
    "ContentKind",
    "ContentRepository",
    "Gazetteer",
    "GazetteerEntry",
    "GeoRelevanceEstimator",
    "GeoTag",
    "LinearSchedule",
    "LiveProgramme",
    "RadioService",
    "RouteRelevanceScorer",
    "RouteSamples",
    "ScheduledProgramme",
    "ServiceIdentifier",
    "ServiceInformation",
    "category_by_name",
    "category_names",
    "geographic_relevance",
]

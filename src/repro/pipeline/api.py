"""The legacy public API, now a v1 compatibility façade over the gateway.

Historically :class:`PublicApi` was a flat bag of hand-written methods with
per-method ``try``/``except`` error mapping.  Every method now builds a
versioned request and sends it through the
:class:`~repro.pipeline.gateway.Gateway` — the declarative route table,
middleware chain (auth, rate limiting, metrics, exception mapping) and
caching all apply — while the method signatures and response contract the
existing callers rely on stay unchanged.

Two deliberate deviations from the seed behaviour:

* ``post_feedback`` used to map *every* library error to 404; validation
  failures (bad kind, negative ``listened_s``) now correctly return 400 —
  the gateway's single status mapper makes this structural.
* ``post_location`` for an unknown user now returns 404 (it was folded
  into 400 with every other error); invalid coordinates still return 400.

One deliberate translation *towards* the seed: duplicate registration maps
the gateway's 409 back to the legacy 400 so existing callers keep working.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.pipeline.gateway import ApiResponse, Gateway
from repro.pipeline.server import PphcrServer

__all__ = ["ApiResponse", "PublicApi"]


class PublicApi:
    """Request handlers the client app calls (gateway-backed façade)."""

    def __init__(
        self,
        server: PphcrServer,
        *,
        gateway: Optional[Gateway] = None,
        auth_token: Optional[str] = None,
    ) -> None:
        self._server = server
        self._gateway = gateway if gateway is not None else Gateway(server)
        # Sent as a Bearer token with every request when set — how a mobile
        # client holding an issued API key talks to an auth-requiring gateway.
        self._headers = {"authorization": f"Bearer {auth_token}"} if auth_token else {}

    @property
    def gateway(self) -> Gateway:
        """The gateway this façade dispatches through."""
        return self._gateway

    # Users -----------------------------------------------------------------

    def register_user(self, user_id: str, display_name: str, **details: Any) -> ApiResponse:
        """``POST /v1/users`` — register a listener."""
        response = self._gateway.request(
            "POST",
            "/v1/users",
            body={"user_id": user_id, "display_name": display_name, **details},
            headers=self._headers,
        )
        if response.status == 409:  # legacy contract: duplicates were 400
            return ApiResponse(status=400, body=response.body, headers=response.headers)
        return response

    def get_profile(self, user_id: str) -> ApiResponse:
        """``GET /v1/users/{id}`` — demographic profile and learned preferences."""
        return self._gateway.request("GET", f"/v1/users/{user_id}", headers=self._headers)

    # Feedback ---------------------------------------------------------------

    def post_feedback(
        self,
        user_id: str,
        content_id: str,
        kind: str,
        *,
        timestamp_s: float,
        listened_s: float = 0.0,
        is_clip: bool = True,
    ) -> ApiResponse:
        """``POST /v1/feedback`` — implicit or explicit feedback from the app."""
        return self._gateway.request(
            "POST",
            "/v1/feedback",
            body={
                "user_id": user_id,
                "content_id": content_id,
                "kind": kind,
                "timestamp_s": timestamp_s,
                "listened_s": listened_s,
                "is_clip": is_clip,
            },
            headers=self._headers,
        )

    # Tracking ---------------------------------------------------------------

    def post_location(
        self,
        user_id: str,
        *,
        lat: float,
        lon: float,
        timestamp_s: float,
        speed_mps: float = 0.0,
    ) -> ApiResponse:
        """``POST /v1/tracking`` — one GPS fix from the client."""
        return self._gateway.request(
            "POST",
            "/v1/tracking",
            body={
                "user_id": user_id,
                "lat": lat,
                "lon": lon,
                "timestamp_s": timestamp_s,
                "speed_mps": speed_mps,
            },
            headers=self._headers,
        )

    # Content ------------------------------------------------------------------

    def list_services(self) -> ApiResponse:
        """``GET /v1/services`` — the live radio services.

        Legacy contract: the complete listing.  The façade walks the
        gateway's cursor pagination to exhaustion and merges the pages.
        """
        limit = str(self._gateway.config.max_page_limit)
        services = []
        cursor: Optional[str] = None
        while True:
            query = {"limit": limit}
            if cursor is not None:
                query["cursor"] = cursor
            response = self._gateway.request(
                "GET", "/v1/services", query=query, headers=self._headers
            )
            if not response.ok:
                return response
            services.extend(response.body["services"])
            cursor = response.body["next_cursor"]
            if cursor is None:
                return ApiResponse(
                    status=response.status,
                    body={"services": services, "next_cursor": None},
                    headers=response.headers,
                )

    def get_clip(self, clip_id: str) -> ApiResponse:
        """``GET /v1/clips/{id}`` — clip metadata."""
        return self._gateway.request("GET", f"/v1/clips/{clip_id}", headers=self._headers)

    # Recommendations ---------------------------------------------------------------

    def get_recommendations(self, user_id: str, *, now_s: float) -> ApiResponse:
        """``GET /v1/recommendations/{id}`` — run the proactive pipeline."""
        return self._gateway.request(
            "GET",
            f"/v1/recommendations/{user_id}",
            query={"now_s": repr(float(now_s))},
            headers=self._headers,
        )

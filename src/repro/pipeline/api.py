"""The public REST-like API façade.

The production system exposes a "Public Rest API Server" the mobile clients
talk to.  The reproduction models it as a thin request/response façade over
:class:`~repro.pipeline.server.PphcrServer`: every method validates its
input, returns an :class:`ApiResponse` with a status code and a plain
dictionary body (what would be the JSON payload), and never leaks internal
objects, so clients remain decoupled from server internals.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.errors import NotFoundError, ReproError
from repro.geo import GeoPoint
from repro.pipeline.server import PphcrServer
from repro.spatialdb import GpsFix
from repro.users.feedback import FeedbackKind
from repro.users.profile import UserProfile


@dataclass(frozen=True)
class ApiResponse:
    """A REST-style response: status code plus a JSON-like body."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request succeeded (2xx)."""
        return 200 <= self.status < 300


class PublicApi:
    """Request handlers the client app calls."""

    def __init__(self, server: PphcrServer) -> None:
        self._server = server

    # Users -----------------------------------------------------------------

    def register_user(self, user_id: str, display_name: str, **details: Any) -> ApiResponse:
        """``POST /users`` — register a listener."""
        try:
            profile = UserProfile(user_id=user_id, display_name=display_name, **details)
            self._server.register_user(profile)
        except ReproError as exc:
            return ApiResponse(status=400, body={"error": str(exc)})
        return ApiResponse(status=201, body={"user_id": user_id})

    def get_profile(self, user_id: str) -> ApiResponse:
        """``GET /users/{id}`` — demographic profile and learned preferences."""
        try:
            profile = self._server.users.profile(user_id)
            preferences = self._server.users.preference_profile(user_id)
        except NotFoundError as exc:
            return ApiResponse(status=404, body={"error": str(exc)})
        return ApiResponse(
            status=200,
            body={
                "user_id": profile.user_id,
                "display_name": profile.display_name,
                "top_categories": preferences.top_categories(5),
                "observations": preferences.observation_count,
            },
        )

    # Feedback ---------------------------------------------------------------

    def post_feedback(
        self,
        user_id: str,
        content_id: str,
        kind: str,
        *,
        timestamp_s: float,
        listened_s: float = 0.0,
        is_clip: bool = True,
    ) -> ApiResponse:
        """``POST /feedback`` — implicit or explicit feedback from the app."""
        try:
            feedback_kind = FeedbackKind(kind)
        except ValueError:
            return ApiResponse(status=400, body={"error": f"unknown feedback kind {kind!r}"})
        try:
            event = self._server.users.record_feedback(
                user_id,
                content_id,
                feedback_kind,
                timestamp_s=timestamp_s,
                listened_s=listened_s,
                is_clip=is_clip,
            )
        except ReproError as exc:
            return ApiResponse(status=404, body={"error": str(exc)})
        return ApiResponse(status=201, body={"event_id": event.event_id})

    # Tracking ---------------------------------------------------------------

    def post_location(
        self,
        user_id: str,
        *,
        lat: float,
        lon: float,
        timestamp_s: float,
        speed_mps: float = 0.0,
    ) -> ApiResponse:
        """``POST /tracking`` — one GPS fix from the client."""
        try:
            fix = GpsFix(user_id, timestamp_s, GeoPoint(lat, lon), speed_mps=speed_mps)
            self._server.users.ingest_fix(fix)
        except ReproError as exc:
            return ApiResponse(status=400, body={"error": str(exc)})
        return ApiResponse(status=202, body={"stored": True})

    # Content ------------------------------------------------------------------

    def list_services(self) -> ApiResponse:
        """``GET /services`` — the live radio services."""
        services = [
            {"service_id": service.service_id, "name": service.name, "bitrate_kbps": service.bitrate_kbps}
            for service in self._server.content.services()
        ]
        return ApiResponse(status=200, body={"services": services})

    def get_clip(self, clip_id: str) -> ApiResponse:
        """``GET /clips/{id}`` — clip metadata."""
        try:
            clip = self._server.content.clip(clip_id)
        except NotFoundError as exc:
            return ApiResponse(status=404, body={"error": str(exc)})
        return ApiResponse(
            status=200,
            body={
                "clip_id": clip.clip_id,
                "title": clip.title,
                "kind": clip.kind.value,
                "duration_s": clip.duration_s,
                "primary_category": clip.primary_category,
            },
        )

    # Recommendations ---------------------------------------------------------------

    def get_recommendations(self, user_id: str, *, now_s: float) -> ApiResponse:
        """``GET /recommendations`` — run the proactive pipeline for a user."""
        try:
            decision = self._server.recommend(user_id, now_s=now_s)
        except NotFoundError as exc:
            return ApiResponse(status=404, body={"error": str(exc)})
        except ReproError as exc:
            return ApiResponse(status=500, body={"error": str(exc)})
        items: List[Dict[str, Any]] = []
        if decision.plan is not None:
            for item in decision.plan.items:
                items.append(
                    {
                        "clip_id": item.clip_id,
                        "title": item.scored.clip.title,
                        "start_s": item.start_s,
                        "duration_s": item.scored.clip.duration_s,
                        "score": round(item.scored.final_score, 4),
                        "reason": item.reason,
                    }
                )
        return ApiResponse(
            status=200,
            body={
                "user_id": user_id,
                "proactive": decision.should_recommend,
                "reason": decision.reason,
                "items": items,
            },
        )

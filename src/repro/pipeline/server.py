"""The PPHCR content server: the integration of all components (Figure 3).

Responsibilities, mirroring the paper's architecture diagram:

* **Clip data management** — ingest podcasts/clips; clips carrying speech
  are transcribed (simulated ASR) and classified with the Bayesian
  classifier so they gain category scores.
* **User management** — registration, feedback, tracking intake (delegated
  to :class:`~repro.users.management.UserManager`).
* **Recommender system** — builds the listener context from the tracking
  data (trajectory mining, destination and ΔT prediction, distraction
  zones) and runs the proactive engine to produce recommendation plans.
* **Communication** — every significant step publishes a message on the
  internal bus, which the dashboard and the tests can observe.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.asr import SimulatedTranscriber
from repro.client.editorial import EditorialDesk
from repro.content.model import AudioClip, ContentKind
from repro.content.repository import ContentRepository
from repro.errors import NotFoundError, PipelineError
from repro.obs import Telemetry, TelemetryConfig
from repro.pipeline.messaging import MessageBus
from repro.recommender.compound import CompoundScorer
from repro.recommender.content_based import CandidateFilter, CandidateFilterConfig, ContentBasedScorer
from repro.recommender.context import ListenerContext
from repro.recommender.context_relevance import ContextScorer
from repro.recommender.distraction import DistractionModel
from repro.recommender.proactive import ProactiveConfig, ProactiveDecision, ProactiveEngine
from repro.recommender.scheduling import Scheduler, SchedulerPolicy
from repro.roadnet.generator import City
from repro.roadnet.intersections import distraction_zones_along, route_complexity
from repro.roadnet.routing import RoutePlanner
from repro.spatialdb import SpatialQueryEngine
from repro.storage.sharding import ShardingConfig, ShardWorkerPool
from repro.storage.wal import DurabilityConfig, DurabilityManager
from repro.streaming.compactor import CompactionConfig, ShardedCompactor
from repro.streaming.engine import StreamingConfig
from repro.streaming.incremental import IncrementalConfig
from repro.streaming.sharded import ShardedStreamingEngine
from repro.textclass import NaiveBayesClassifier
from repro.trajectory import (
    DestinationPredictor,
    Trajectory,
    TravelTimePredictor,
    cluster_trips,
    split_into_trips,
)
from repro.trajectory.clustering import RouteCluster, RouteClusterIndex, find_cluster
from repro.trajectory.staypoints import StayPoint, nearest_stay_point, stay_points_from_trips
from repro.users.management import UserManager
from repro.users.profile import UserProfile


@dataclass(frozen=True)
class ServerConfig:
    """Tunable parameters of the server-side pipeline."""

    context_weight: float = 0.45
    scheduler_policy: SchedulerPolicy = SchedulerPolicy.GREEDY
    proactive: ProactiveConfig = ProactiveConfig()
    candidate_filter: CandidateFilterConfig = CandidateFilterConfig()
    asr_target_wer: float = 0.12
    stay_point_eps_m: float = 300.0
    min_trips_for_model: int = 2
    streaming: StreamingConfig = StreamingConfig()
    compaction: CompactionConfig = CompactionConfig()
    #: Shard layout of all per-user state (tracking, profiles, feedback,
    #: streaming models).  ``shards`` must stay constant across snapshots
    #: taken per shard (whole-server snapshots restore into any layout);
    #: ``parallel`` enables the per-shard worker pool used by batch ingest
    #: and full-pass compaction.
    sharding: ShardingConfig = ShardingConfig()
    #: Unified observability (metrics registry, request tracing, slow-query
    #: log).  ``TelemetryConfig(enabled=False)`` swaps in the null variants
    #: so every instrumented call site degrades to a no-op.
    telemetry: TelemetryConfig = TelemetryConfig()
    #: Write-ahead logging.  ``DurabilityConfig(enabled=True, directory=...)``
    #: attaches a :class:`~repro.storage.wal.DurabilityManager` that records
    #: every committed mutation as checksummed log frames, enabling
    #: point-in-time recovery (snapshot + log tail) and log-shipped read
    #: replicas.  Disabled by default: the in-memory server is unchanged.
    durability: DurabilityConfig = DurabilityConfig()


@dataclass
class _UserMobilityModel:
    """Cached trajectory mining results for one user.

    Carries an (origin, destination) → cluster index so context building
    resolves the active commute cluster with a dict lookup instead of
    scanning the cluster list on every recommend tick.
    """

    stay_points: List[StayPoint]
    clusters: List[RouteCluster]
    trip_count: int
    cluster_index: RouteClusterIndex = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.cluster_index is None:
            self.cluster_index = RouteClusterIndex(self.clusters)


class PphcrServer:
    """The integrated Proactive Personalized Hybrid Content Radio server."""

    def __init__(
        self,
        *,
        city: Optional[City] = None,
        config: ServerConfig = ServerConfig(),
        classifier: Optional[NaiveBayesClassifier] = None,
    ) -> None:
        self._config = config
        self._telemetry = Telemetry(config.telemetry)
        self._bus = MessageBus()
        self._bus.attach_metrics(self._telemetry.metrics)
        self._content = ContentRepository()
        self._users = UserManager(content=self._content, shards=config.sharding.shards)
        # Storage telemetry: query observers on every table plus pull-time
        # stats collectors (no-ops when telemetry is disabled).
        self._telemetry.observe_database(self._content.database, name="metadata")
        self._telemetry.observe_sharded(self._users.profiles_database, name="profiles")
        self._telemetry.observe_sharded(self._users.feedback.database, name="feedbacks")
        self._telemetry.observe_sharded(self._users.tracking.database, name="tracking")
        if self._telemetry.enabled:
            self._compaction_pass_seconds = self._telemetry.latency_histogram(
                "compaction_pass_seconds", "Wall time of compaction passes"
            )
            self._compaction_shard_seconds = self._telemetry.metrics.gauge(
                "compaction_shard_seconds",
                "Per-shard wall time of the latest compaction pass",
                labels=("shard",),
            )
            self._compaction_fixes_removed = self._telemetry.metrics.counter(
                "compaction_fixes_removed_total", "Raw fixes pruned by compaction"
            )
        else:
            self._compaction_pass_seconds = None
            self._compaction_shard_seconds = None
            self._compaction_fixes_removed = None
        self._editorial = EditorialDesk()
        self._city = city
        self._planner = RoutePlanner(city.network) if city is not None else None
        self._transcriber = SimulatedTranscriber(target_wer=config.asr_target_wer)
        self._classifier = classifier
        # The corpus train_classifier() last fitted on, so snapshot/WAL
        # replay can rebuild the classifier; None means "as constructed"
        # (untrained, or an injected classifier treated as configuration).
        self._classifier_corpus: Optional[Dict[str, List[str]]] = None
        self._content_scorer = ContentBasedScorer(self._content, self._users)
        # The repository's grid index over geo-tag centres lets context
        # scoring prune clips whose footprint cannot reach the route.
        self._context_scorer = ContextScorer(geo_index=self._content.geo_index)
        self._compound = CompoundScorer(
            self._content_scorer, self._context_scorer, context_weight=config.context_weight
        )
        self._filter = CandidateFilter(self._content, self._users, config.candidate_filter)
        self._scheduler = Scheduler(policy=config.scheduler_policy)
        self._engine = ProactiveEngine(
            self._filter, self._compound, self._scheduler, config.proactive
        )
        self._mobility_models: Dict[str, _UserMobilityModel] = {}
        # Converted streaming snapshots served by mobility_model(), keyed by
        # the engine's (epoch, trip_count) so a stale copy is never reused.
        self._streaming_served: Dict[str, tuple] = {}
        self._travel_time = TravelTimePredictor(self._planner)
        # Streaming mobility mining: every ingested fix flows through the
        # online sessionizer/incremental miner so compaction never has to
        # re-read raw histories.  The stay-point radius follows the server's
        # batch setting so both paths mine with identical parameters.
        self._streaming: Optional[ShardedStreamingEngine] = None
        if config.streaming.enabled:
            incremental = replace(
                config.streaming.incremental, eps_m=config.stay_point_eps_m
            )
            self._streaming = ShardedStreamingEngine(
                replace(config.streaming, incremental=incremental),
                shards=config.sharding.shards,
                bus=self._bus,
                metrics=self._telemetry.metrics if self._telemetry.enabled else None,
            )
            self._users.add_fix_listener(
                self._streaming.observe_fix, batch=self._streaming.observe_fixes
            )
        self._compactor = ShardedCompactor(
            self._users.tracking,
            self._refresh_mobility_model,
            config=config.compaction,
        )
        # Round-robin shard cursor for maintenance_tick(): successive ticks
        # walk the compactor's shards so a deployment covers the whole
        # population without ever running a full pass.
        self._maintenance_shard = 0
        # Per-shard worker pool (one single-thread executor per shard, built
        # lazily): batch ingest and full-pass compaction dispatch their
        # per-shard groups here when ``sharding.parallel`` is on.
        self._workers: Optional[ShardWorkerPool] = None
        # Durability: attached last so its change/op listeners observe the
        # fully wired server (the streaming engine's fix listener must run
        # before the WAL's — replayed fixes re-drive streaming, and the
        # WAL's own listener stays suspended during replay).
        self._durability: Optional[DurabilityManager] = None
        if config.durability.enabled:
            self._durability = DurabilityManager(
                config.durability,
                shards=config.sharding.shards,
                telemetry=self._telemetry,
            )
            self._durability.attach(self)

    # Component access -----------------------------------------------------

    @property
    def bus(self) -> MessageBus:
        """The internal message bus."""
        return self._bus

    @property
    def telemetry(self) -> Telemetry:
        """The unified telemetry bundle (registry, tracer, slow-query log)."""
        return self._telemetry

    @property
    def content(self) -> ContentRepository:
        """The content repository / metadata DB."""
        return self._content

    @property
    def users(self) -> UserManager:
        """The user management component."""
        return self._users

    @property
    def editorial(self) -> EditorialDesk:
        """The editorial injection desk."""
        return self._editorial

    @property
    def durability(self) -> Optional[DurabilityManager]:
        """The write-ahead-log manager (None when durability is disabled)."""
        return self._durability

    @property
    def compound_scorer(self) -> CompoundScorer:
        """The compound relevance scorer (exposed for ablation benches)."""
        return self._compound

    @property
    def proactive_engine(self) -> ProactiveEngine:
        """The proactive recommendation engine."""
        return self._engine

    @property
    def config(self) -> ServerConfig:
        """The server configuration."""
        return self._config

    @property
    def route_planner(self) -> Optional[RoutePlanner]:
        """The road-network route planner (None without a city)."""
        return self._planner

    @property
    def streaming(self) -> Optional[ShardedStreamingEngine]:
        """The streaming mobility engine façade (None when disabled)."""
        return self._streaming

    @property
    def compactor(self) -> ShardedCompactor:
        """The sharded compaction scheduler."""
        return self._compactor

    @property
    def shard_count(self) -> int:
        """Number of shards all per-user state is partitioned into."""
        return self._config.sharding.shards

    @property
    def workers(self) -> Optional[ShardWorkerPool]:
        """The per-shard worker pool (None when parallelism is off).

        One single-thread executor per shard, so everything dispatched
        through it inherits the single-writer-per-shard invariant.  Built
        lazily on first use; a serial deployment never starts a thread.
        """
        if not self._config.sharding.parallel or self._config.sharding.shards == 1:
            return None
        if self._workers is None:
            self._workers = ShardWorkerPool(
                self._config.sharding.shards,
                tracer=self._telemetry.tracer if self._telemetry.enabled else None,
            )
            self._telemetry.observe_pool(self._workers)
        return self._workers

    # Classifier management --------------------------------------------------

    def train_classifier(self, texts: Sequence[str], labels: Sequence[str]) -> None:
        """Train the Bayesian classifier used by clip data management.

        The training corpus is server state, not configuration: it rides
        the WAL (so recovery replays the training) and the snapshot (so a
        restored process classifies identically).
        """
        classifier = NaiveBayesClassifier()
        classifier.fit(list(texts), list(labels))
        self._classifier = classifier
        self._classifier_corpus = {"texts": list(texts), "labels": list(labels)}
        if self._durability is not None:
            self._durability.record_server_op(
                "train_classifier", data=self._classifier_corpus
            )
        self._bus.publish("classifier.trained", {"documents": len(texts)})

    # Content ingestion --------------------------------------------------------

    def ingest_clip(self, clip: AudioClip, *, speech_text: Optional[str] = None) -> AudioClip:
        """Register a clip, running ASR + classification for speech content.

        ``speech_text`` is the ground-truth spoken content (available for
        news programmes and talk podcasts in the synthetic world).  When it
        is provided and a classifier is trained, the clip's category scores
        are replaced by the classifier's posterior over the noisy transcript,
        exactly as the paper's clip data management component does.
        """
        stored = clip
        if speech_text and self._classifier is not None and self._classifier.is_trained:
            transcription = self._transcriber.transcribe(speech_text, clip_id=clip.clip_id)
            posterior = self._classifier.predict_proba(transcription.text)
            top = sorted(posterior.items(), key=lambda pair: pair[1], reverse=True)[:3]
            stored = replace(
                clip,
                transcript=transcription.text,
                category_scores={name: score for name, score in top},
            )
            self._bus.publish(
                "clip.classified",
                {
                    "clip_id": clip.clip_id,
                    "predicted": top[0][0],
                    "confidence": top[0][1],
                    "asr_confidence": transcription.confidence,
                },
            )
        self._content.add_clip(stored)
        self._bus.publish("clip.ingested", {"clip_id": stored.clip_id, "kind": stored.kind.value})
        return stored

    def ingest_clips(
        self, clips: Sequence[AudioClip], *, speech_texts: Optional[Dict[str, str]] = None
    ) -> int:
        """Ingest many clips; returns how many were stored."""
        texts = speech_texts or {}
        count = 0
        for clip in clips:
            self.ingest_clip(clip, speech_text=texts.get(clip.clip_id))
            count += 1
        return count

    def refresh_text_model(self) -> None:
        """(Re)fit the TF-IDF model over the ingested transcripts."""
        self._content_scorer.fit_text_model()
        if self._durability is not None:
            self._durability.record_server_op("refresh_text_model")
        self._bus.publish("recommender.text_model_refreshed", {})

    # Users ------------------------------------------------------------------

    def register_user(self, profile: UserProfile) -> None:
        """Register a listener."""
        self._users.register(profile)
        self._bus.publish("user.registered", {"user_id": profile.user_id})

    # Mobility model -------------------------------------------------------------

    def rebuild_mobility_model(self, user_id: str) -> _UserMobilityModel:
        """Run the periodic tracking-data compaction for one user.

        Splits the raw GPS history into trips, extracts stay points with
        DBSCAN and clusters recurring routes.  The result is cached and used
        by :meth:`build_context`.
        """
        try:
            fixes = self._users.tracking.fixes_for(user_id)
        except NotFoundError:
            fixes = []
        if len(fixes) < 2:
            raise PipelineError(f"not enough tracking data for user {user_id!r}")
        trajectory = Trajectory.from_fixes(user_id, fixes)
        trips = split_into_trips(trajectory)
        stay_points = stay_points_from_trips(trips, eps_m=self._config.stay_point_eps_m) if trips else []
        clusters = cluster_trips(trips, stay_points) if stay_points else []
        model = _UserMobilityModel(stay_points=stay_points, clusters=clusters, trip_count=len(trips))
        self._mobility_models[user_id] = model
        self._bus.publish(
            "tracking.model_rebuilt",
            {
                "user_id": user_id,
                "trips": len(trips),
                "stay_points": len(stay_points),
                "clusters": len(clusters),
                "source": "batch",
            },
        )
        return model

    def model_freshness(self, user_id: str) -> tuple:
        """``(epoch, trips, fixes_added)`` — an O(1) mobility validator.

        Combines the streaming engine's ``model_freshness`` (repair epoch,
        folded trips; zeros when streaming is disabled) with the tracking
        store's monotonic fix counter, so the token moves on *every* fix —
        including fixes written directly to the store that bypass the
        engine.  The gateway keys recommendation ETags on it.
        """
        if self._streaming is not None:
            epoch, trips = self._streaming.model_freshness(user_id)
        else:
            epoch, trips = 0, 0
        return (epoch, trips, self._users.tracking.fixes_added(user_id))

    def mobility_model(self, user_id: str) -> _UserMobilityModel:
        """The user's mobility model: cached batch result, live streaming
        model, or a fresh batch rebuild — in that order of preference."""
        model = self._mobility_models.get(user_id)
        if model is None:
            model = self._streaming_model(user_id)
        if model is None:
            model = self.rebuild_mobility_model(user_id)
        return model

    @staticmethod
    def _model_from_snapshot(snapshot) -> _UserMobilityModel:
        return _UserMobilityModel(
            stay_points=list(snapshot.stay_points),
            clusters=list(snapshot.clusters),
            trip_count=snapshot.trip_count,
        )

    def _stream_is_complete_for(self, user_id: str) -> bool:
        """Whether the engine saw every fix the tracking store holds.

        Fixes written directly to the tracking store bypass the ingestion
        listeners; serving (or worse, caching-then-pruning against) a
        streaming model that never saw them would silently lose those
        drives, so such users always take the batch path.
        """
        return (
            self._streaming is not None
            and self._streaming.observed_fix_count(user_id)
            == self._users.tracking.fixes_added(user_id)
        )

    def _streaming_model(self, user_id: str) -> Optional[_UserMobilityModel]:
        """The incrementally maintained model, when it is mature enough."""
        if self._streaming is None or not self._stream_is_complete_for(user_id):
            return None
        freshness = self._streaming.model_freshness(user_id)
        cached = self._streaming_served.get(user_id)
        if cached is not None and cached[0] == freshness:
            return cached[1]
        snapshot = self._streaming.model_snapshot(user_id)
        if (
            snapshot is None
            or snapshot.trip_count < self._config.min_trips_for_model
            or not snapshot.stay_points
        ):
            return None
        model = self._model_from_snapshot(snapshot)
        self._streaming_served[user_id] = (freshness, model)
        return model

    def _refresh_mobility_model(self, user_id: str) -> bool:
        """Refresh one user's model for a compaction visit.

        Prefers the streaming engine — a repair over the compact trip list
        including the open tail, O(trips) instead of O(raw history) — and
        falls back to the batch miner when the engine did not see all of
        the user's fixes (direct tracking-store writes, streaming disabled).
        """
        model: Optional[_UserMobilityModel] = None
        if self._stream_is_complete_for(user_id):
            snapshot = self._streaming.model_snapshot(user_id, include_open_tail=True)
            if snapshot is not None and snapshot.stay_points:
                model = self._model_from_snapshot(snapshot)
        if model is None:
            try:
                self.rebuild_mobility_model(user_id)
            except PipelineError:
                return False
            return True
        self._mobility_models[user_id] = model
        self._bus.publish(
            "tracking.model_rebuilt",
            {
                "user_id": user_id,
                "trips": model.trip_count,
                "stay_points": len(model.stay_points),
                "clusters": len(model.clusters),
                "source": "streaming",
            },
        )
        return True

    def compact_tracking_data(
        self,
        *,
        keep_window_s: Optional[float] = None,
        shard: Optional[int] = None,
        budget: Optional[int] = None,
        parallel: bool = False,
    ) -> Dict[str, int]:
        """Run the periodic tracking-data compaction described in the paper.

        "The amount of GPS data arriving to the tracking data DB requires to
        periodically process and simplify them" — but only for users with new
        data: the sharded compactor skips users whose fix counter has not
        moved since their last visit, optionally restricts a pass to one
        ``shard`` and caps it at ``budget`` users.  Each visited user gets a
        refreshed mobility model and raw fixes older than ``keep_window_s``
        (default: the configured ``CompactionConfig.keep_window_s``, relative
        to their latest fix) pruned.  Returns the number of fixes removed
        per user.

        With ``parallel=True`` (and no ``shard``) the pass covers every
        shard at once, one worker per dirty shard on the server's pool —
        the full-pass form a deployment runs when it wants the whole
        population compacted in one tick instead of round-robin.
        """
        with self._telemetry.tracer.trace(
            "compaction.pass", shard=-1 if shard is None else shard, parallel=parallel
        ):
            report = self._compactor.run_pass(
                keep_window_s=keep_window_s,
                shard=shard,
                budget=budget,
                parallel=parallel,
                pool=self.workers,
            )
        if self._compaction_pass_seconds is not None:
            self._compaction_pass_seconds.labels().record(
                sum(report.shard_elapsed_s.values())
            )
            for pass_shard, elapsed_s in report.shard_elapsed_s.items():
                self._compaction_shard_seconds.labels(shard=str(pass_shard)).set(
                    elapsed_s
                )
            self._compaction_fixes_removed.labels().inc(report.fixes_removed)
        self._bus.publish(
            "tracking.compacted",
            {
                "users": len(report.visited_users),
                "fixes_removed": report.fixes_removed,
                "unchanged_users": report.unchanged_users,
                "deferred_users": report.deferred_users,
                "skipped_users": report.skipped_users,
                "shard": -1 if report.shard is None else report.shard,
            },
        )
        return report.removed

    @property
    def maintenance_shard(self) -> int:
        """The shard the *next* :meth:`maintenance_tick` will compact."""
        return self._maintenance_shard

    def maintenance_tick(
        self,
        *,
        keep_window_s: Optional[float] = None,
        budget: Optional[int] = None,
        parallel: bool = False,
    ) -> Dict[str, int]:
        """Run one periodic maintenance step: compact the next shard.

        Successive ticks rotate round-robin through the compactor's shards,
        so a deployment that calls this on a timer covers the whole user
        population every ``CompactionConfig.shards`` ticks while each tick
        only pays for one shard's dirty users — the ROADMAP's "one shard
        per worker tick" lever.  Returns the tick summary (shard compacted,
        users pruned, fixes removed).

        With ``parallel=True`` one tick compacts *all* shards at once on
        the server's worker pool (shard ``-1`` in the summary); the
        round-robin cursor does not advance — the tick already covered
        every shard.
        """
        if parallel:
            removed = self.compact_tracking_data(
                keep_window_s=keep_window_s, budget=budget, parallel=True
            )
            summary = {
                "shard": -1,
                "next_shard": self._maintenance_shard,
                "users_pruned": len(removed),
                "fixes_removed": sum(removed.values()),
            }
        else:
            shard = self._maintenance_shard
            self._maintenance_shard = (shard + 1) % self._config.compaction.shards
            removed = self.compact_tracking_data(
                keep_window_s=keep_window_s, shard=shard, budget=budget
            )
            summary = {
                "shard": shard,
                "next_shard": self._maintenance_shard,
                "users_pruned": len(removed),
                "fixes_removed": sum(removed.values()),
            }
        # WAL compaction piggybacks on the maintenance timer: once the log
        # exceeds its size budget the tick rewrites it as checkpoint + empty
        # tail.  The summary key only appears with durability attached, so
        # the durability-off dict shape is unchanged.
        if self._durability is not None:
            compacted = self._durability.maybe_compact(self)
            summary["wal_compacted"] = 1 if compacted else 0
        return summary

    # Snapshot / restore -----------------------------------------------------------

    def snapshot(self) -> Dict:
        """The warmed server as one versioned, JSON-serializable payload.

        Composes the content catalogue (metadata DB + schedules), all
        per-user state (profiles, learned preferences, feedbacks DB,
        tracking store), the streaming mobility engine's live state and
        the editorial queue — everything a restarted process needs to
        serve *identical* recommendations and keep mining the fix stream
        exactly where this one stopped.  Derived caches (batch mobility
        models, served streaming snapshots) are deliberately excluded:
        they rebuild on demand from the captured state.

        Telemetry (metrics registry, traces, slow-query log) is also
        excluded **by design**: it is process-lifetime observability, so a
        restored process starts with fresh counters exactly as a restarted
        one would — persisting monotonic counters across a restore would
        make rates and ratios lie about the new process.
        """
        payload = {
            "version": 1,
            "content": self._content.snapshot(),
            "users": self._users.snapshot(),
            "streaming": (
                self._streaming.snapshot_state() if self._streaming is not None else None
            ),
            "editorial": self._editorial.snapshot(),
            "maintenance_shard": self._maintenance_shard,
            "text_model_fitted": self._content_scorer.has_text_model,
            "classifier_corpus": self._classifier_corpus,
        }
        if self._durability is not None:
            # The WAL watermark this snapshot is consistent with: recovery
            # replays only committed frames *past* this LSN on top of the
            # restored state.  Durability-off snapshots keep the old shape.
            payload["wal_lsn"] = self._durability.last_lsn
        return payload

    def restore_snapshot(self, payload: Dict, *, replay_log: bool = False) -> None:
        """Reload a :meth:`snapshot` payload into this server.

        The server must be built with the same configuration (streaming
        parameters live in code, not in the payload).  Caches are cleared,
        so the first reads after a restore rebuild from restored state.

        With ``replay_log=True`` (requires durability attached and a
        snapshot taken with durability on, i.e. carrying ``wal_lsn``), the
        restore continues past the snapshot: every committed WAL frame
        with a higher LSN is replayed on top, recovering the server to the
        last durable commit — point-in-time recovery from snapshot + tail.
        """
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise PipelineError("unsupported server snapshot payload")
        if replay_log:
            if self._durability is None:
                raise PipelineError("replay_log requires durability to be enabled")
            if "wal_lsn" not in payload:
                raise PipelineError(
                    "replay_log requires a snapshot taken with durability on "
                    "(missing wal_lsn watermark)"
                )
        streaming_state = payload.get("streaming")
        if streaming_state is not None and self._streaming is None:
            raise PipelineError(
                "snapshot carries streaming state but streaming is disabled in this config"
            )
        # Restored writes must not be re-logged: the WAL already holds (or
        # the checkpoint supersedes) everything the snapshot carries.
        suspended = (
            self._durability.suspended_capture()
            if self._durability is not None
            else nullcontext()
        )
        with suspended:
            self._content.restore(payload["content"])
            self._users.restore(payload["users"])
            if self._streaming is not None:
                if streaming_state is None:
                    # Snapshot from a streaming-disabled server: start clean.
                    # The engine object itself is kept — it is wired into the
                    # user manager's fix-listener list by reference.
                    streaming_state = {
                        "version": 1,
                        "fixes_observed": 0,
                        "observed_per_user": {},
                        "sessionizer": {"users": {}},
                        "model": {"users": {}},
                    }
                self._streaming.restore_state(streaming_state)
            self._editorial.restore(payload.get("editorial", []))
            self._maintenance_shard = payload.get("maintenance_shard", 0)
            self._mobility_models = {}
            self._streaming_served = {}
            if payload.get("text_model_fitted"):
                self._content_scorer.fit_text_model()
            else:
                self._content_scorer.clear_text_model()
            corpus = payload.get("classifier_corpus")
            self._classifier_corpus = corpus
            if corpus is not None:
                # Refit rather than serialize the model: the corpus is the
                # durable state, the classifier a deterministic function of
                # it.  A snapshot without a corpus leaves the classifier as
                # constructed (an injected one is configuration, not state).
                classifier = NaiveBayesClassifier()
                classifier.fit(list(corpus["texts"]), list(corpus["labels"]))
                self._classifier = classifier
        replay_report = None
        if replay_log:
            replay_report = self._durability.replay_into(
                self, after_lsn=payload["wal_lsn"]
            )
        event = {
            "users": self._users.user_count(),
            "clips": self._content.clip_count(),
            "fixes": self._users.tracking.fix_count(),
        }
        if replay_report is not None:
            event["wal_frames_replayed"] = replay_report["frames_replayed"]
        self._bus.publish("server.restored", event)

    def snapshot_shard(self, shard: int) -> Dict:
        """One shard's slice of all per-user state — the migration unit.

        Composes the user manager's shard slice (profiles, preferences,
        feedback, tracking) with the owning streaming engine's live state.
        Shared state (content catalogue, editorial queue) is *not*
        included: it replicates to every node, only per-user state moves.
        """
        if not 0 <= shard < self.shard_count:
            raise PipelineError(
                f"shard must be in [0, {self.shard_count}), got {shard}"
            )
        return {
            "version": 1,
            "shard": shard,
            "users": self._users.snapshot_shard(shard),
            "streaming": (
                self._streaming.snapshot_shard(shard)
                if self._streaming is not None
                else None
            ),
        }

    def restore_shard(self, shard: int, payload: Dict) -> None:
        """Replace one shard's per-user state from a :meth:`snapshot_shard`.

        The receiving server must use the same shard count as the sender
        (every user in the payload must route to ``shard`` here).  Derived
        caches are cleared so the first reads after the move rebuild from
        the restored state.
        """
        if not isinstance(payload, dict) or payload.get("version") != 1:
            raise PipelineError("unsupported shard snapshot payload")
        if not 0 <= shard < self.shard_count:
            raise PipelineError(
                f"shard must be in [0, {self.shard_count}), got {shard}"
            )
        suspended = (
            self._durability.suspended_capture()
            if self._durability is not None
            else nullcontext()
        )
        with suspended:
            self._users.restore_shard(shard, payload["users"])
            streaming_state = payload.get("streaming")
            if self._streaming is not None:
                if streaming_state is None:
                    streaming_state = {
                        "version": 1,
                        "fixes_observed": 0,
                        "observed_per_user": {},
                        "sessionizer": {"users": {}},
                        "model": {"users": {}},
                    }
                self._streaming.restore_shard(shard, streaming_state)
            self._mobility_models = {}
            self._streaming_served = {}
        self._bus.publish(
            "server.shard_restored",
            {"shard": shard, "fixes": self._users.tracking.fix_count()},
        )

    # Context building -------------------------------------------------------------

    def build_context(
        self,
        user_id: str,
        *,
        now_s: float,
        drive_window_s: float = 1800.0,
    ) -> ListenerContext:
        """Assemble the listener context from the stored tracking data.

        Uses the trailing ``drive_window_s`` of GPS fixes as the partial
        drive, predicts destination and remaining travel time, plans the
        residual route on the road network and derives its distraction zones.
        """
        self._users.profile(user_id)
        tracking = self._users.tracking
        try:
            fixes = tracking.fixes_for(user_id, start_s=now_s - drive_window_s, end_s=now_s + 1.0)
        except NotFoundError:
            fixes = []
        if len(fixes) < 2:
            return ListenerContext(user_id=user_id, now_s=now_s, is_driving=False)

        partial = Trajectory.from_fixes(user_id, fixes)
        engine = SpatialQueryEngine(tracking)
        speed = engine.current_speed_mps(user_id)
        is_driving = speed > 2.0 and partial.length_m > 200.0
        position = partial.destination

        destination_prediction = None
        travel_time = None
        route_geometry = None
        zones = []
        complexity = 0.0
        if is_driving:
            try:
                model = self.mobility_model(user_id)
            except PipelineError:
                model = None
            if model is not None and model.stay_points:
                try:
                    predictor = DestinationPredictor(model.stay_points, model.clusters)
                    destination_prediction = predictor.most_likely(partial)
                except Exception:  # noqa: BLE001 - prediction failure just means "no proactivity"
                    destination_prediction = None
            if destination_prediction is not None:
                cluster = None
                if model is not None:
                    origin_sp = nearest_stay_point(model.stay_points, partial.origin, max_distance_m=800.0)
                    if origin_sp is not None:
                        cluster = find_cluster(
                            model.clusters,
                            origin_sp.stay_point_id,
                            destination_prediction.stay_point_id,
                            index=model.cluster_index,
                        )
                fraction = None
                if cluster is not None and cluster.median_length_m > 0:
                    fraction = min(1.0, partial.length_m / cluster.median_length_m)
                try:
                    travel_time = self._travel_time.estimate(
                        position,
                        destination_prediction.center,
                        now_s=now_s,
                        cluster=cluster,
                        fraction_completed=fraction,
                    )
                except Exception:  # noqa: BLE001
                    travel_time = None
                if self._planner is not None:
                    try:
                        route = self._planner.route_between_points(
                            position, destination_prediction.center
                        )
                        route_geometry = route.geometry
                        zones = distraction_zones_along(
                            self._city.network, route, departure_s=now_s
                        )
                        complexity = route_complexity(self._city.network, route)
                    except NotFoundError:
                        route_geometry = None

        context = ListenerContext(
            user_id=user_id,
            now_s=now_s,
            position=position,
            speed_mps=speed,
            is_driving=is_driving,
            route=route_geometry,
            destination=destination_prediction,
            travel_time=travel_time,
            distraction_zones=zones,
            route_complexity=complexity,
        )
        self._bus.publish(
            "context.built",
            {
                "user_id": user_id,
                "is_driving": is_driving,
                "destination_confidence": context.destination_confidence,
                "available_s": context.available_time_s or 0.0,
            },
        )
        return context

    # Recommendation -------------------------------------------------------------

    def recommend(
        self,
        user_id: str,
        *,
        now_s: float,
        drive_elapsed_s: Optional[float] = None,
        context: Optional[ListenerContext] = None,
    ) -> ProactiveDecision:
        """Run the full proactive pipeline for one listener."""
        listener_context = context if context is not None else self.build_context(user_id, now_s=now_s)
        elapsed = drive_elapsed_s
        if elapsed is None:
            elapsed = self._config.proactive.min_drive_elapsed_s if listener_context.is_driving else 0.0
        distraction = (
            DistractionModel(listener_context.distraction_zones)
            if listener_context.distraction_zones
            else None
        )
        boosts = self._editorial.boosts_for(user_id, now_s=now_s)
        decision = self._engine.evaluate(
            listener_context,
            drive_elapsed_s=elapsed,
            distraction=distraction,
            editorial_boosts=boosts,
        )
        self._bus.publish(
            "recommendation.decision",
            {
                "user_id": user_id,
                "recommended": decision.should_recommend,
                "reason": decision.reason,
                "items": len(decision.recommended_clip_ids),
            },
        )
        return decision

"""In-process publish/subscribe message bus (RabbitMQ substitute).

The production system wires its components with RabbitMQ; the reproduction
uses a synchronous, deterministic bus with the same topology concepts:
named topics, multiple subscribers per topic, and a dead-letter list for
messages that no subscriber handled or whose handler raised.

Dead letters come in three flavours, recorded per event (see
:class:`DeadLetterRecord`) and surfaced through the metrics registry as
``bus_dead_letters_total{topic,reason}`` when :meth:`MessageBus.attach_metrics`
is called:

* ``no_subscriber`` — the topic had no handlers at all;
* ``handler_error`` — one handler raised (others may still have delivered);
* ``all_handlers_failed`` — every handler raised, so the message itself is
  dead-lettered.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, List, Optional

from repro.errors import PipelineError
from repro.util.ids import new_id

Handler = Callable[["Message"], None]


@dataclass(frozen=True)
class Message:
    """One message published on the bus."""

    message_id: str
    topic: str
    body: Dict[str, Any] = field(default_factory=dict)


@dataclass(frozen=True)
class DeadLetterRecord:
    """One dead-letter event, with enough context to debug the failure.

    ``reason`` is one of ``"no_subscriber"``, ``"handler_error"`` or
    ``"all_handlers_failed"``; ``handler`` names the failing callable for
    the handler-scoped reasons and is ``None`` for ``no_subscriber``.
    """

    message: Message
    topic: str
    reason: str
    handler: Optional[str] = None
    error: Optional[str] = None


class MessageBus:
    """A synchronous topic-based publish/subscribe bus."""

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Handler]] = defaultdict(list)
        self._published: List[Message] = []
        self._dead_letters: List[Message] = []
        self._dead_letter_records: List[DeadLetterRecord] = []
        self._delivery_count = 0
        self._dead_letter_counter = None  # set by attach_metrics()
        # Resolved (topic, reason) counter series, so the publish hot path
        # (a no-subscriber topic dead-letters every message) pays one dict
        # lookup instead of a labels() validation per event.
        self._dead_letter_series: Dict[Any, Any] = {}

    def attach_metrics(self, registry: Any) -> None:
        """Surface dead letters as ``bus_dead_letters_total{topic,reason}``.

        ``registry`` is a :class:`~repro.obs.metrics.MetricsRegistry` (or
        the null variant — attaching a disabled registry is a no-op
        counter).  Records observed before attachment are replayed so the
        counter agrees with :meth:`dead_letter_records` regardless of
        wiring order.
        """
        self._dead_letter_counter = registry.counter(
            "bus_dead_letters_total",
            help="Dead-lettered bus deliveries by topic and reason.",
            labels=("topic", "reason"),
        )
        self._dead_letter_series = {}
        for record in self._dead_letter_records:
            self._count_dead_letter(record.topic, record.reason)

    def _count_dead_letter(self, topic: str, reason: str) -> None:
        series = self._dead_letter_series.get((topic, reason))
        if series is None:
            series = self._dead_letter_counter.labels(topic=topic, reason=reason)
            self._dead_letter_series[(topic, reason)] = series
        series.inc()

    def _record_dead_letter(
        self,
        message: Message,
        reason: str,
        *,
        handler: Optional[str] = None,
        error: Optional[str] = None,
    ) -> None:
        self._dead_letter_records.append(
            DeadLetterRecord(
                message=message,
                topic=message.topic,
                reason=reason,
                handler=handler,
                error=error,
            )
        )
        if self._dead_letter_counter is not None:
            self._count_dead_letter(message.topic, reason)

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register a handler for a topic."""
        if not topic:
            raise PipelineError("topic must be a non-empty string")
        self._subscribers[topic].append(handler)

    def publish(self, topic: str, body: Dict[str, Any]) -> Message:
        """Publish a message, delivering it synchronously to all subscribers."""
        if not topic:
            raise PipelineError("topic must be a non-empty string")
        message = Message(message_id=new_id("msg"), topic=topic, body=dict(body))
        self._published.append(message)
        handlers = self._subscribers.get(topic, [])
        if not handlers:
            self._dead_letters.append(message)
            self._record_dead_letter(message, "no_subscriber")
            return message
        delivered = False
        for handler in handlers:
            try:
                handler(message)
                delivered = True
                self._delivery_count += 1
            except Exception as exc:  # noqa: BLE001 - a failing consumer must not break producers
                self._record_dead_letter(
                    message,
                    "handler_error",
                    handler=getattr(handler, "__qualname__", repr(handler)),
                    error=repr(exc),
                )
                continue
        if not delivered:
            self._dead_letters.append(message)
            self._record_dead_letter(message, "all_handlers_failed")
        return message

    def published_messages(self, topic: str = None) -> List[Message]:
        """All published messages (optionally filtered by topic)."""
        if topic is None:
            return list(self._published)
        return [message for message in self._published if message.topic == topic]

    def dead_letters(self) -> List[Message]:
        """Messages that were not successfully handled by any subscriber."""
        return list(self._dead_letters)

    def dead_letter_records(self, topic: str = None) -> List[DeadLetterRecord]:
        """Per-event dead-letter records (optionally filtered by topic).

        Unlike :meth:`dead_letters` — which lists *messages* no subscriber
        handled — this also records per-handler failures on messages that
        another handler did deliver, each with the failing handler's name
        and the raised exception.
        """
        if topic is None:
            return list(self._dead_letter_records)
        return [record for record in self._dead_letter_records if record.topic == topic]

    def delivery_count(self) -> int:
        """Number of successful handler deliveries."""
        return self._delivery_count

    def topics(self) -> List[str]:
        """Topics that have at least one subscriber."""
        return sorted(self._subscribers.keys())

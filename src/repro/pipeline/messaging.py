"""In-process publish/subscribe message bus (RabbitMQ substitute).

The production system wires its components with RabbitMQ; the reproduction
uses a synchronous, deterministic bus with the same topology concepts:
named topics, multiple subscribers per topic, and a dead-letter list for
messages that no subscriber handled or whose handler raised.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, DefaultDict, Dict, List

from repro.errors import PipelineError
from repro.util.ids import new_id

Handler = Callable[["Message"], None]


@dataclass(frozen=True)
class Message:
    """One message published on the bus."""

    message_id: str
    topic: str
    body: Dict[str, Any] = field(default_factory=dict)


class MessageBus:
    """A synchronous topic-based publish/subscribe bus."""

    def __init__(self) -> None:
        self._subscribers: DefaultDict[str, List[Handler]] = defaultdict(list)
        self._published: List[Message] = []
        self._dead_letters: List[Message] = []
        self._delivery_count = 0

    def subscribe(self, topic: str, handler: Handler) -> None:
        """Register a handler for a topic."""
        if not topic:
            raise PipelineError("topic must be a non-empty string")
        self._subscribers[topic].append(handler)

    def publish(self, topic: str, body: Dict[str, Any]) -> Message:
        """Publish a message, delivering it synchronously to all subscribers."""
        if not topic:
            raise PipelineError("topic must be a non-empty string")
        message = Message(message_id=new_id("msg"), topic=topic, body=dict(body))
        self._published.append(message)
        handlers = self._subscribers.get(topic, [])
        if not handlers:
            self._dead_letters.append(message)
            return message
        delivered = False
        for handler in handlers:
            try:
                handler(message)
                delivered = True
                self._delivery_count += 1
            except Exception:  # noqa: BLE001 - a failing consumer must not break producers
                continue
        if not delivered:
            self._dead_letters.append(message)
        return message

    def published_messages(self, topic: str = None) -> List[Message]:
        """All published messages (optionally filtered by topic)."""
        if topic is None:
            return list(self._published)
        return [message for message in self._published if message.topic == topic]

    def dead_letters(self) -> List[Message]:
        """Messages that were not successfully handled by any subscriber."""
        return list(self._dead_letters)

    def delivery_count(self) -> int:
        """Number of successful handler deliveries."""
        return self._delivery_count

    def topics(self) -> List[str]:
        """Topics that have at least one subscriber."""
        return sorted(self._subscribers.keys())

"""Server-side pipeline: message bus, the PPHCR server, and the public API.

Mirrors Figure 3 of the paper: live streams and podcasts are ingested into
the content repository, speech content passes through ASR and Bayesian
classification, user data (profiles, feedback, tracking) is managed, and the
recommender produces context-aware plans that the public API serves to the
clients.  RabbitMQ is replaced by an in-process publish/subscribe bus, and
the "Public Rest API Server" by the :mod:`repro.pipeline.gateway` subsystem
(declarative routes + middleware), with :class:`PublicApi` kept as a v1
compatibility façade.
"""

from repro.pipeline.messaging import Message, MessageBus
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.pipeline.gateway import (
    ApiKeyRegistry,
    ApiRequest,
    ApiResponse,
    Gateway,
    GatewayConfig,
    RateLimitConfig,
    Route,
)
from repro.pipeline.api import PublicApi

__all__ = [
    "ApiKeyRegistry",
    "ApiRequest",
    "ApiResponse",
    "Gateway",
    "GatewayConfig",
    "Message",
    "MessageBus",
    "PphcrServer",
    "PublicApi",
    "RateLimitConfig",
    "Route",
    "ServerConfig",
]

"""Server-side pipeline: message bus, the PPHCR server, and the public API.

Mirrors Figure 3 of the paper: live streams and podcasts are ingested into
the content repository, speech content passes through ASR and Bayesian
classification, user data (profiles, feedback, tracking) is managed, and the
recommender produces context-aware plans that the public API serves to the
clients.  RabbitMQ is replaced by an in-process publish/subscribe bus.
"""

from repro.pipeline.messaging import Message, MessageBus
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.pipeline.api import PublicApi, ApiResponse

__all__ = [
    "ApiResponse",
    "Message",
    "MessageBus",
    "PphcrServer",
    "PublicApi",
    "ServerConfig",
]

"""Request/response primitives of the public API gateway.

The gateway models the paper's "Public Rest API Server" wire format without
an actual HTTP stack: an :class:`ApiRequest` carries method, path, query
parameters, headers and a JSON-like body; an :class:`ApiResponse` carries a
status code, a JSON-like body and response headers (used for ``ETag``,
``Retry-After`` and friends).  Both are plain immutable dataclasses so
requests can be replayed and responses asserted in tests and benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

from repro.errors import ValidationError


@dataclass(frozen=True)
class ApiResponse:
    """A REST-style response: status code, JSON-like body, headers."""

    status: int
    body: Dict[str, Any] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        """Whether the request succeeded (2xx)."""
        return 200 <= self.status < 300

    def header(self, name: str) -> Optional[str]:
        """A response header by case-insensitive name."""
        return self.headers.get(name.lower())


@dataclass(frozen=True)
class ApiRequest:
    """One request entering the gateway.

    ``method`` is normalized to upper case and header names to lower case,
    so lookups never depend on the caller's casing.  ``body`` is the parsed
    JSON payload (a plain dictionary) and ``query`` the string-valued query
    parameters.
    """

    method: str
    path: str
    body: Dict[str, Any] = field(default_factory=dict)
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.method or not isinstance(self.method, str):
            raise ValidationError("method must be a non-empty string")
        if not isinstance(self.path, str) or not self.path.startswith("/"):
            raise ValidationError(f"path must start with '/', got {self.path!r}")
        object.__setattr__(self, "method", self.method.upper())
        object.__setattr__(
            self, "headers", {name.lower(): value for name, value in self.headers.items()}
        )

    def header(self, name: str) -> Optional[str]:
        """A request header by case-insensitive name."""
        return self.headers.get(name.lower())

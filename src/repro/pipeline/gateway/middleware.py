"""The gateway's middleware chain: auth, rate limiting, metrics, errors.

Middleware are callables ``(ctx, next) -> ApiResponse`` composed once at
gateway construction; each request then flows

    metrics -> exception mapper -> auth -> rate limit -> dispatch

so *every* route — current and future — is metered, throttled and
error-mapped identically.  The exception mapper is the single place the
:mod:`repro.errors` taxonomy turns into statuses:

=============================  ======
:class:`ValidationError`       400
:class:`QueryError`            400
:class:`GeometryError`         400
:class:`NotFoundError`         404
:class:`DuplicateError`        409
:class:`DeliveryError`         409
:class:`TrajectoryError`       422
:class:`PredictionError`       422
:class:`SchedulingError`       422
:class:`ClassificationError`   503
:class:`SchemaError`           500
:class:`ConfigurationError`    500
:class:`PipelineError`         500
=============================  ======

The ``error-mapping-coverage`` rule in :mod:`repro.analysis` holds this
table complete: a new :class:`ReproError` subclass that is not named in
:func:`map_error` fails CI rather than silently surfacing as an
undifferentiated 500.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple, TYPE_CHECKING

from repro.errors import (
    ClassificationError,
    ConfigurationError,
    DeliveryError,
    DuplicateError,
    GeometryError,
    NotFoundError,
    PipelineError,
    PredictionError,
    QueryError,
    ReproError,
    SchedulingError,
    SchemaError,
    TrajectoryError,
    ValidationError,
)
from repro.pipeline.gateway.http import ApiResponse
from repro.pipeline.gateway.routing import RequestContext
from repro.util.ids import new_id

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.messaging import MessageBus

Next = Callable[[RequestContext], ApiResponse]


def map_error(exc: ReproError) -> ApiResponse:
    """The response one library error maps to (the taxonomy table above)."""
    taxonomy = (
        # The caller sent something malformed.
        (ValidationError, 400),
        (QueryError, 400),
        (GeometryError, 400),
        # The referenced entity is absent, or already present.
        (NotFoundError, 404),
        (DuplicateError, 409),
        (DeliveryError, 409),
        # Well-formed request the domain logic cannot satisfy.
        (TrajectoryError, 422),
        (PredictionError, 422),
        (SchedulingError, 422),
        # The classifier is not ready yet — retryable, unlike the genuine
        # server-side faults below.
        (ClassificationError, 503),
        (SchemaError, 500),
        (ConfigurationError, 500),
        (PipelineError, 500),
    )
    status = 500
    for error_type, error_status in taxonomy:
        if isinstance(exc, error_type):
            status = error_status
            break
    return ApiResponse(status=status, body={"error": str(exc)})


class ExceptionMapperMiddleware:
    """Maps the library's exception taxonomy onto HTTP statuses.

    This is the structural fix for the seed API's per-method ``try``/
    ``except`` blocks (which, among other bugs, mapped feedback validation
    failures to 404): handlers just raise, and the mapping lives here once
    (:func:`map_error`).  Anything outside :class:`ReproError` propagates —
    programming errors must not be masked as HTTP statuses.
    """

    def __call__(self, ctx: RequestContext, nxt: Next) -> ApiResponse:
        try:
            return nxt(ctx)
        except ReproError as exc:
            return map_error(exc)


class ApiKeyRegistry:
    """Issued bearer tokens and the principals behind them."""

    def __init__(self) -> None:
        self._principals: Dict[str, str] = {}

    def issue(self, principal: str) -> str:
        """Issue a new token for ``principal`` and return it."""
        if not principal:
            raise ValidationError("principal must be a non-empty string")
        token = new_id("apikey")
        self._principals[token] = principal
        return token

    def revoke(self, token: str) -> None:
        """Invalidate a token (unknown tokens are a no-op)."""
        self._principals.pop(token, None)

    def principal_for(self, token: str) -> Optional[str]:
        """The principal a token authenticates, or None."""
        return self._principals.get(token)


class AuthMiddleware:
    """Resolves the ``Authorization`` header into ``ctx.principal``.

    With ``required=True`` a missing or unknown token is rejected with 401
    before any handler (or rate-limit bucket) is touched; with
    ``required=False`` a valid token still sets the principal so rate
    limiting keys on it, but anonymous requests pass through.
    """

    def __init__(self, registry: ApiKeyRegistry, *, required: bool = False) -> None:
        self._registry = registry
        self._required = required

    def __call__(self, ctx: RequestContext, nxt: Next) -> ApiResponse:
        header = ctx.request.header("authorization")
        token = None
        if header:
            token = header[7:] if header.lower().startswith("bearer ") else header
        if token is not None:
            principal = self._registry.principal_for(token)
            if principal is None:
                return ApiResponse(
                    status=401,
                    body={"error": "invalid auth token"},
                    headers={"www-authenticate": "Bearer"},
                )
            ctx.principal = principal
        elif self._required:
            return ApiResponse(
                status=401,
                body={"error": "missing auth token"},
                headers={"www-authenticate": "Bearer"},
            )
        return nxt(ctx)


@dataclass(frozen=True)
class RateLimitConfig:
    """Per-caller token-bucket parameters.

    ``capacity`` is the burst size and ``refill_per_s`` the sustained
    request rate; both are generous by default so the limiter only bites
    under genuinely abusive traffic.
    """

    capacity: float = 240.0
    refill_per_s: float = 120.0

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise PipelineError("capacity must be >= 1")
        if self.refill_per_s <= 0:
            raise PipelineError("refill_per_s must be > 0")


class _TokenBucket:
    __slots__ = ("tokens", "updated_s")

    def __init__(self, capacity: float, now_s: float) -> None:
        self.tokens = capacity
        self.updated_s = now_s


class RateLimitMiddleware:
    """Per-user token-bucket rate limiting.

    Buckets key on the authenticated principal when there is one, else on
    the user the request is about (path parameter or body field), else on a
    shared anonymous bucket — so one abusive client cannot starve the rest
    even before auth is enabled.  Rejections are 429 with a ``Retry-After``
    hint derived from the refill rate.
    """

    def __init__(
        self,
        config: RateLimitConfig,
        *,
        clock: Optional[Callable[[], float]] = None,
    ) -> None:
        self._config = config
        self._clock = clock if clock is not None else time.monotonic
        self._buckets: Dict[str, _TokenBucket] = {}
        self._rejected = 0

    @property
    def rejected_count(self) -> int:
        """Requests rejected with 429 so far."""
        return self._rejected

    @staticmethod
    def _key(ctx: RequestContext) -> str:
        if ctx.principal is not None:
            return ctx.principal
        user_id = ctx.path_params.get("user_id")
        if user_id is None:
            body_user = ctx.request.body.get("user_id")
            user_id = body_user if isinstance(body_user, str) else None
        return user_id if user_id is not None else "<anonymous>"

    def __call__(self, ctx: RequestContext, nxt: Next) -> ApiResponse:
        now_s = self._clock()
        bucket = self._buckets.get(self._key(ctx))
        if bucket is None:
            bucket = _TokenBucket(self._config.capacity, now_s)
            self._buckets[self._key(ctx)] = bucket
        else:
            elapsed = now_s - bucket.updated_s
            if elapsed > 0:
                bucket.tokens = min(
                    self._config.capacity,
                    bucket.tokens + elapsed * self._config.refill_per_s,
                )
            bucket.updated_s = now_s
        if bucket.tokens < 1.0:
            self._rejected += 1
            retry_after_s = (1.0 - bucket.tokens) / self._config.refill_per_s
            return ApiResponse(
                status=429,
                body={"error": "rate limit exceeded"},
                headers={"retry-after": str(max(1, math.ceil(retry_after_s)))},
            )
        bucket.tokens -= 1.0
        return nxt(ctx)


class MetricsMiddleware:
    """Publishes one ``api.request`` message per request and keeps counters.

    The bus message carries route name, method, status and latency so the
    dashboard (and tests) can follow API traffic the same way they follow
    ingest; the in-process counters power :meth:`snapshot` without scanning
    the bus history.
    """

    def __init__(
        self,
        bus: Optional["MessageBus"] = None,
        *,
        topic: str = "api.request",
        registry=None,
    ) -> None:
        self._bus = bus
        self._topic = topic
        self._by_route: Dict[str, int] = {}
        self._by_status: Dict[int, int] = {}
        self._request_count = 0
        self._elapsed_total_s = 0.0
        # Registry-backed series (per-route latency histogram and
        # status-class counter); None keeps the middleware registry-free.
        # Resolved series are cached per route / (route, class) so the hot
        # path pays one dict lookup, not a labels() validation, per request.
        self._latency = None
        self._statuses = None
        self._latency_series: Dict[str, object] = {}
        self._status_series: Dict[Tuple[str, str], object] = {}
        if registry is not None and getattr(registry, "enabled", True):
            self._latency = registry.histogram(
                "api_request_seconds",
                "Gateway request latency by route",
                labels=("route",),
            )
            self._statuses = registry.counter(
                "api_requests_total",
                "Gateway requests by route and status class",
                labels=("route", "status_class"),
            )

    def __call__(self, ctx: RequestContext, nxt: Next) -> ApiResponse:
        start = time.perf_counter()
        response = nxt(ctx)
        elapsed_s = time.perf_counter() - start
        route_name = ctx.route.name if ctx.route is not None else "<unmatched>"
        self._request_count += 1
        self._elapsed_total_s += elapsed_s
        self._by_route[route_name] = self._by_route.get(route_name, 0) + 1
        self._by_status[response.status] = self._by_status.get(response.status, 0) + 1
        if self._latency is not None:
            latency = self._latency_series.get(route_name)
            if latency is None:
                latency = self._latency.labels(route=route_name)
                self._latency_series[route_name] = latency
            latency.record(elapsed_s)
            status_class = f"{response.status // 100}xx"
            status_key = (route_name, status_class)
            statuses = self._status_series.get(status_key)
            if statuses is None:
                statuses = self._statuses.labels(
                    route=route_name, status_class=status_class
                )
                self._status_series[status_key] = statuses
            statuses.inc()
        if self._bus is not None:
            # repro: allow[wal-channel-audit] constructor-injected topic; the default "api.request" is declared WAL-suppressed
            self._bus.publish(
                self._topic,
                {
                    "route": route_name,
                    "method": ctx.request.method,
                    "status": response.status,
                    "elapsed_ms": round(elapsed_s * 1000.0, 3),
                },
            )
        return response

    def snapshot(self) -> Dict[str, object]:
        """Counters since the gateway started."""
        return {
            "requests": self._request_count,
            "by_route": dict(self._by_route),
            "by_status": dict(self._by_status),
            "elapsed_total_ms": round(self._elapsed_total_s * 1000.0, 3),
        }


class TracingMiddleware:
    """Opens one trace per request, named after the matched route.

    Sits outermost in the chain so the trace covers the entire middleware
    stack and handler; the context propagates by thread (and across the
    shard worker pool via capture/adopt — see
    :meth:`ShardWorkerPool.submit
    <repro.storage.sharding.ShardWorkerPool.submit>`), so spans opened by
    storage and workers attach to the request's trace.  The response
    status lands as a trace tag after dispatch.
    """

    def __init__(self, tracer) -> None:
        self._tracer = tracer

    def __call__(self, ctx: RequestContext, nxt: Next) -> ApiResponse:
        route_path = ctx.route.path if ctx.route is not None else ctx.request.path
        with self._tracer.trace(
            f"{ctx.request.method} {route_path}",
            method=ctx.request.method,
            path=ctx.request.path,
        ) as trace:
            response = nxt(ctx)
            trace.set_tag("status", response.status)
            return response

"""The public API gateway subsystem.

A declarative, versioned front door to :class:`~repro.pipeline.server.PphcrServer`:
route table + middleware chain + batch ingest + paginated/cacheable reads.
See :mod:`repro.pipeline.gateway.gateway` for the subsystem overview and
``docs/ARCHITECTURE.md`` ("Gateway flow") for where it sits at runtime.
"""

from repro.pipeline.gateway.http import ApiRequest, ApiResponse
from repro.pipeline.gateway.gateway import Gateway, GatewayConfig
from repro.pipeline.gateway.middleware import (
    ApiKeyRegistry,
    AuthMiddleware,
    ExceptionMapperMiddleware,
    MetricsMiddleware,
    RateLimitConfig,
    RateLimitMiddleware,
    map_error,
)
from repro.pipeline.gateway.routing import RequestContext, Route, RouteTable
from repro.pipeline.gateway.schema import Field, Number, RequestSchema

__all__ = [
    "ApiKeyRegistry",
    "ApiRequest",
    "ApiResponse",
    "AuthMiddleware",
    "ExceptionMapperMiddleware",
    "Field",
    "Gateway",
    "GatewayConfig",
    "MetricsMiddleware",
    "Number",
    "RateLimitConfig",
    "RateLimitMiddleware",
    "RequestContext",
    "RequestSchema",
    "Route",
    "RouteTable",
    "map_error",
]

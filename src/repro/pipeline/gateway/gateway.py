"""The public API gateway: routed, versioned front door to the server.

The seed modelled the paper's "Public Rest API Server" as a flat bag of
hand-written methods with ad-hoc error mapping.  The gateway replaces that
with a declarative subsystem:

* a **route table** — every ``/v1`` endpoint is one :class:`Route` entry
  (method, path template, handler, request schema) registered in
  :meth:`Gateway._register_routes`;
* a **middleware chain** — auth token check, per-user token-bucket rate
  limiting, request metrics on the :class:`~repro.pipeline.messaging.MessageBus`
  and a single exception→status mapper (see
  :mod:`repro.pipeline.gateway.middleware`);
* **batch ingest** — ``POST /v1/tracking/batch`` carries a buffered drive's
  worth of fixes into :meth:`UserManager.ingest_fixes(skip_stale=True)
  <repro.users.management.UserManager.ingest_fixes>` in one request (an
  envelope ``user_id`` keeps the legacy single-user form; without one,
  per-item ``user_id`` fields let one request carry many users' drives,
  grouped by shard and ingested in parallel on the server's worker pool),
  and ``POST /v1/feedback/batch`` records many feedback events with
  per-item error reporting;
* **paginated + cacheable reads** — keyset-cursor pagination on the
  service and clip listings *and* the per-user feedback/tracking history
  reads (``GET /v1/users/{user}/feedback`` / ``.../tracking``, thin
  delegations to the storage engine's
  :class:`~repro.storage.cursor.Page` cursors), plus ``ETag``/304
  revalidation on recommendations keyed by the streaming-model epoch
  (see :meth:`PphcrServer.model_freshness
  <repro.pipeline.server.PphcrServer.model_freshness>`) and on profile
  and clip reads keyed by storage-table ``version`` counters, so a
  client that polls while nothing changed never pays for a recommender
  tick or a body rebuild.

The legacy :class:`~repro.pipeline.api.PublicApi` survives as a thin v1
compatibility façade over :meth:`Gateway.handle`.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple, TYPE_CHECKING

from repro.errors import NotFoundError, ReproError, ValidationError
from repro.geo import GeoPoint
from repro.storage import Page as StoragePage
from repro.pipeline.gateway.http import ApiRequest, ApiResponse
from repro.pipeline.gateway.middleware import (
    ApiKeyRegistry,
    AuthMiddleware,
    ExceptionMapperMiddleware,
    MetricsMiddleware,
    RateLimitConfig,
    RateLimitMiddleware,
    TracingMiddleware,
    map_error,
)
from repro.pipeline.gateway.routing import RequestContext, Route, RouteTable
from repro.pipeline.gateway.schema import Field, Number, RequestSchema
from repro.spatialdb import GpsFix
from repro.users.feedback import FeedbackKind
from repro.users.profile import UserProfile
from repro.util.validation import require_finite, require_in_range, require_positive

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pipeline.server import PphcrServer


def _finite(name: str) -> Callable[[float], float]:
    return lambda value: require_finite(value, name)


def _in_range(name: str, low: float, high: float) -> Callable[[float], float]:
    return lambda value: require_in_range(value, low, high, name)


def _non_negative(name: str) -> Callable[[float], float]:
    return lambda value: require_positive(value, name, strict=False)


def _positive(name: str) -> Callable[[float], float]:
    return lambda value: require_positive(value, name)


def _non_empty_list(name: str) -> Callable[[list], list]:
    def check(value: list) -> list:
        if not value:
            raise ValidationError(f"{name} must not be empty")
        return value

    return check


#: One GPS fix as it appears on the wire (shared by the single and batch
#: tracking endpoints; the batch envelope carries the user once).
FIX_FIELDS = (
    Field("lat", Number, validator=_in_range("lat", -90.0, 90.0)),
    Field("lon", Number, validator=_in_range("lon", -180.0, 180.0)),
    Field("timestamp_s", Number, validator=_finite("timestamp_s")),
    Field("speed_mps", Number, required=False, default=0.0, validator=_non_negative("speed_mps")),
    Field("accuracy_m", Number, required=False, default=10.0, validator=_positive("accuracy_m")),
)

FIX_SCHEMA = RequestSchema(fields=FIX_FIELDS)

#: One feedback event as it appears on the wire.
FEEDBACK_FIELDS = (
    Field("user_id", str),
    Field("content_id", str),
    Field("kind", str),
    Field("timestamp_s", Number, validator=_finite("timestamp_s")),
    Field("listened_s", Number, required=False, default=0.0, validator=_non_negative("listened_s")),
    Field("is_clip", bool, required=False, default=True),
)

FEEDBACK_SCHEMA = RequestSchema(fields=FEEDBACK_FIELDS)


@dataclass(frozen=True)
class GatewayConfig:
    """Tunable parameters of the gateway.

    ``rate_limit`` is applied per caller (principal or subject user);
    ``recommendation_ttl_s`` is the width of the time bucket folded into
    recommendation ETags — within one bucket, an unchanged mobility model
    revalidates to 304.  ``clock`` (monotonic seconds) is injectable so
    rate-limit tests are deterministic.
    """

    require_auth: bool = False
    rate_limit: RateLimitConfig = RateLimitConfig()
    default_page_limit: int = 50
    max_page_limit: int = 200
    recommendation_ttl_s: float = 60.0
    metrics_topic: str = "api.request"
    clock: Optional[Callable[[], float]] = None


class Gateway:
    """Dispatches :class:`ApiRequest` objects through middleware to routes."""

    def __init__(
        self,
        server: "PphcrServer",
        config: GatewayConfig = GatewayConfig(),
        *,
        auth: Optional[ApiKeyRegistry] = None,
    ) -> None:
        self._server = server
        self._config = config
        self._auth = auth if auth is not None else ApiKeyRegistry()
        self._routes = RouteTable()
        self._register_routes()
        self._telemetry = server.telemetry
        self._metrics = MetricsMiddleware(
            server.bus,
            topic=config.metrics_topic,
            registry=self._telemetry.metrics if self._telemetry.enabled else None,
        )
        self._rate_limiter = RateLimitMiddleware(config.rate_limit, clock=config.clock)
        middlewares = [
            self._metrics,
            ExceptionMapperMiddleware(),
            AuthMiddleware(self._auth, required=config.require_auth),
            self._rate_limiter,
        ]
        if self._telemetry.enabled:
            # Outermost, so the trace covers the whole chain (including the
            # metrics middleware's own timing) and every storage/worker span
            # opened during dispatch attaches to the request's trace.
            middlewares.insert(0, TracingMiddleware(self._telemetry.tracer))
        handler: Callable[[RequestContext], ApiResponse] = self._dispatch
        for middleware in reversed(middlewares):
            handler = self._wrap(middleware, handler)
        self._chain = handler

    @staticmethod
    def _wrap(middleware, nxt):
        def run(ctx: RequestContext) -> ApiResponse:
            return middleware(ctx, nxt)

        return run

    # Component access -----------------------------------------------------

    @property
    def config(self) -> GatewayConfig:
        """The gateway configuration."""
        return self._config

    @property
    def auth(self) -> ApiKeyRegistry:
        """The token registry (issue/revoke API keys here)."""
        return self._auth

    @property
    def routes(self) -> List[Route]:
        """The declarative route table."""
        return self._routes.routes()

    def metrics_snapshot(self) -> Dict[str, object]:
        """Request counters since the gateway started."""
        return self._metrics.snapshot()

    # Entry points ---------------------------------------------------------

    def handle(self, request: ApiRequest) -> ApiResponse:
        """Run one request through the middleware chain to its route."""
        match = self._routes.match(request.method, request.path)
        if match is None:
            ctx = RequestContext(request=request, route=None)
        else:
            ctx = RequestContext(request=request, route=match[0], path_params=match[1])
        return self._chain(ctx)

    def request(
        self,
        method: str,
        path: str,
        *,
        body: Optional[Dict[str, Any]] = None,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> ApiResponse:
        """Convenience wrapper building the :class:`ApiRequest` inline."""
        return self.handle(
            ApiRequest(
                method=method,
                path=path,
                body=body if body is not None else {},
                query=query if query is not None else {},
                headers=headers if headers is not None else {},
            )
        )

    def handle_wire(
        self,
        method: str,
        path: str,
        body_json: Optional[str] = None,
        *,
        query: Optional[Dict[str, str]] = None,
        headers: Optional[Dict[str, str]] = None,
    ) -> Tuple[int, str, Dict[str, str]]:
        """Wire-level entry point: JSON text in, JSON text out.

        What an HTTP server in front of the gateway would do per request:
        parse the request body, dispatch, serialize the response body.
        Malformed JSON maps to 400 without touching a route.  Returns
        ``(status, body_json, headers)``; also serves as the guarantee that
        every response body is JSON-serializable.
        """
        if body_json:
            try:
                body = json.loads(body_json)
            except json.JSONDecodeError as exc:
                error = f"malformed JSON body: {exc.msg}"
                return 400, json.dumps({"error": error}), {}
            if not isinstance(body, dict):
                return 400, json.dumps({"error": "request body must be a JSON object"}), {}
        else:
            body = {}
        response = self.handle(
            ApiRequest(
                method=method,
                path=path,
                body=body,
                query=query if query is not None else {},
                headers=headers if headers is not None else {},
            )
        )
        return response.status, json.dumps(response.body, separators=(",", ":")), response.headers

    # Dispatch -------------------------------------------------------------

    def _dispatch(self, ctx: RequestContext) -> ApiResponse:
        if ctx.route is None:
            allowed = self._routes.allowed_methods(ctx.request.path)
            if allowed:
                return ApiResponse(
                    status=405,
                    body={"error": f"method {ctx.request.method} not allowed"},
                    headers={"allow": ", ".join(allowed)},
                )
            return ApiResponse(status=404, body={"error": f"no route for {ctx.request.path!r}"})
        if ctx.route.request_schema is not None:
            ctx.data = ctx.route.request_schema.validate(ctx.request.body)
        return ctx.route.handler(ctx)

    def _register_routes(self) -> None:
        add = self._routes.add
        add(
            Route(
                "POST",
                "/v1/users",
                self._create_user,
                request_schema=RequestSchema(
                    fields=(Field("user_id", str), Field("display_name", str)),
                    allow_extra=True,
                ),
            )
        )
        add(Route("GET", "/v1/users/{user_id}", self._get_profile))
        add(Route("GET", "/v1/users/{user_id}/feedback", self._get_feedback_history))
        add(Route("GET", "/v1/users/{user_id}/tracking", self._get_tracking_history))
        add(Route("POST", "/v1/feedback", self._post_feedback, request_schema=FEEDBACK_SCHEMA))
        add(
            Route(
                "POST",
                "/v1/feedback/batch",
                self._post_feedback_batch,
                request_schema=RequestSchema(
                    fields=(Field("events", list, validator=_non_empty_list("events")),)
                ),
            )
        )
        add(
            Route(
                "POST",
                "/v1/tracking",
                self._post_tracking,
                request_schema=RequestSchema(fields=(Field("user_id", str),) + FIX_FIELDS),
            )
        )
        add(
            Route(
                "POST",
                "/v1/tracking/batch",
                self._post_tracking_batch,
                request_schema=RequestSchema(
                    fields=(
                        Field("user_id", str, required=False, default=None),
                        Field("fixes", list, validator=_non_empty_list("fixes")),
                    )
                ),
            )
        )
        add(Route("GET", "/v1/users", self._list_users))
        add(Route("GET", "/v1/services", self._list_services))
        add(Route("GET", "/v1/clips", self._list_clips))
        add(Route("GET", "/v1/clips/{clip_id}", self._get_clip))
        add(Route("GET", "/v1/recommendations/{user_id}", self._get_recommendations))
        add(Route("GET", "/v1/ops/metrics", self._get_ops_metrics))
        add(Route("GET", "/v1/ops/traces", self._get_ops_traces))

    # Shared helpers -------------------------------------------------------

    def _page_limit(self, ctx: RequestContext) -> int:
        raw = ctx.request.query.get("limit")
        if raw is None:
            return self._config.default_page_limit
        try:
            limit = int(raw)
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"limit must be an integer, got {raw!r}") from exc
        if limit < 1:
            raise ValidationError(f"limit must be >= 1, got {limit}")
        return min(limit, self._config.max_page_limit)

    @staticmethod
    def _fix_from(user_id: str, data: Dict[str, Any]) -> GpsFix:
        return GpsFix(
            user_id,
            data["timestamp_s"],
            GeoPoint(data["lat"], data["lon"]),
            speed_mps=data["speed_mps"],
            accuracy_m=data["accuracy_m"],
        )

    @staticmethod
    def _feedback_kind(raw: str) -> FeedbackKind:
        try:
            return FeedbackKind(raw)
        except ValueError:
            raise ValidationError(f"unknown feedback kind {raw!r}") from None

    # Users ----------------------------------------------------------------

    def _create_user(self, ctx: RequestContext) -> ApiResponse:
        details = dict(ctx.data)
        user_id = details.pop("user_id")
        display_name = details.pop("display_name")
        # The extra body fields are client-controlled: unknown or mistyped
        # keyword arguments must surface as a 400, never as an uncaught
        # TypeError escaping the exception mapper.
        try:
            profile = UserProfile(user_id=user_id, display_name=display_name, **details)
        except TypeError as exc:
            raise ValidationError(f"invalid profile fields: {exc}") from None
        self._server.register_user(profile)
        return ApiResponse(status=201, body={"user_id": user_id})

    def _list_users(self, ctx: RequestContext) -> ApiResponse:
        """One id-ordered page of registered users.

        Backed by the shard router's merged keyset walk
        (:meth:`UserManager.users_page
        <repro.users.management.UserManager.users_page>`): the listing is
        globally ordered however many shards the deployment runs, and the
        cursor is an opaque resume handle (its encoding is shard-layout
        specific — treat it as a token, not a position).
        """
        page = self._server.users.users_page(
            cursor=ctx.request.query.get("cursor"), limit=self._page_limit(ctx)
        )
        return ApiResponse(
            status=200,
            body={
                "users": [
                    {"user_id": profile.user_id, "display_name": profile.display_name}
                    for profile in page.items
                ],
                "next_cursor": page.next_token,
            },
        )

    def _get_profile(self, ctx: RequestContext) -> ApiResponse:
        user_id = ctx.path_params["user_id"]
        profile = self._server.users.profile(user_id)
        preferences = self._server.users.preference_profile(user_id)
        # Weak ETag on storage-level change counters: the profiles table
        # version moves on any registration/profile write, the observation
        # count on any learning update that would change the body.  Both
        # are O(1) reads, so a 304 costs two integer compares.
        etag = (
            f'W/"profile-{user_id}:'
            f'{self._server.users.profiles_version}.{preferences.observation_count}"'
        )
        if ctx.request.header("if-none-match") in (etag, "*"):
            return ApiResponse(status=304, headers={"etag": etag})
        return ApiResponse(
            status=200,
            body={
                "user_id": profile.user_id,
                "display_name": profile.display_name,
                "top_categories": preferences.top_categories(5),
                "observations": preferences.observation_count,
            },
            headers={"etag": etag},
        )

    def _get_feedback_history(self, ctx: RequestContext) -> ApiResponse:
        user_id = ctx.path_params["user_id"]
        self._server.users.profile(user_id)  # 404 before touching the store
        page = self._server.users.feedback.events_page_for_user(
            user_id,
            cursor=ctx.request.query.get("cursor"),
            limit=self._page_limit(ctx),
        )
        return ApiResponse(
            status=200,
            body={
                "user_id": user_id,
                "events": [
                    {
                        "event_id": event.event_id,
                        "content_id": event.content_id,
                        "kind": event.kind.value,
                        "timestamp_s": event.timestamp_s,
                        "listened_s": event.listened_s,
                        "is_clip": event.is_clip,
                    }
                    for event in page.items
                ],
                "next_cursor": page.next_token,
            },
        )

    def _get_tracking_history(self, ctx: RequestContext) -> ApiResponse:
        user_id = ctx.path_params["user_id"]
        self._server.users.profile(user_id)  # 404 before touching the store
        try:
            page = self._server.users.tracking.fixes_page(
                user_id,
                cursor=ctx.request.query.get("cursor"),
                limit=self._page_limit(ctx),
            )
        except NotFoundError:
            # Registered user, no fixes yet: an empty history, not a 404.
            page = StoragePage(items=[], next_token=None)
        return ApiResponse(
            status=200,
            body={
                "user_id": user_id,
                "fixes": [
                    {
                        "timestamp_s": fix.timestamp_s,
                        "lat": fix.position.lat,
                        "lon": fix.position.lon,
                        "speed_mps": fix.speed_mps,
                        "accuracy_m": fix.accuracy_m,
                    }
                    for fix in page.items
                ],
                "next_cursor": page.next_token,
            },
        )

    # Feedback -------------------------------------------------------------

    def _record_feedback(self, data: Dict[str, Any]):
        kind = self._feedback_kind(data["kind"])
        return self._server.users.record_feedback(
            data["user_id"],
            data["content_id"],
            kind,
            timestamp_s=data["timestamp_s"],
            listened_s=data["listened_s"],
            is_clip=data["is_clip"],
        )

    def _post_feedback(self, ctx: RequestContext) -> ApiResponse:
        event = self._record_feedback(ctx.data)
        return ApiResponse(status=201, body={"event_id": event.event_id})

    def _post_feedback_batch(self, ctx: RequestContext) -> ApiResponse:
        event_ids: List[str] = []
        failed: List[Dict[str, Any]] = []
        for index, raw in enumerate(ctx.data["events"]):
            try:
                event = self._record_feedback(FEEDBACK_SCHEMA.validate(raw))
            except ReproError as exc:
                error = map_error(exc)
                failed.append(
                    {"index": index, "status": error.status, "error": error.body["error"]}
                )
                continue
            event_ids.append(event.event_id)
        body = {"recorded": len(event_ids), "event_ids": event_ids, "failed": failed}
        return ApiResponse(status=201 if not failed else 200, body=body)

    # Tracking -------------------------------------------------------------

    def _post_tracking(self, ctx: RequestContext) -> ApiResponse:
        fix = self._fix_from(ctx.data["user_id"], ctx.data)
        self._server.users.ingest_fix(fix)
        return ApiResponse(status=202, body={"stored": True})

    def _post_tracking_batch(self, ctx: RequestContext) -> ApiResponse:
        user_id = ctx.data["user_id"]
        if user_id is not None:
            self._server.users.profile(user_id)  # 404 before any fix is parsed
        # Lean per-item validation: the GpsFix/GeoPoint constructors enforce
        # the same preconditions the wire schema would (finite timestamp,
        # coordinate ranges, non-negative speed), so batch items skip the
        # schema machinery and go straight to the model types; any
        # construction failure still maps to a 400 with the item index.
        #
        # Without an envelope user each item names its own owner — one
        # request can carry many users' drives.  All owners are resolved
        # (404) before a single fix is stored, so a failed request never
        # half-ingests.
        fixes: List[GpsFix] = []
        owners: set = set()
        for index, raw in enumerate(ctx.data["fixes"]):
            owner = user_id
            if owner is None:
                owner = raw.get("user_id") if isinstance(raw, dict) else None
                if not isinstance(owner, str):
                    raise ValidationError(
                        f"fixes[{index}]: user_id is required when the "
                        "request has no envelope user_id"
                    )
            try:
                fixes.append(
                    GpsFix(
                        owner,
                        raw["timestamp_s"],
                        GeoPoint(raw["lat"], raw["lon"]),
                        speed_mps=raw.get("speed_mps", 0.0),
                        accuracy_m=raw.get("accuracy_m", 10.0),
                    )
                )
            except (ReproError, KeyError, TypeError, ValueError, AttributeError) as exc:
                raise ValidationError(f"fixes[{index}]: invalid fix ({exc})") from None
            owners.add(owner)
        if user_id is None:
            for owner in sorted(owners):
                self._server.users.profile(owner)  # 404 before any ingest
        try:
            accepted = self._server.users.ingest_fixes(
                fixes, skip_stale=True, pool=self._server.workers
            )
        except ReproError as exc:
            # Surface the aborted batch on the bus before the error maps to
            # a wire status: with no subscriber the message dead-letters
            # (reason ``no_subscriber``), giving operators a durable record
            # of every rejected multi-user batch alongside the 5xx trace.
            self._server.bus.publish(
                "tracking.batch_failed",
                {
                    "users": sorted(owners),
                    "submitted": len(fixes),
                    "error": str(exc),
                },
            )
            raise
        body = {
            "submitted": len(fixes),
            "accepted": accepted,
            "skipped_stale": len(fixes) - accepted,
        }
        if user_id is None:
            body["users"] = len(owners)
        return ApiResponse(status=202, body=body)

    # Content --------------------------------------------------------------

    def _list_services(self, ctx: RequestContext) -> ApiResponse:
        services, next_cursor = self._server.content.services_page(
            cursor=ctx.request.query.get("cursor"), limit=self._page_limit(ctx)
        )
        return ApiResponse(
            status=200,
            body={
                "services": [
                    {
                        "service_id": service.service_id,
                        "name": service.name,
                        "bitrate_kbps": service.bitrate_kbps,
                    }
                    for service in services
                ],
                "next_cursor": next_cursor,
            },
        )

    @staticmethod
    def _clip_body(clip) -> Dict[str, Any]:
        """The wire representation of a clip (shared by list and item reads)."""
        return {
            "clip_id": clip.clip_id,
            "title": clip.title,
            "kind": clip.kind.value,
            "duration_s": clip.duration_s,
            "primary_category": clip.primary_category,
            "published_s": clip.published_s,
        }

    def _list_clips(self, ctx: RequestContext) -> ApiResponse:
        clips, next_cursor = self._server.content.clips_page(
            cursor=ctx.request.query.get("cursor"), limit=self._page_limit(ctx)
        )
        return ApiResponse(
            status=200,
            body={"clips": [self._clip_body(clip) for clip in clips], "next_cursor": next_cursor},
        )

    def _get_clip(self, ctx: RequestContext) -> ApiResponse:
        clip_id = ctx.path_params["clip_id"]
        clip = self._server.content.clip(clip_id)
        # Weak ETag on the clip table's storage version: any catalogue
        # write invalidates, which over-revalidates but never serves a
        # stale clip — and costs one integer read per request.
        etag = f'W/"clip-{clip_id}:{self._server.content.clips_version}"'
        if ctx.request.header("if-none-match") in (etag, "*"):
            return ApiResponse(status=304, headers={"etag": etag})
        return ApiResponse(status=200, body=self._clip_body(clip), headers={"etag": etag})

    # Recommendations ------------------------------------------------------

    def _recommendation_etag(self, user_id: str, now_s: float) -> str:
        """The freshness validator for one user's recommendations.

        Folds the streaming-model freshness (repair epoch + folded trips),
        the user's raw-fix counter, the learned-preference observation
        count (feedback moves recommendations too), the content-catalogue
        size and a ``recommendation_ttl_s``-wide time bucket into a weak
        ETag.  All components are O(1) reads, so revalidation costs
        integer compares instead of a recommender tick.
        """
        epoch, trips, fixes = self._server.model_freshness(user_id)
        observations = self._server.users.preference_profile(user_id).observation_count
        clips = self._server.content.clip_count()
        ttl = self._config.recommendation_ttl_s
        bucket = int(now_s // ttl) if ttl > 0 else 0
        return f'W/"rec-{user_id}:{epoch}.{trips}.{fixes}.{observations}.{clips}.{bucket}"'

    def _get_recommendations(self, ctx: RequestContext) -> ApiResponse:
        user_id = ctx.path_params["user_id"]
        raw_now = ctx.request.query.get("now_s")
        if raw_now is None:
            raise ValidationError("now_s query parameter is required")
        try:
            now_s = require_finite(float(raw_now), "now_s")
        except (TypeError, ValueError) as exc:
            raise ValidationError(f"now_s must be a number, got {raw_now!r}") from exc
        self._server.users.profile(user_id)  # 404 before any caching logic
        etag = self._recommendation_etag(user_id, now_s)
        if ctx.request.header("if-none-match") in (etag, "*"):
            return ApiResponse(status=304, headers={"etag": etag})
        decision = self._server.recommend(user_id, now_s=now_s)
        items: List[Dict[str, Any]] = []
        if decision.plan is not None:
            for item in decision.plan.items:
                items.append(
                    {
                        "clip_id": item.clip_id,
                        "title": item.scored.clip.title,
                        "start_s": item.start_s,
                        "duration_s": item.scored.clip.duration_s,
                        "score": round(item.scored.final_score, 4),
                        "reason": item.reason,
                    }
                )
        return ApiResponse(
            status=200,
            body={
                "user_id": user_id,
                "proactive": decision.should_recommend,
                "reason": decision.reason,
                "items": items,
            },
            headers={
                "etag": etag,
                "cache-control": f"max-age={int(self._config.recommendation_ttl_s)}",
            },
        )

    # Ops surface ----------------------------------------------------------

    def _get_ops_metrics(self, ctx: RequestContext) -> ApiResponse:
        """The metrics registry, as JSON or Prometheus text exposition.

        ``?format=prometheus`` wraps the text exposition in the JSON
        envelope (the gateway's wire contract is JSON bodies) and marks
        the payload's native type in ``content-type``; everything else
        serves the structured snapshot with precomputed p50/p95/p99 per
        histogram series.
        """
        telemetry = self._telemetry
        if not telemetry.enabled:
            return ApiResponse(status=200, body={"enabled": False})
        fmt = ctx.request.query.get("format", "json")
        if fmt == "prometheus":
            return ApiResponse(
                status=200,
                body={
                    "enabled": True,
                    "format": "prometheus",
                    "text": telemetry.prometheus_text(),
                },
                headers={"content-type": "text/plain; version=0.0.4"},
            )
        if fmt != "json":
            raise ValidationError(
                f"format must be 'json' or 'prometheus', got {fmt!r}"
            )
        return ApiResponse(
            status=200,
            body={"enabled": True, "metrics": telemetry.metrics_snapshot()},
        )

    def _get_ops_traces(self, ctx: RequestContext) -> ApiResponse:
        """Recent traces, slow traces and the slow-query log, newest first."""
        telemetry = self._telemetry
        if not telemetry.enabled:
            return ApiResponse(status=200, body={"enabled": False})
        raw = ctx.request.query.get("limit")
        limit = 50
        if raw is not None:
            try:
                limit = int(raw)
            except (TypeError, ValueError) as exc:
                raise ValidationError(f"limit must be an integer, got {raw!r}") from exc
            if limit < 1:
                raise ValidationError(f"limit must be >= 1, got {limit}")
        body = telemetry.traces_snapshot(limit)
        body["enabled"] = True
        return ApiResponse(status=200, body=body)

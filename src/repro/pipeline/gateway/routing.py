"""Declarative routes and the route table that dispatches them.

A :class:`Route` is data, not code: method + path template + handler +
optional request schema.  The whole public surface of the gateway is the
list of routes registered in one place
(:meth:`~repro.pipeline.gateway.gateway.Gateway._register_routes`), which is
what lets middleware meter, throttle and error-map every endpoint uniformly
instead of per-method ``try``/``except`` blocks.

Path templates use ``{name}`` placeholders per segment
(``/v1/users/{user_id}``); matched values are delivered to handlers as
string path parameters.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.errors import ValidationError
from repro.pipeline.gateway.http import ApiRequest, ApiResponse
from repro.pipeline.gateway.schema import RequestSchema


@dataclass
class RequestContext:
    """Everything middleware and handlers need about one in-flight request.

    ``data`` is the schema-validated body (populated at dispatch time) and
    ``principal`` the authenticated caller (populated by the auth
    middleware), so downstream middleware can key rate limits on it.
    """

    request: ApiRequest
    route: Optional["Route"]
    path_params: Dict[str, str] = field(default_factory=dict)
    data: Dict[str, Any] = field(default_factory=dict)
    principal: Optional[str] = None


Handler = Callable[[RequestContext], ApiResponse]


@dataclass(frozen=True)
class Route:
    """One declarative endpoint: method, path template, handler, schema."""

    method: str
    path: str
    handler: Handler
    request_schema: Optional[RequestSchema] = None
    name: str = ""
    #: Compiled template — the split segments and, per position, the
    #: parameter name (or None for a literal).  Built once at registration
    #: so matching never re-parses the template.
    segments: Tuple[str, ...] = ()
    param_names: Tuple[Optional[str], ...] = ()

    def __post_init__(self) -> None:
        if not self.path.startswith("/"):
            raise ValidationError(f"route path must start with '/', got {self.path!r}")
        object.__setattr__(self, "method", self.method.upper())
        if not self.name:
            object.__setattr__(self, "name", f"{self.method} {self.path}")
        segments = tuple(self.path.strip("/").split("/"))
        object.__setattr__(self, "segments", segments)
        object.__setattr__(
            self,
            "param_names",
            tuple(
                segment[1:-1] if segment.startswith("{") and segment.endswith("}") else None
                for segment in segments
            ),
        )


class RouteTable:
    """Routes indexed by (method, segment count) for dispatch.

    With segment-count bucketing a match only compares templates of the
    right shape — the table stays a flat declarative list to read, but a
    lookup never scans routes that cannot match.
    """

    def __init__(self) -> None:
        self._routes: List[Route] = []
        self._by_shape: Dict[Tuple[str, int], List[Route]] = {}

    @staticmethod
    def _shape_key(route: Route) -> Tuple[str, ...]:
        """The template with parameter names erased — two routes whose keys
        match would dispatch the same paths regardless of parameter naming."""
        return tuple(
            "{}" if param is not None else literal
            for literal, param in zip(route.segments, route.param_names)
        )

    def add(self, route: Route) -> None:
        """Register a route (template collisions are rejected)."""
        shape = self._shape_key(route)
        for existing in self._by_shape.get((route.method, len(route.segments)), []):
            if self._shape_key(existing) == shape:
                raise ValidationError(
                    f"route {route.method} {route.path!r} collides with {existing.path!r}"
                )
        self._routes.append(route)
        self._by_shape.setdefault((route.method, len(route.segments)), []).append(route)

    def routes(self) -> List[Route]:
        """All registered routes, in registration order."""
        return list(self._routes)

    @staticmethod
    def _match_route(route: Route, parts: Tuple[str, ...]) -> Optional[Dict[str, str]]:
        params: Dict[str, str] = {}
        for template, param, actual in zip(route.segments, route.param_names, parts):
            if param is not None:
                if not actual:
                    return None
                params[param] = actual
            elif template != actual:
                return None
        return params

    def match(self, method: str, path: str) -> Optional[Tuple[Route, Dict[str, str]]]:
        """The route and path parameters for ``method path``, if any."""
        parts = tuple(path.strip("/").split("/"))
        for route in self._by_shape.get((method.upper(), len(parts)), []):
            params = self._match_route(route, parts)
            if params is not None:
                return route, params
        return None

    def allowed_methods(self, path: str) -> List[str]:
        """Methods that *do* serve ``path`` (for 405 ``Allow`` headers)."""
        parts = tuple(path.strip("/").split("/"))
        allowed = set()
        for (method, count), routes in self._by_shape.items():
            if count != len(parts):
                continue
            for route in routes:
                if self._match_route(route, parts) is not None:
                    allowed.add(method)
        return sorted(allowed)

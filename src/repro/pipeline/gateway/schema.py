"""Declarative request-body schemas for gateway routes.

Each :class:`Route` may carry a :class:`RequestSchema`; the gateway then
validates the request body *before* the handler runs, so handlers only ever
see well-typed data and every malformed payload maps to a 400 through the
exception mapper (all schema failures raise
:class:`~repro.errors.ValidationError`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional, Tuple, Type, Union

from repro.errors import ValidationError

#: Numeric fields accept ints where floats are declared (JSON does not
#: distinguish), but never bools — ``True`` is not a coordinate.
Number = (int, float)


@dataclass(frozen=True)
class Field:
    """One body field: name, expected type, optionality, normalization."""

    name: str
    type: Union[Type, Tuple[Type, ...]] = str
    required: bool = True
    default: Any = None
    #: Runs after the type check; returns the normalized value or raises
    #: :class:`ValidationError` (e.g. range checks on coordinates).
    validator: Optional[Callable[[Any], Any]] = None

    def coerce(self, value: Any) -> Any:
        """Type-check (and numerically coerce) one value."""
        expected = self.type
        if isinstance(value, bool) and expected in (float, Number, int):
            raise ValidationError(f"{self.name} must be a number, got a boolean")
        if expected is float and isinstance(value, int):
            value = float(value)
        elif expected is Number and isinstance(value, Number):
            value = float(value)
        if not isinstance(value, expected if isinstance(expected, tuple) else (expected,)):
            type_name = getattr(expected, "__name__", str(expected))
            raise ValidationError(
                f"{self.name} must be of type {type_name}, got {type(value).__name__}"
            )
        if self.validator is not None:
            value = self.validator(value)
        return value


@dataclass(frozen=True)
class RequestSchema:
    """A declarative description of a route's request body."""

    fields: Tuple[Field, ...]
    #: Whether keys beyond the declared fields are tolerated (they are
    #: passed through untouched, e.g. optional profile demographics).
    allow_extra: bool = False

    def validate(self, body: Dict[str, Any]) -> Dict[str, Any]:
        """Validate ``body`` and return the normalized payload."""
        if not isinstance(body, dict):
            raise ValidationError("request body must be an object")
        data: Dict[str, Any] = {}
        known = set()
        for field_ in self.fields:
            known.add(field_.name)
            if field_.name not in body:
                if field_.required:
                    raise ValidationError(f"missing required field {field_.name!r}")
                data[field_.name] = field_.default
                continue
            data[field_.name] = field_.coerce(body[field_.name])
        extra = set(body) - known
        if extra and not self.allow_extra:
            raise ValidationError(f"unexpected fields: {sorted(extra)}")
        if self.allow_extra:
            for name in extra:
                data[name] = body[name]
        return data

"""User management: profiles, feedback (implicit and explicit), tracking intake.

Mirrors the "User Management" component of the paper's server: demographic
profiles live in the profiles DB, content navigation logs and ratings in the
feedbacks DB, GPS data in the tracking DB (handled by
:mod:`repro.spatialdb`), all fronted by a single manager object.
"""

from repro.users.feedback import FeedbackEvent, FeedbackKind, FeedbackStore
from repro.users.profile import UserPreferenceProfile, UserProfile
from repro.users.management import UserManager

__all__ = [
    "FeedbackEvent",
    "FeedbackKind",
    "FeedbackStore",
    "UserManager",
    "UserPreferenceProfile",
    "UserProfile",
]

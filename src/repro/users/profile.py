"""User profiles: demographics and learned content preferences."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.content.categories import category_by_name, category_names
from repro.errors import ValidationError
from repro.util.validation import require_in_range, require_non_empty


@dataclass(frozen=True)
class UserProfile:
    """Demographic details stored in the profiles DB."""

    user_id: str
    display_name: str
    age: Optional[int] = None
    gender: Optional[str] = None
    home_service_id: Optional[str] = None   # the station the user usually listens to
    language: str = "it"

    def __post_init__(self) -> None:
        require_non_empty(self.user_id, "user_id")
        require_non_empty(self.display_name, "display_name")
        if self.age is not None and not 0 < self.age < 120:
            raise ValidationError(f"age must be in (0, 120), got {self.age}")


class UserPreferenceProfile:
    """A learned preference vector over the 30 content categories.

    Preferences are maintained with exponentially decayed accumulation:
    positive feedback on a clip adds the clip's (normalized) category scores,
    negative feedback subtracts them with a configurable penalty, and the
    whole vector decays slowly so tastes can drift.  Scores are kept in
    ``[-1, 1]`` per category.
    """

    def __init__(
        self,
        user_id: str,
        *,
        learning_rate: float = 0.25,
        negative_penalty: float = 1.25,
        decay: float = 0.995,
    ) -> None:
        require_non_empty(user_id, "user_id")
        require_in_range(learning_rate, 0.0, 1.0, "learning_rate")
        if negative_penalty < 0:
            raise ValidationError("negative_penalty must be >= 0")
        require_in_range(decay, 0.0, 1.0, "decay")
        self._user_id = user_id
        self._learning_rate = learning_rate
        self._negative_penalty = negative_penalty
        self._decay = decay
        self._scores: Dict[str, float] = {}
        self._observations = 0

    @property
    def user_id(self) -> str:
        """Owner of the profile."""
        return self._user_id

    @property
    def observation_count(self) -> int:
        """Number of feedback events folded into the profile."""
        return self._observations

    def score(self, category: str) -> float:
        """Current preference for a category (0 for never-seen categories)."""
        category_by_name(category)
        return self._scores.get(category, 0.0)

    def as_vector(self) -> Dict[str, float]:
        """Copy of the non-zero preference entries."""
        return dict(self._scores)

    def top_categories(self, k: int = 5) -> List[Tuple[str, float]]:
        """The ``k`` most preferred categories (positive scores only)."""
        positive = [(name, value) for name, value in self._scores.items() if value > 0]
        positive.sort(key=lambda pair: pair[1], reverse=True)
        return positive[:k]

    def disliked_categories(self, threshold: float = -0.2) -> List[str]:
        """Categories with preference below ``threshold``."""
        return sorted(name for name, value in self._scores.items() if value < threshold)

    def update(self, category_scores: Dict[str, float], *, positive: bool) -> None:
        """Fold one feedback event into the profile.

        ``category_scores`` is the clip's category distribution; ``positive``
        distinguishes listen-through / like events from skip / dislike.
        """
        total = sum(category_scores.values())
        if total <= 0:
            return
        self._observations += 1
        direction = 1.0 if positive else -self._negative_penalty
        for name in list(self._scores):
            self._scores[name] *= self._decay
        for name, raw in category_scores.items():
            category_by_name(name)
            delta = direction * self._learning_rate * (raw / total)
            updated = self._scores.get(name, 0.0) + delta
            self._scores[name] = max(-1.0, min(1.0, updated))

    def affinity(self, category_scores: Dict[str, float]) -> float:
        """Affinity in [0, 1] between the profile and a clip's categories.

        Computed as the preference-weighted average of the clip's category
        distribution, mapped from [-1, 1] to [0, 1].  Unknown users (no
        observations) get a neutral 0.5 for every clip.
        """
        total = sum(category_scores.values())
        if total <= 0 or not self._scores:
            return 0.5
        weighted = 0.0
        for name, raw in category_scores.items():
            weighted += (raw / total) * self._scores.get(name, 0.0)
        return (weighted + 1.0) / 2.0

    def seeded(self, preferred: List[str], disliked: Optional[List[str]] = None) -> "UserPreferenceProfile":
        """Seed the profile with explicit likes/dislikes (onboarding survey)."""
        for name in preferred:
            self.update({name: 1.0}, positive=True)
        for name in disliked or []:
            self.update({name: 1.0}, positive=False)
        return self

    # Snapshot / restore ---------------------------------------------------

    def to_payload(self) -> Dict[str, object]:
        """The exact learned state as a JSON-serializable payload.

        Captures the score vector, the observation count and the learning
        parameters, so a restored profile produces bit-identical
        affinities and continues learning identically.
        """
        return {
            "user_id": self._user_id,
            "learning_rate": self._learning_rate,
            "negative_penalty": self._negative_penalty,
            "decay": self._decay,
            "scores": dict(self._scores),
            "observations": self._observations,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, object]) -> "UserPreferenceProfile":
        """Rebuild a profile from :meth:`to_payload` output."""
        profile = cls(
            payload["user_id"],
            learning_rate=payload.get("learning_rate", 0.25),
            negative_penalty=payload.get("negative_penalty", 1.25),
            decay=payload.get("decay", 0.995),
        )
        profile._scores = dict(payload.get("scores", {}))
        profile._observations = int(payload.get("observations", 0))
        return profile

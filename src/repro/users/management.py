"""The user management component: one façade over profiles, feedback, tracking."""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.content.repository import ContentRepository
from repro.errors import DuplicateError, NotFoundError
from repro.spatialdb import GpsFix, TrackingStore
from repro.users.feedback import FeedbackEvent, FeedbackKind, FeedbackStore
from repro.users.profile import UserPreferenceProfile, UserProfile


class UserManager:
    """Registers users and routes their feedback and tracking data.

    This is the integration point the client app talks to: profile lookups,
    feedback ingestion (which immediately updates the learned preference
    profile when the content's category scores are known), and GPS intake.
    """

    def __init__(
        self,
        *,
        content: Optional[ContentRepository] = None,
        tracking: Optional[TrackingStore] = None,
    ) -> None:
        self._profiles: Dict[str, UserProfile] = {}
        self._preferences: Dict[str, UserPreferenceProfile] = {}
        self._feedback = FeedbackStore()
        self._tracking = tracking if tracking is not None else TrackingStore()
        self._content = content
        self._fix_listeners: List[Callable[[GpsFix], None]] = []

    # Registration ----------------------------------------------------------

    def register(self, profile: UserProfile) -> UserPreferenceProfile:
        """Register a user; returns the (empty) preference profile."""
        if profile.user_id in self._profiles:
            raise DuplicateError(f"user {profile.user_id!r} is already registered")
        self._profiles[profile.user_id] = profile
        preference = UserPreferenceProfile(profile.user_id)
        self._preferences[profile.user_id] = preference
        return preference

    def profile(self, user_id: str) -> UserProfile:
        """Demographic profile of a user."""
        profile = self._profiles.get(user_id)
        if profile is None:
            raise NotFoundError(f"unknown user {user_id!r}")
        return profile

    def preference_profile(self, user_id: str) -> UserPreferenceProfile:
        """Learned preference profile of a user."""
        preference = self._preferences.get(user_id)
        if preference is None:
            raise NotFoundError(f"unknown user {user_id!r}")
        return preference

    def user_ids(self) -> List[str]:
        """All registered user ids."""
        return sorted(self._profiles.keys())

    def user_count(self) -> int:
        """Number of registered users."""
        return len(self._profiles)

    # Feedback ---------------------------------------------------------------

    @property
    def feedback(self) -> FeedbackStore:
        """The underlying feedback store."""
        return self._feedback

    def record_feedback(
        self,
        user_id: str,
        content_id: str,
        kind: FeedbackKind,
        *,
        timestamp_s: float,
        listened_s: float = 0.0,
        is_clip: bool = True,
    ) -> FeedbackEvent:
        """Store feedback and fold it into the user's preference profile."""
        self.profile(user_id)  # raises for unknown users
        event = self._feedback.record(
            user_id,
            content_id,
            kind,
            timestamp_s=timestamp_s,
            listened_s=listened_s,
            is_clip=is_clip,
        )
        self._learn_from(event)
        return event

    def _learn_from(self, event: FeedbackEvent) -> None:
        if self._content is None or not event.is_clip:
            return
        try:
            clip = self._content.clip(event.content_id)
        except NotFoundError:
            return
        scores = clip.normalized_scores()
        if not scores:
            return
        preference = self._preferences[event.user_id]
        # Repeat the update proportionally to the magnitude of the signal so
        # a "like" moves the profile further than a passive listen ping.
        repetitions = max(1, int(round(abs(event.weight))))
        for _ in range(repetitions):
            preference.update(scores, positive=event.is_positive)

    # Tracking ----------------------------------------------------------------

    @property
    def tracking(self) -> TrackingStore:
        """The tracking (spatial) store."""
        return self._tracking

    def add_fix_listener(self, listener: Callable[[GpsFix], None]) -> None:
        """Register a callback invoked for every fix accepted into storage.

        The streaming mobility engine subscribes here so trip sessionization
        and model maintenance happen inline with ingestion.
        """
        self._fix_listeners.append(listener)

    def ingest_fix(self, fix: GpsFix) -> None:
        """Store a GPS fix for a registered user."""
        self.profile(fix.user_id)
        self._tracking.add_fix(fix)
        for listener in self._fix_listeners:
            listener(fix)

    def ingest_fixes(self, fixes: List[GpsFix], *, skip_stale: bool = False) -> int:
        """Store many GPS fixes.

        With ``skip_stale=True`` fixes older than the user's latest stored
        fix are silently dropped instead of raising — useful when a scenario
        replays a drive whose first fixes were already uploaded.
        """
        count = 0
        for fix in fixes:
            if skip_stale:
                try:
                    latest = self._tracking.latest_fix(fix.user_id).timestamp_s
                except NotFoundError:
                    latest = None
                if latest is not None and fix.timestamp_s < latest:
                    continue
            self.ingest_fix(fix)
            count += 1
        return count

"""The user management component: one façade over profiles, feedback, tracking."""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.content.repository import ContentRepository
from repro.errors import DuplicateError, NotFoundError, ValidationError
from repro.spatialdb import GpsFix, TrackingStore
from repro.storage import Column, IndexSpec, Page, Schema, ShardedDatabase
from repro.storage.sharding import ShardWorkerPool
from repro.users.feedback import FeedbackEvent, FeedbackKind, FeedbackStore
from repro.users.profile import UserPreferenceProfile, UserProfile

#: Version stamp of :meth:`UserManager.snapshot` payloads.
SNAPSHOT_VERSION = 1


class UserManager:
    """Registers users and routes their feedback and tracking data.

    This is the integration point the client app talks to: profile lookups,
    feedback ingestion (which immediately updates the learned preference
    profile when the content's category scores are known), and GPS intake.

    With ``shards > 1`` every piece of per-user state — the profiles DB
    and its object caches, the learned preference vectors, the feedbacks
    DB and the tracking store — partitions by crc32 of the user id, the
    same assignment everywhere.  Single-user operations route to the
    owning shard; :meth:`user_ids` and :meth:`users_page` fan out and
    merge.  Batch ingest can run shard groups in parallel on a
    :class:`~repro.storage.sharding.ShardWorkerPool`: groups are disjoint
    by construction, so each pool worker is the sole writer of its shard.
    """

    #: Wiring, not state: fix listeners are re-registered by the streaming
    #: components (sessionizer bridge, tracking ingest) after a restore.
    SNAPSHOT_EXEMPT = ("_fix_listeners",)

    def __init__(
        self,
        *,
        content: Optional[ContentRepository] = None,
        tracking: Optional[TrackingStore] = None,
        shards: int = 1,
    ) -> None:
        if tracking is not None:
            # An injected tracking store dictates the layout — every
            # per-user structure must shard identically.
            shards = tracking.shard_count
        self._tracking = tracking if tracking is not None else TrackingStore(shards=shards)
        self._shards = shards

        def create_tables(db) -> None:
            db.create_table(
                Schema(
                    name="profiles",
                    primary_key="user_id",
                    columns=[
                        Column("user_id", str),
                        Column("display_name", str),
                        Column("age", int, nullable=True),
                        Column("gender", str, nullable=True),
                        Column("home_service_id", str, nullable=True),
                        Column("language", str, has_default=True, default="it"),
                    ],
                    indexes=[
                        IndexSpec("by_user", kind="sorted", columns=("user_id",)),
                    ],
                )
            )

        self._profiles_db = ShardedDatabase(
            "profiles", shards=shards, shard_key="user_id", create_tables=create_tables
        )
        #: Per-shard object caches over the profiles tables (the tables are
        #: the record of truth the snapshot captures; the caches serve hot
        #: lookups).  Keys are disjoint across shards by construction.
        self._profiles: List[Dict[str, UserProfile]] = [{} for _ in range(shards)]
        self._preferences: List[Dict[str, UserPreferenceProfile]] = [
            {} for _ in range(shards)
        ]
        self._feedback = FeedbackStore(shards=shards)
        self._content = content
        #: (per-fix listener, optional bulk form) pairs; see add_fix_listener.
        self._fix_listeners: List[
            Tuple[Callable[[GpsFix], None], Optional[Callable[[List[GpsFix]], None]]]
        ] = []
        #: Durability hook: domain operations that mutate state no table
        #: row captures (preference seeding); see set_op_listener.
        self._op_listener = None

    def set_op_listener(self, listener) -> None:
        """Install the WAL's domain-operation listener (``None`` clears)."""
        self._op_listener = listener

    def _log_op(self, op: str, data: Dict[str, Any]) -> None:
        if self._op_listener is not None:
            self._op_listener(op, data)

    @property
    def shard_count(self) -> int:
        """Number of shards all per-user state is partitioned into."""
        return self._shards

    def shard_of(self, user_id: str) -> int:
        """The shard owning a user (stable crc32 assignment)."""
        return self._profiles_db.shard_of(user_id)

    # Registration ----------------------------------------------------------

    def register(self, profile: UserProfile) -> UserPreferenceProfile:
        """Register a user; returns the (empty) preference profile."""
        shard = self.shard_of(profile.user_id)
        if profile.user_id in self._profiles[shard]:
            raise DuplicateError(f"user {profile.user_id!r} is already registered")
        self._profiles_db.table_for(profile.user_id, "profiles").insert(
            self._profile_row(profile)
        )
        self._profiles[shard][profile.user_id] = profile
        preference = UserPreferenceProfile(profile.user_id)
        self._preferences[shard][profile.user_id] = preference
        return preference

    @staticmethod
    def _profile_row(profile: UserProfile) -> Dict[str, Any]:
        return {
            "user_id": profile.user_id,
            "display_name": profile.display_name,
            "age": profile.age,
            "gender": profile.gender,
            "home_service_id": profile.home_service_id,
            "language": profile.language,
        }

    @staticmethod
    def _profile_from_row(row: Dict[str, Any]) -> UserProfile:
        return UserProfile(
            user_id=row["user_id"],
            display_name=row["display_name"],
            age=row["age"],
            gender=row["gender"],
            home_service_id=row["home_service_id"],
            language=row["language"],
        )

    @property
    def profiles_database(self) -> ShardedDatabase:
        """The profiles DB router (exposed for dashboards and stats)."""
        return self._profiles_db

    @property
    def profiles_version(self) -> int:
        """Change counter of the profiles table (ETag validator).

        Summed across shards — each registration bumps exactly one shard
        by one, so the value matches an unsharded table's counter.
        """
        return self._profiles_db.version("profiles")

    def profile(self, user_id: str) -> UserProfile:
        """Demographic profile of a user."""
        profile = self._profiles[self.shard_of(user_id)].get(user_id)
        if profile is None:
            raise NotFoundError(f"unknown user {user_id!r}")
        return profile

    def has_user(self, user_id: str) -> bool:
        """Whether a user is registered (no-exception existence check)."""
        return user_id in self._profiles[self.shard_of(user_id)]

    def preference_profile(self, user_id: str) -> UserPreferenceProfile:
        """Learned preference profile of a user."""
        preference = self._preferences[self.shard_of(user_id)].get(user_id)
        if preference is None:
            raise NotFoundError(f"unknown user {user_id!r}")
        return preference

    def user_ids(self) -> List[str]:
        """All registered user ids."""
        return sorted(
            user_id for shard in self._profiles for user_id in shard
        )

    def seed_preferences(
        self,
        user_id: str,
        preferred: List[str],
        disliked: Optional[List[str]] = None,
    ) -> UserPreferenceProfile:
        """Seed a user's preference profile (the onboarding survey).

        The WAL-visible entry point: mutating the profile object returned
        by :meth:`preference_profile` directly would leave the learned
        delta invisible to the change log, so durable deployments must
        seed through here.
        """
        preference = self.preference_profile(user_id).seeded(
            list(preferred), list(disliked or [])
        )
        self._log_op(
            "seed_preferences",
            {
                "user_id": user_id,
                "preferred": list(preferred),
                "disliked": list(disliked or []),
            },
        )
        return preference

    def user_count(self) -> int:
        """Number of registered users."""
        return sum(len(shard) for shard in self._profiles)

    def users_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Page[UserProfile]:
        """One id-ordered page of registered users.

        A merged keyset walk over each shard's sorted ``by_user`` index —
        the listing is globally ordered by user id whatever the shard
        layout, and the cursor stays stable under concurrent
        registrations (see :meth:`ShardedDatabase.page_by_index
        <repro.storage.sharding.ShardedDatabase.page_by_index>`).
        """
        page = self._profiles_db.page_by_index(
            "profiles", "by_user", limit=limit, after_token=cursor
        )
        return Page(
            items=[self._profile_from_row(row) for row in page.items],
            next_token=page.next_token,
        )

    # Feedback ---------------------------------------------------------------

    @property
    def feedback(self) -> FeedbackStore:
        """The underlying feedback store."""
        return self._feedback

    def record_feedback(
        self,
        user_id: str,
        content_id: str,
        kind: FeedbackKind,
        *,
        timestamp_s: float,
        listened_s: float = 0.0,
        is_clip: bool = True,
    ) -> FeedbackEvent:
        """Store feedback and fold it into the user's preference profile."""
        self.profile(user_id)  # raises for unknown users
        event = self._feedback.record(
            user_id,
            content_id,
            kind,
            timestamp_s=timestamp_s,
            listened_s=listened_s,
            is_clip=is_clip,
        )
        self._learn_from(event)
        return event

    def _learn_from(self, event: FeedbackEvent) -> None:
        if self._content is None or not event.is_clip:
            return
        try:
            clip = self._content.clip(event.content_id)
        except NotFoundError:
            return
        scores = clip.normalized_scores()
        if not scores:
            return
        preference = self._preferences[self.shard_of(event.user_id)][event.user_id]
        # Repeat the update proportionally to the magnitude of the signal so
        # a "like" moves the profile further than a passive listen ping.
        repetitions = max(1, int(round(abs(event.weight))))
        for _ in range(repetitions):
            preference.update(scores, positive=event.is_positive)

    # Tracking ----------------------------------------------------------------

    @property
    def tracking(self) -> TrackingStore:
        """The tracking (spatial) store."""
        return self._tracking

    def add_fix_listener(
        self,
        listener: Callable[[GpsFix], None],
        *,
        batch: Optional[Callable[[List[GpsFix]], None]] = None,
    ) -> None:
        """Register a callback invoked for every fix accepted into storage.

        The streaming mobility engine subscribes here so trip sessionization
        and model maintenance happen inline with ingestion.  A listener may
        also provide a ``batch`` form; :meth:`ingest_fixes` then delivers
        each batch's accepted fixes in one call (same fixes, same per-user
        order) instead of paying the callback per fix.
        """
        self._fix_listeners.append((listener, batch))

    def ingest_fix(self, fix: GpsFix) -> None:
        """Store a GPS fix for a registered user."""
        self.profile(fix.user_id)
        self._tracking.add_fix(fix)
        for listener, _batch in self._fix_listeners:
            listener(fix)

    def ingest_fixes(
        self,
        fixes: List[GpsFix],
        *,
        skip_stale: bool = False,
        pool: Optional[ShardWorkerPool] = None,
    ) -> int:
        """Store many GPS fixes; returns how many were accepted.

        With ``skip_stale=True`` fixes older than the user's latest stored
        fix are silently dropped instead of raising — useful when a scenario
        replays a drive whose first fixes were already uploaded, and what
        the gateway's batch tracking endpoint relies on.

        This is the batch ingest fast path: the registration check and the
        latest-timestamp read happen once per user per batch instead of
        once per fix, and listeners registered with a ``batch`` form (the
        streaming engine) receive the accepted fixes in one call — same
        fixes, same per-user order as per-fix :meth:`ingest_fix`, without
        re-paying the per-fix callback overhead.

        With a ``pool`` the batch splits into per-shard groups (per-user
        order preserved) that ingest concurrently, one worker per shard.
        Groups touch disjoint state — shard-partitioned stores, per-shard
        caches with disjoint keys, and shard-routed batch listeners — so
        each worker is the single writer of everything it mutates.  The
        per-user outcome is identical to the serial walk; only the
        interleaving across users of *different* shards differs.

        The pooled path is atomic across shards: a read-only validation
        pass runs on every shard first, and writes only start once all
        groups validated.  A worker failing during validation (bad data,
        injected fault, crash) therefore leaves zero fixes ingested —
        no partial multi-user batch is ever observable.
        """
        if pool is None or self._shards == 1:
            return self._ingest_group(fixes, skip_stale)
        groups: Dict[int, List[GpsFix]] = {}
        for fix in fixes:
            groups.setdefault(self.shard_of(fix.user_id), []).append(fix)
        if len(groups) <= 1:
            return self._ingest_group(fixes, skip_stale)
        prepared = pool.map_shards(
            {
                shard: (lambda group=group: self._prepare_group(group, skip_stale))
                for shard, group in groups.items()
            }
        )
        results = pool.map_shards(
            {
                shard: (lambda accepted=accepted: self._apply_group(accepted))
                for shard, accepted in prepared.items()
                if accepted
            }
        )
        return sum(results.values())

    def _prepare_group(self, fixes: List[GpsFix], skip_stale: bool) -> List[GpsFix]:
        """Phase 1 of pooled ingest: validate one shard's group, write nothing.

        Performs exactly the checks :meth:`_ingest_group` would make —
        unknown users raise, out-of-order fixes raise unless
        ``skip_stale`` drops them — and returns the fixes that phase 2
        (:meth:`_apply_group`) will write.  Read-only by construction, so
        a failure anywhere in the batch aborts with zero writes on every
        shard.
        """
        tracking = self._tracking
        latest_by_user: Dict[str, float] = {}
        accepted: List[GpsFix] = []
        for fix in fixes:
            latest = latest_by_user.get(fix.user_id)
            if latest is None:
                self.profile(fix.user_id)  # raises for unknown users
                try:
                    latest = tracking.latest_fix(fix.user_id).timestamp_s
                except NotFoundError:
                    latest = float("-inf")
            if fix.timestamp_s < latest:
                if skip_stale:
                    continue
                raise ValidationError(
                    f"fix for {fix.user_id!r} at {fix.timestamp_s} is older than "
                    f"the latest stored fix at {latest}"
                )
            latest_by_user[fix.user_id] = fix.timestamp_s
            accepted.append(fix)
        return accepted

    def _apply_group(self, accepted: List[GpsFix]) -> int:
        """Phase 2 of pooled ingest: write one shard's validated fixes."""
        tracking = self._tracking
        for fix in accepted:
            tracking.add_fix(fix)
        for listener, batch_listener in self._fix_listeners:
            if batch_listener is not None:
                batch_listener(accepted)
            else:
                for fix in accepted:
                    listener(fix)
        return len(accepted)

    def _ingest_group(self, fixes: List[GpsFix], skip_stale: bool) -> int:
        """The serial ingest walk over one ordered run of fixes."""
        tracking = self._tracking
        latest_by_user: Dict[str, float] = {}
        accepted: List[GpsFix] = []
        try:
            for fix in fixes:
                latest = latest_by_user.get(fix.user_id)
                if latest is None:
                    self.profile(fix.user_id)  # raises for unknown users
                    try:
                        latest = tracking.latest_fix(fix.user_id).timestamp_s
                    except NotFoundError:
                        latest = float("-inf")
                    latest_by_user[fix.user_id] = latest
                if skip_stale and fix.timestamp_s < latest:
                    continue
                tracking.add_fix(fix)
                latest_by_user[fix.user_id] = fix.timestamp_s
                accepted.append(fix)
        finally:
            # Even when a mid-batch fix raises, listeners must still see the
            # fixes that were accepted before it — exactly what the per-fix
            # path would have delivered.
            if accepted:
                for listener, batch_listener in self._fix_listeners:
                    if batch_listener is not None:
                        batch_listener(accepted)
                    else:
                        for fix in accepted:
                            listener(fix)
        return len(accepted)

    # WAL replay -----------------------------------------------------------

    def replay_fixes(self, fixes: List[GpsFix]) -> int:
        """Re-apply already-accepted fixes from a logged WAL frame.

        Exactly phase 2 of the pooled ingest: store each fix and deliver
        the batch to every fix listener (the streaming engine evolves its
        models the same way it did live; a suspended WAL listener is a
        no-op).  Validation is skipped on purpose — the frame records
        fixes that *were* accepted.
        """
        return self._apply_group(fixes)

    def replay_profile_changes(self, shard: int, changes: List[Dict[str, Any]]) -> None:
        """Re-derive the per-shard object caches from replayed table changes.

        The generic table replay has already applied the changes to the
        profiles table; this mirrors what the live write did to the dict
        caches: a registration insert also creates the empty preference
        profile, an update refreshes the cached profile only.
        """
        for change in changes:
            op = change["op"]
            if op in ("insert", "update"):
                profile = self._profile_from_row(change["row"])
                self._profiles[shard][profile.user_id] = profile
                if op == "insert":
                    self._preferences[shard].setdefault(
                        profile.user_id, UserPreferenceProfile(profile.user_id)
                    )
            elif op == "delete":
                user_id = change["row"]["user_id"]
                self._profiles[shard].pop(user_id, None)
                self._preferences[shard].pop(user_id, None)
            elif op == "clear":
                self._profiles[shard].clear()
                self._preferences[shard].clear()

    def replay_feedback_row(self, row: Dict[str, Any]) -> None:
        """Re-run preference learning for a replayed feedback insert.

        The table replay restored the row (with its original event id);
        what it cannot restore is the learned preference delta, so the
        event is rebuilt from the row and folded in exactly as
        :meth:`record_feedback` did.
        """
        self._learn_from(self._feedback.event_from_row(row))

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable payload of all per-user state.

        Covers the profiles DB, the learned preference vectors, the
        feedbacks DB and the tracking store — everything the user
        management façade owns.  Fix listeners are wiring, not state, and
        are not captured.  The payload is shard-layout independent and
        restores into any shard count.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "profiles": self._profiles_db.snapshot(),
            "preferences": {
                user_id: preference.to_payload()
                for shard in self._preferences
                for user_id, preference in shard.items()
            },
            "feedback": self._feedback.snapshot(),
            "tracking": self._tracking.snapshot(),
        }

    def restore(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot` payload, replacing all per-user state."""
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported user snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        self._profiles_db.restore(payload["profiles"])
        self._profiles = [
            {
                row["user_id"]: self._profile_from_row(row)
                for row in self._profiles_db.shard(shard).table("profiles").rows()
            }
            for shard in range(self._shards)
        ]
        self._preferences = [{} for _ in range(self._shards)]
        for user_id, raw in payload.get("preferences", {}).items():
            self._preferences[self.shard_of(user_id)][
                user_id
            ] = UserPreferenceProfile.from_payload(raw)
        self._feedback.restore(payload["feedback"])
        self._tracking.restore(payload["tracking"])

    def snapshot_shard(self, shard: int) -> Dict[str, Any]:
        """One shard's slice of all per-user state — the migration unit."""
        return {
            "version": SNAPSHOT_VERSION,
            "profiles": self._profiles_db.snapshot_shard(shard),
            "preferences": {
                user_id: preference.to_payload()
                for user_id, preference in self._preferences[shard].items()
            },
            "feedback": self._feedback.snapshot_shard(shard),
            "tracking": self._tracking.snapshot_shard(shard),
        }

    def restore_shard(self, shard: int, payload: Dict[str, Any]) -> None:
        """Replace one shard's per-user state without touching the others."""
        if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
            raise ValidationError(
                f"unsupported user snapshot payload (want version {SNAPSHOT_VERSION})"
            )
        for user_id in payload.get("preferences", {}):
            if self.shard_of(user_id) != shard:
                raise ValidationError(
                    f"user {user_id!r} does not belong to shard {shard}"
                )
        self._profiles_db.restore_shard(shard, payload["profiles"])
        self._profiles[shard] = {
            row["user_id"]: self._profile_from_row(row)
            for row in self._profiles_db.shard(shard).table("profiles").rows()
        }
        self._preferences[shard] = {
            user_id: UserPreferenceProfile.from_payload(raw)
            for user_id, raw in payload.get("preferences", {}).items()
        }
        self._feedback.restore_shard(shard, payload["feedback"])
        self._tracking.restore_shard(shard, payload["tracking"])

"""The feedbacks DB: implicit and explicit listener feedback events."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

from repro.errors import ValidationError
from repro.storage import Column, IndexSpec, Page, Schema, ShardedDatabase
from repro.util.ids import new_id

#: Version stamp of :meth:`FeedbackStore.snapshot` payloads.
SNAPSHOT_VERSION = 1


class FeedbackKind(enum.Enum):
    """The feedback signals the client app can produce.

    The paper distinguishes implicit feedback (periodic "still listening"
    pings and skips) from explicit feedback (like/dislike buttons).
    """

    LISTEN_PING = "listen_ping"     # implicit positive: still listening
    COMPLETED = "completed"         # implicit positive: played to the end
    SKIP = "skip"                   # implicit negative
    CHANNEL_CHANGE = "channel_change"  # implicit negative (stronger)
    LIKE = "like"                   # explicit positive
    DISLIKE = "dislike"             # explicit negative


#: Signed weight of each feedback kind when learning preferences.
FEEDBACK_WEIGHT: Dict[FeedbackKind, float] = {
    FeedbackKind.LISTEN_PING: 0.25,
    FeedbackKind.COMPLETED: 1.0,
    FeedbackKind.SKIP: -1.0,
    FeedbackKind.CHANNEL_CHANGE: -1.5,
    FeedbackKind.LIKE: 1.5,
    FeedbackKind.DISLIKE: -1.5,
}


@dataclass(frozen=True)
class FeedbackEvent:
    """One feedback record in the feedbacks DB."""

    event_id: str
    user_id: str
    content_id: str          # clip id or programme id
    kind: FeedbackKind
    timestamp_s: float
    listened_s: float = 0.0  # how long the user listened before the event
    is_clip: bool = True     # False when the content is a live programme

    def __post_init__(self) -> None:
        if self.listened_s < 0:
            raise ValidationError(f"listened_s must be >= 0, got {self.listened_s}")

    @property
    def weight(self) -> float:
        """Signed learning weight of the event."""
        return FEEDBACK_WEIGHT[self.kind]

    @property
    def is_positive(self) -> bool:
        """Whether the event counts as positive feedback."""
        return self.weight > 0


class FeedbackStore:
    """Table-backed store of feedback events with per-user/content access.

    Every access path is a declarative index on the schema: hash buckets
    for the per-user and per-content lookups, a sorted
    ``(user_id, timestamp_s)`` index that serves time-ordered reads and
    the keyset-paginated history endpoint without re-sorting, and a
    sorted ``(timestamp_s,)`` index behind the global merged listing.

    With ``shards > 1`` events partition by crc32 of the user id (one
    table per shard behind a
    :class:`~repro.storage.sharding.ShardedDatabase`): writes and per-user
    reads route to the owning shard, per-content and global reads fan out
    and merge.  ``shards == 1`` is exactly the old single-table behaviour.
    """

    def __init__(self, *, shards: int = 1) -> None:
        def create_tables(db) -> None:
            db.create_table(
                Schema(
                    name="feedback",
                    primary_key="event_id",
                    columns=[
                        Column("event_id", str),
                        Column("user_id", str),
                        Column("content_id", str),
                        Column("kind", str),
                        Column("timestamp_s", float),
                        Column("listened_s", float, has_default=True, default=0.0),
                        Column("is_clip", bool, has_default=True, default=True),
                    ],
                    indexes=[
                        IndexSpec("user_id"),
                        IndexSpec("content_id"),
                        IndexSpec(
                            "user_time", kind="sorted", columns=("user_id", "timestamp_s")
                        ),
                        IndexSpec("time", kind="sorted", columns=("timestamp_s",)),
                    ],
                )
            )

        self._db = ShardedDatabase(
            "feedbacks", shards=shards, shard_key="user_id", create_tables=create_tables
        )

    @property
    def database(self) -> ShardedDatabase:
        """The feedbacks DB router (exposed for dashboards and stats)."""
        return self._db

    @property
    def shard_count(self) -> int:
        """Number of shards the store is partitioned into."""
        return self._db.shard_count

    def _table_for(self, user_id: str):
        return self._db.table_for(user_id, "feedback")

    @property
    def version(self) -> int:
        """Change counter of the feedback table (ETag validator).

        Summed across shards — each write bumps exactly one shard by one,
        so the value matches what a single unsharded table would read.
        """
        return self._db.version("feedback")

    def record(
        self,
        user_id: str,
        content_id: str,
        kind: FeedbackKind,
        *,
        timestamp_s: float,
        listened_s: float = 0.0,
        is_clip: bool = True,
    ) -> FeedbackEvent:
        """Store a new feedback event and return it."""
        event = FeedbackEvent(
            event_id=new_id("fb"),
            user_id=user_id,
            content_id=content_id,
            kind=kind,
            timestamp_s=timestamp_s,
            listened_s=listened_s,
            is_clip=is_clip,
        )
        self._table_for(user_id).insert(
            {
                "event_id": event.event_id,
                "user_id": event.user_id,
                "content_id": event.content_id,
                "kind": event.kind.value,
                "timestamp_s": event.timestamp_s,
                "listened_s": event.listened_s,
                "is_clip": event.is_clip,
            }
        )
        return event

    def __len__(self) -> int:
        return sum(len(table) for table in self._db.tables("feedback"))

    def events_for_user(self, user_id: str) -> List[FeedbackEvent]:
        """All events of one user, time-ordered.

        Served straight from the sorted ``(user_id, timestamp_s)`` index —
        a prefix range walk, no re-sort.
        """
        rows = self._table_for(user_id).find_range(
            "user_time", low=(user_id,), high=(user_id,), high_inclusive=True
        )
        return [self._to_event(row) for row in rows]

    def events_page_for_user(
        self, user_id: str, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Page[FeedbackEvent]:
        """One time-ordered page of a user's feedback history.

        A keyset cursor over the sorted ``(user_id, timestamp_s)`` index:
        the token resumes strictly after the last event served, so the
        walk is stable while new feedback keeps arriving.  One user's
        events all live on the owning shard, so the token format is
        identical across shard layouts.
        """
        page = self._table_for(user_id).page_by_index(
            "user_time",
            limit=limit,
            after_token=cursor,
            low=(user_id,),
            high=(user_id,),
            high_inclusive=True,
        )
        return Page(
            items=[self._to_event(row) for row in page.items],
            next_token=page.next_token,
        )

    def events_for_content(self, content_id: str) -> List[FeedbackEvent]:
        """All events about one content item.

        A fan-out read: every shard answers from its ``content_id`` hash
        bucket and the union stable-sorts by timestamp (identical to the
        unsharded order for a single shard).
        """
        events = [
            self._to_event(row)
            for table in self._db.tables("feedback")
            for row in table.find_by_index("content_id", content_id)
        ]
        events.sort(key=lambda event: event.timestamp_s)
        return events

    def events_page(
        self, *, cursor: Optional[str] = None, limit: int = 50
    ) -> Page[FeedbackEvent]:
        """One globally time-ordered page across all users.

        The merged keyset walk: each shard's sorted ``(timestamp_s,)``
        index streams independently and the router k-way merges them; the
        token carries one resume position per shard (see
        :meth:`ShardedDatabase.page_by_index
        <repro.storage.sharding.ShardedDatabase.page_by_index>`).
        """
        page = self._db.page_by_index("feedback", "time", limit=limit, after_token=cursor)
        return Page(
            items=[self._to_event(row) for row in page.items],
            next_token=page.next_token,
        )

    def skip_rate(self, user_id: Optional[str] = None) -> float:
        """Fraction of terminal events (skip/complete/channel change) that are skips.

        This is the metric the paper's motivation targets: proactive
        personalization should decrease the propensity to skip or zap.
        """
        events = (
            self.events_for_user(user_id)
            if user_id is not None
            else [
                self._to_event(row)
                for table in self._db.tables("feedback")
                for row in table.rows()
            ]
        )
        terminal = [
            event
            for event in events
            if event.kind in (FeedbackKind.SKIP, FeedbackKind.COMPLETED, FeedbackKind.CHANNEL_CHANGE)
        ]
        if not terminal:
            return 0.0
        negative = sum(
            1 for event in terminal if event.kind in (FeedbackKind.SKIP, FeedbackKind.CHANNEL_CHANGE)
        )
        return negative / len(terminal)

    def positive_content_ids(self, user_id: str) -> List[str]:
        """Content the user reacted positively to (most recent last)."""
        return [
            event.content_id for event in self.events_for_user(user_id) if event.is_positive
        ]

    def negative_content_ids(self, user_id: str) -> List[str]:
        """Content the user skipped or disliked."""
        return [
            event.content_id for event in self.events_for_user(user_id) if not event.is_positive
        ]

    @classmethod
    def event_from_row(cls, row: Dict) -> FeedbackEvent:
        """Rebuild the event a stored row encodes (the WAL replay entry)."""
        return cls._to_event(row)

    @staticmethod
    def _to_event(row: Dict) -> FeedbackEvent:
        return FeedbackEvent(
            event_id=row["event_id"],
            user_id=row["user_id"],
            content_id=row["content_id"],
            kind=FeedbackKind(row["kind"]),
            timestamp_s=row["timestamp_s"],
            listened_s=row["listened_s"],
            is_clip=row["is_clip"],
        )

    # Snapshot / restore ---------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """A JSON-serializable payload of the whole feedbacks DB.

        Database-shaped with all shards' rows merged, so it restores into
        any shard layout (rows re-route by user id on load).
        """
        return self._db.snapshot()

    def restore(self, payload: Dict[str, Any]) -> None:
        """Reload a :meth:`snapshot` payload, replacing all events."""
        self._db.restore(payload)

    def snapshot_shard(self, shard: int) -> Dict[str, Any]:
        """One shard's events — the migration/rebalancing unit."""
        return self._db.snapshot_shard(shard)

    def restore_shard(self, shard: int, payload: Dict[str, Any]) -> None:
        """Replace one shard's events without touching the other shards."""
        self._db.restore_shard(shard, payload)

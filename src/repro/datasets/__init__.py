"""Synthetic data generators replacing the paper's proprietary inputs.

* :mod:`repro.datasets.broadcaster` — the Rai-like broadcaster: 10 live
  services, daily programme schedules and the daily podcast/clip production
  (with synthetic speech texts for news/talk content and geographic tags for
  local items);
* :mod:`repro.datasets.mobility` — commuting listeners on the synthetic
  city: home/work anchors, repeated drives with GPS noise, Lockito-style
  simulated drives for the live scenarios;
* :mod:`repro.datasets.world` — one call that assembles a fully populated
  server (content + users + history) for the examples and benches.
"""

from repro.datasets.broadcaster import BroadcasterConfig, SyntheticBroadcaster
from repro.datasets.mobility import CommuterConfig, CommuterGenerator, SimulatedDrive
from repro.datasets.world import SyntheticWorld, WorldConfig, build_world

__all__ = [
    "BroadcasterConfig",
    "CommuterConfig",
    "CommuterGenerator",
    "SimulatedDrive",
    "SyntheticBroadcaster",
    "SyntheticWorld",
    "WorldConfig",
    "build_world",
]

"""Synthetic commuter mobility.

Replaces the GPS traces the paper collects from real listeners' phones.
Each commuter gets home and work anchors on the synthetic city, and the
generator produces repeated commute drives along road-network routes with
realistic departure-time jitter, speed variation and GPS noise — enough
signal for the trajectory mining and prediction pipeline to learn recurring
routes, and enough noise for the problem to be non-trivial.

A :class:`SimulatedDrive` plays the role of the Lockito fake-location app
used in the demo: it emits fixes along a planned route as simulated time
advances.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple

from repro.errors import ValidationError
from repro.geo import GeoPoint, Polyline
from repro.geo.geodesy import destination_point
from repro.roadnet.generator import City
from repro.roadnet.routing import Route, RoutePlanner
from repro.spatialdb import GpsFix
from repro.util.rng import DeterministicRng
from repro.util.timeutils import SECONDS_PER_DAY, SECONDS_PER_HOUR


@dataclass(frozen=True)
class CommuterConfig:
    """Parameters of the commuter population generator."""

    seed: int = 29
    commuters: int = 20
    history_days: int = 10
    fix_interval_s: float = 15.0
    gps_noise_m: float = 8.0
    min_home_work_distance_m: float = 3500.0
    traffic_factor: float = 0.55
    morning_departure_s: float = 7.5 * SECONDS_PER_HOUR
    evening_departure_s: float = 17.75 * SECONDS_PER_HOUR
    departure_jitter_s: float = 900.0
    speed_variation: float = 0.2
    skip_day_probability: float = 0.1

    def __post_init__(self) -> None:
        if self.commuters < 1:
            raise ValidationError("commuters must be >= 1")
        if self.history_days < 1:
            raise ValidationError("history_days must be >= 1")
        if self.fix_interval_s <= 0:
            raise ValidationError("fix_interval_s must be > 0")
        if self.gps_noise_m < 0:
            raise ValidationError("gps_noise_m must be >= 0")
        if not 0.0 <= self.skip_day_probability < 1.0:
            raise ValidationError("skip_day_probability must be in [0, 1)")
        if self.min_home_work_distance_m < 0:
            raise ValidationError("min_home_work_distance_m must be >= 0")
        if not 0.1 <= self.traffic_factor <= 1.0:
            raise ValidationError("traffic_factor must be in [0.1, 1.0]")


@dataclass(frozen=True)
class Commuter:
    """One synthetic listener with home/work anchors."""

    user_id: str
    home: GeoPoint
    work: GeoPoint
    preferred_categories: Tuple[str, ...]
    disliked_categories: Tuple[str, ...]


@dataclass
class SimulatedDrive:
    """A Lockito-style simulated drive along a planned route."""

    user_id: str
    route: Route
    departure_s: float
    mean_speed_mps: float
    fix_interval_s: float = 15.0
    gps_noise_m: float = 8.0
    _rng: DeterministicRng = field(default_factory=lambda: DeterministicRng(0))

    @property
    def expected_duration_s(self) -> float:
        """Nominal duration of the full drive at the drawn mean speed."""
        if self.mean_speed_mps <= 0:
            raise ValidationError("mean_speed_mps must be > 0")
        return self.route.length_m / self.mean_speed_mps

    @property
    def arrival_s(self) -> float:
        """Nominal arrival time."""
        return self.departure_s + self.expected_duration_s

    def fixes(self, *, until_s: Optional[float] = None) -> List[GpsFix]:
        """GPS fixes from departure up to ``until_s`` (default: full drive)."""
        end = self.arrival_s if until_s is None else min(until_s, self.arrival_s)
        result: List[GpsFix] = []
        geometry = self.route.geometry
        timestamp = self.departure_s
        while timestamp <= end:
            elapsed = timestamp - self.departure_s
            distance = min(geometry.length_m, elapsed * self.mean_speed_mps)
            point = geometry.point_at_distance(distance)
            noisy = self._apply_noise(point)
            result.append(
                GpsFix(
                    user_id=self.user_id,
                    timestamp_s=timestamp,
                    position=noisy,
                    speed_mps=self.mean_speed_mps * self._rng.uniform(0.85, 1.15),
                )
            )
            timestamp += self.fix_interval_s
        return result

    def position_at(self, timestamp_s: float) -> GeoPoint:
        """Noise-free position along the route at a given time (clamped)."""
        elapsed = max(0.0, timestamp_s - self.departure_s)
        distance = min(self.route.geometry.length_m, elapsed * self.mean_speed_mps)
        return self.route.geometry.point_at_distance(distance)

    def _apply_noise(self, point: GeoPoint) -> GeoPoint:
        if self.gps_noise_m <= 0:
            return point
        bearing = self._rng.uniform(0.0, 360.0)
        distance = abs(self._rng.gauss(0.0, self.gps_noise_m))
        return destination_point(point, bearing, distance)


class CommuterGenerator:
    """Builds the commuter population and their historical GPS data."""

    def __init__(self, city: City, config: CommuterConfig = CommuterConfig()) -> None:
        self._city = city
        self._config = config
        self._rng = DeterministicRng(config.seed)
        self._planner = RoutePlanner(city.network)

    @property
    def planner(self) -> RoutePlanner:
        """The route planner over the city's network."""
        return self._planner

    def generate_commuters(self, *, category_pool: Optional[List[str]] = None) -> List[Commuter]:
        """Create the commuter population with home/work anchors and tastes."""
        from repro.content.categories import category_names

        pool = category_pool or category_names()
        nodes = self._city.network.node_ids()
        commuters: List[Commuter] = []
        for index in range(self._config.commuters):
            rng = self._rng.fork("commuter", index)
            home_node = self._city.network.node(rng.choice(nodes))
            work_node = self._city.network.node(rng.choice(nodes))
            # Keep home and work reasonably separated so commutes are non-trivial.
            min_separation = min(
                self._config.min_home_work_distance_m,
                0.6 * self._city.config.grid_rows * self._city.config.block_size_m,
            )
            attempts = 0
            while (
                home_node.position.distance_m(work_node.position) < min_separation
                and attempts < 40
            ):
                work_node = self._city.network.node(rng.choice(nodes))
                attempts += 1
            preferred = tuple(rng.sample(pool, 4))
            remaining = [name for name in pool if name not in preferred]
            disliked = tuple(rng.sample(remaining, 2))
            commuters.append(
                Commuter(
                    user_id=f"user-{index + 1:03d}",
                    home=home_node.position,
                    work=work_node.position,
                    preferred_categories=preferred,
                    disliked_categories=disliked,
                )
            )
        return commuters

    def commute_route(self, commuter: Commuter, *, reverse: bool = False) -> Route:
        """The commuter's usual route (home→work, or work→home)."""
        origin = commuter.work if reverse else commuter.home
        destination = commuter.home if reverse else commuter.work
        return self._planner.route_between_points(origin, destination)

    def historical_fixes(self, commuter: Commuter) -> List[GpsFix]:
        """GPS history over ``history_days`` of commuting for one listener.

        Each day contributes a morning home→work drive and an evening
        work→home drive (occasionally skipped), with jittered departures and
        speeds.  Fixes are returned in time order across all days.
        """
        config = self._config
        fixes: List[GpsFix] = []
        morning_route = self.commute_route(commuter)
        evening_route = self.commute_route(commuter, reverse=True)
        for day in range(config.history_days):
            day_offset = day * SECONDS_PER_DAY
            rng = self._rng.fork("history", commuter.user_id, day)
            if not rng.bernoulli(config.skip_day_probability):
                fixes.extend(
                    self._drive_for(
                        commuter,
                        morning_route,
                        day_offset + config.morning_departure_s + rng.uniform(
                            -config.departure_jitter_s, config.departure_jitter_s
                        ),
                        rng.fork("morning"),
                    ).fixes()
                )
            if not rng.bernoulli(config.skip_day_probability):
                fixes.extend(
                    self._drive_for(
                        commuter,
                        evening_route,
                        day_offset + config.evening_departure_s + rng.uniform(
                            -config.departure_jitter_s, config.departure_jitter_s
                        ),
                        rng.fork("evening"),
                    ).fixes()
                )
        fixes.sort(key=lambda fix: fix.timestamp_s)
        return fixes

    def live_drive(
        self,
        commuter: Commuter,
        *,
        day: int,
        departure_s: Optional[float] = None,
        reverse: bool = False,
    ) -> SimulatedDrive:
        """A fresh simulated drive on a given day (the 'today' of a scenario)."""
        config = self._config
        rng = self._rng.fork("live", commuter.user_id, day, reverse)
        route = self.commute_route(commuter, reverse=reverse)
        base_departure = (
            config.evening_departure_s if reverse else config.morning_departure_s
        )
        departure = (
            departure_s
            if departure_s is not None
            else day * SECONDS_PER_DAY + base_departure + rng.uniform(
                -config.departure_jitter_s, config.departure_jitter_s
            )
        )
        return self._drive_for(commuter, route, departure, rng)

    def _drive_for(
        self, commuter: Commuter, route: Route, departure_s: float, rng: DeterministicRng
    ) -> SimulatedDrive:
        config = self._config
        # Free-flow route speed scaled down by urban traffic: the planner's
        # edge speeds are speed limits, not what a commuter actually averages.
        nominal_speed = max(4.0, route.mean_speed_mps * config.traffic_factor)
        speed = nominal_speed * rng.uniform(1.0 - config.speed_variation, 1.0 + config.speed_variation)
        return SimulatedDrive(
            user_id=commuter.user_id,
            route=route,
            departure_s=departure_s,
            mean_speed_mps=speed,
            fix_interval_s=config.fix_interval_s,
            gps_noise_m=config.gps_noise_m,
            _rng=rng.fork("noise"),
        )

"""The synthetic broadcaster: services, schedules and the daily clip output.

The paper's system is fed by "10 live 96kbps audio streams" and "the
editorial version of more than 100 podcasts created every day".  This module
generates an equivalent synthetic catalogue:

* 10 linear services with day-long programme schedules;
* a configurable number of daily clips spread over the 30 categories:
  editorially tagged podcasts, speech-heavy news items (with ground-truth
  text so the ASR + classification path is exercised), music items,
  advertisements, and geo-tagged local items anchored to city POIs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.asr.corpus import SyntheticNewsCorpus
from repro.content.categories import category_names
from repro.content.model import AudioClip, ContentKind, LiveProgramme, RadioService
from repro.content.radiodns import Bearer, ServiceIdentifier, ServiceInformation
from repro.errors import ValidationError
from repro.geo import GeoPoint
from repro.roadnet.generator import City
from repro.util.ids import new_id
from repro.util.rng import DeterministicRng
from repro.util.timeutils import SECONDS_PER_HOUR, TimeWindow

#: The ten linear services, loosely mirroring a public broadcaster's lineup.
_SERVICE_SPECS: Tuple[Tuple[str, str], ...] = (
    ("radio-uno", "general"),
    ("radio-due", "entertainment"),
    ("radio-tre", "culture"),
    ("radio-news", "news"),
    ("radio-sport", "sport"),
    ("radio-classica", "music"),
    ("radio-pop", "music"),
    ("radio-kids", "entertainment"),
    ("radio-local", "news"),
    ("radio-business", "news"),
)

#: Typical programme titles per service genre, used to label the schedule.
_PROGRAMME_TITLES: Dict[str, List[str]] = {
    "general": ["Morning Journal", "Wikiradio", "Afternoon Forum", "Evening Review"],
    "entertainment": ["The Rabbit's Roar", "Comedy Hour", "Quiz Time", "Night Lounge"],
    "culture": ["Decanter", "Book Club", "Theatre Night", "Art Stories"],
    "news": ["News at the Hour", "Economy Today", "World Report", "Local Voices"],
    "sport": ["Football Talk", "Motor Week", "Stadium Live", "Sport Night"],
    "music": ["Classical Morning", "Jazz Corner", "Pop Parade", "Opera Evening"],
}


@dataclass(frozen=True)
class BroadcasterConfig:
    """Parameters of the synthetic broadcaster."""

    seed: int = 17
    clips_per_day: int = 120
    geo_tagged_fraction: float = 0.25
    speech_fraction: float = 0.5
    programme_length_s: float = 1800.0
    day_start_s: float = 6 * SECONDS_PER_HOUR
    day_end_s: float = 24 * SECONDS_PER_HOUR
    clip_min_duration_s: float = 120.0
    clip_max_duration_s: float = 900.0

    def __post_init__(self) -> None:
        if self.clips_per_day < 1:
            raise ValidationError("clips_per_day must be >= 1")
        if not 0.0 <= self.geo_tagged_fraction <= 1.0:
            raise ValidationError("geo_tagged_fraction must be in [0, 1]")
        if not 0.0 <= self.speech_fraction <= 1.0:
            raise ValidationError("speech_fraction must be in [0, 1]")
        if self.clip_min_duration_s <= 0 or self.clip_max_duration_s <= self.clip_min_duration_s:
            raise ValidationError("clip duration bounds must satisfy 0 < min < max")


@dataclass
class GeneratedCatalogue:
    """Everything the broadcaster produced for one synthetic day."""

    services: List[RadioService] = field(default_factory=list)
    programmes: List[LiveProgramme] = field(default_factory=list)
    schedule_windows: Dict[str, TimeWindow] = field(default_factory=dict)  # programme_id -> window
    clips: List[AudioClip] = field(default_factory=list)
    speech_texts: Dict[str, str] = field(default_factory=dict)  # clip_id -> ground-truth text
    true_categories: Dict[str, str] = field(default_factory=dict)  # clip_id -> generating category
    service_information: List[ServiceInformation] = field(default_factory=list)


class SyntheticBroadcaster:
    """Generates the broadcaster's daily output."""

    def __init__(
        self,
        config: BroadcasterConfig = BroadcasterConfig(),
        *,
        corpus: Optional[SyntheticNewsCorpus] = None,
        city: Optional[City] = None,
    ) -> None:
        self._config = config
        self._rng = DeterministicRng(config.seed)
        self._corpus = corpus or SyntheticNewsCorpus(seed=config.seed + 1)
        self._city = city

    @property
    def corpus(self) -> SyntheticNewsCorpus:
        """The text corpus used for speech content (shared with the classifier)."""
        return self._corpus

    def generate(self) -> GeneratedCatalogue:
        """Produce the full daily catalogue."""
        catalogue = GeneratedCatalogue()
        self._generate_services(catalogue)
        self._generate_schedules(catalogue)
        self._generate_clips(catalogue)
        return catalogue

    # Services and schedules --------------------------------------------------

    def _generate_services(self, catalogue: GeneratedCatalogue) -> None:
        for index, (service_id, genre) in enumerate(_SERVICE_SPECS):
            service = RadioService(
                service_id=service_id,
                name=service_id.replace("-", " ").title(),
                bitrate_kbps=96,
                genre=genre,
            )
            catalogue.services.append(service)
            info = ServiceInformation(
                service_id=service_id,
                name=service.name,
                identifiers=[
                    ServiceIdentifier(
                        system="fm", pi_code=f"52{index:02d}", frequency_khz=87500 + index * 400
                    )
                ],
            )
            info.add_bearer(Bearer(bearer_id=f"{service_id}-dab", kind="dab", cost_rank=0))
            info.add_bearer(
                Bearer(
                    bearer_id=f"{service_id}-ip",
                    kind="ip",
                    cost_rank=1,
                    url=f"https://streams.example.org/{service_id}.mp3",
                )
            )
            catalogue.service_information.append(info)

    def _generate_schedules(self, catalogue: GeneratedCatalogue) -> None:
        config = self._config
        for service in catalogue.services:
            titles = _PROGRAMME_TITLES.get(service.genre, _PROGRAMME_TITLES["general"])
            cursor = config.day_start_s
            slot = 0
            while cursor + config.programme_length_s <= config.day_end_s:
                title = titles[slot % len(titles)]
                categories = self._programme_categories(service.genre, slot)
                programme = LiveProgramme(
                    programme_id=new_id("prog"),
                    service_id=service.service_id,
                    title=f"{title} ({slot + 1})",
                    categories=categories,
                )
                window = TimeWindow(cursor, cursor + config.programme_length_s)
                catalogue.programmes.append(programme)
                catalogue.schedule_windows[programme.programme_id] = window
                cursor += config.programme_length_s
                slot += 1

    def _programme_categories(self, genre: str, slot: int) -> List[str]:
        by_genre: Dict[str, List[str]] = {
            "general": ["news-national", "talk-show", "culture", "technology"],
            "entertainment": ["comedy", "talk-show", "music-pop"],
            "culture": ["culture", "art", "literature", "food-and-wine"],
            "news": ["news-national", "news-local", "economics", "politics"],
            "sport": ["sport-football", "sport-motors", "sport-other"],
            "music": ["music-classical", "music-jazz", "music-pop", "music-opera"],
        }
        pool = by_genre.get(genre, ["talk-show"])
        return [pool[slot % len(pool)]]

    # Clips ---------------------------------------------------------------------

    def _generate_clips(self, catalogue: GeneratedCatalogue) -> None:
        config = self._config
        names = category_names()
        poi_locations: List[GeoPoint] = (
            [self._city.pois[name] for name in self._city.poi_names()] if self._city else []
        )
        for index in range(config.clips_per_day):
            rng = self._rng.fork("clip", index)
            category = names[index % len(names)]
            duration = rng.uniform(config.clip_min_duration_s, config.clip_max_duration_s)
            published = rng.uniform(0.0, config.day_start_s + 6 * SECONDS_PER_HOUR)
            clip_id = new_id("clip")
            is_speech = rng.bernoulli(config.speech_fraction)
            is_geo = bool(poi_locations) and rng.bernoulli(config.geo_tagged_fraction)
            kind = self._clip_kind(category, is_speech, rng)
            geo_location = rng.choice(poi_locations) if is_geo else None
            clip = AudioClip(
                clip_id=clip_id,
                title=f"{category.replace('-', ' ').title()} clip {index + 1}",
                kind=kind,
                duration_s=duration,
                category_scores={} if is_speech else {category: 1.0},
                geo_location=geo_location,
                geo_radius_m=2500.0 if is_geo else None,
                published_s=published,
            )
            catalogue.clips.append(clip)
            catalogue.true_categories[clip_id] = category
            if is_speech:
                document = self._corpus.generate_document(
                    category, word_count=rng.randint(80, 200), rng=rng.fork("text")
                )
                catalogue.speech_texts[clip_id] = document.text

    @staticmethod
    def _clip_kind(category: str, is_speech: bool, rng: DeterministicRng) -> ContentKind:
        if category.startswith("music"):
            return ContentKind.MUSIC
        if category.startswith("news") or category == "traffic-and-weather":
            return ContentKind.NEWS
        if rng.bernoulli(0.08):
            return ContentKind.ADVERTISEMENT
        return ContentKind.PODCAST

"""The assembled synthetic world: city + broadcaster + listeners + history.

``build_world`` returns a fully populated :class:`SyntheticWorld` whose
server has: the 30-category classifier trained on the synthetic corpus, the
daily catalogue ingested (speech items classified from noisy transcripts),
the commuter population registered with seeded preferences and feedback
history, and all historical GPS data loaded so mobility models can be built.
Examples and benches start from here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.content.model import AudioClip
from repro.datasets.broadcaster import BroadcasterConfig, GeneratedCatalogue, SyntheticBroadcaster
from repro.datasets.mobility import Commuter, CommuterConfig, CommuterGenerator
from repro.errors import ValidationError
from repro.pipeline.server import PphcrServer, ServerConfig
from repro.roadnet.generator import City, CityGeneratorConfig, generate_city
from repro.users.feedback import FeedbackKind
from repro.users.profile import UserProfile
from repro.util.rng import DeterministicRng
from repro.util.timeutils import SECONDS_PER_DAY


@dataclass(frozen=True)
class WorldConfig:
    """Top-level knobs of the synthetic world."""

    seed: int = 42
    city: CityGeneratorConfig = CityGeneratorConfig()
    broadcaster: BroadcasterConfig = BroadcasterConfig()
    commuters: CommuterConfig = CommuterConfig()
    server: ServerConfig = ServerConfig()
    classifier_documents_per_category: int = 12
    feedback_events_per_user: int = 30
    load_gps_history: bool = True

    def __post_init__(self) -> None:
        if self.classifier_documents_per_category < 1:
            raise ValidationError("classifier_documents_per_category must be >= 1")
        if self.feedback_events_per_user < 0:
            raise ValidationError("feedback_events_per_user must be >= 0")


@dataclass
class SyntheticWorld:
    """Everything the examples and benches need, already wired together."""

    config: WorldConfig
    city: City
    server: PphcrServer
    catalogue: GeneratedCatalogue
    commuters: List[Commuter]
    commuter_generator: CommuterGenerator
    clips_by_id: Dict[str, AudioClip] = field(default_factory=dict)

    @property
    def history_days(self) -> int:
        """Number of days of GPS history loaded per commuter."""
        return self.config.commuters.history_days

    @property
    def today(self) -> int:
        """Index of the first day with no pre-loaded history (the 'live' day)."""
        return self.config.commuters.history_days

    @property
    def today_start_s(self) -> float:
        """Timestamp of midnight on the live day."""
        return self.today * SECONDS_PER_DAY

    def commuter(self, user_id: str) -> Commuter:
        """Look up a commuter by user id."""
        for commuter in self.commuters:
            if commuter.user_id == user_id:
                return commuter
        raise ValidationError(f"unknown commuter {user_id!r}")

    def live_drives(self, day: Optional[int] = None) -> List[tuple]:
        """``(commuter, drive)`` pairs for every commuter's live-day commute.

        Each drive comes from the stateless
        :meth:`~repro.datasets.mobility.CommuterGenerator.live_drive` fork,
        so the list is deterministic — but a ``SimulatedDrive`` consumes
        its own noise rng when sampled, so callers must invoke
        ``drive.fixes()`` at most once per returned drive.
        """
        live_day = self.today if day is None else day
        return [
            (commuter, self.commuter_generator.live_drive(commuter, day=live_day))
            for commuter in self.commuters
        ]


def build_world(config: WorldConfig = WorldConfig()) -> SyntheticWorld:
    """Assemble a fully populated synthetic world."""
    rng = DeterministicRng(config.seed)
    city = generate_city(config.city)
    broadcaster = SyntheticBroadcaster(config.broadcaster, city=city)
    catalogue = broadcaster.generate()

    server = PphcrServer(city=city, config=config.server)

    # 1. Train the 30-category classifier on the synthetic corpus.
    train_docs, _test_docs = broadcaster.corpus.train_test_split(
        documents_per_category=config.classifier_documents_per_category
    )
    server.train_classifier([d.text for d in train_docs], [d.category for d in train_docs])

    # 2. Register the broadcaster's services, programmes and schedules.
    for service in catalogue.services:
        server.content.add_service(service)
    for programme in catalogue.programmes:
        server.content.add_programme(programme)
        server.content.schedule_programme(
            programme.programme_id, catalogue.schedule_windows[programme.programme_id]
        )

    # 3. Ingest the daily clips (speech clips get ASR + classification).
    # The broadcaster generates publication times relative to its own day;
    # shift them so the catalogue is "yesterday and this morning's" output
    # relative to the live day, keeping it inside the candidate filter's
    # recency window regardless of how much GPS history was generated.
    from dataclasses import replace as _replace

    publish_offset_s = max(0, config.commuters.history_days - 1) * SECONDS_PER_DAY
    shifted_clips = [
        _replace(clip, published_s=clip.published_s + publish_offset_s)
        for clip in catalogue.clips
    ]
    catalogue.clips = shifted_clips
    server.ingest_clips(shifted_clips, speech_texts=catalogue.speech_texts)
    server.refresh_text_model()

    # 4. Create the commuter population with seeded preferences and feedback.
    commuter_generator = CommuterGenerator(city, config.commuters)
    commuters = commuter_generator.generate_commuters()
    clips_by_id = {clip.clip_id: clip for clip in server.content.clips()}
    clips_by_category: Dict[str, List[AudioClip]] = {}
    for clip in server.content.clips():
        primary = clip.primary_category
        if primary is not None:
            clips_by_category.setdefault(primary, []).append(clip)

    for commuter in commuters:
        server.register_user(
            UserProfile(
                user_id=commuter.user_id,
                display_name=commuter.user_id.replace("-", " ").title(),
                home_service_id="radio-uno",
            )
        )
        # Seed through the manager (not the profile object directly) so the
        # onboarding delta is visible to the WAL when durability is on.
        server.users.seed_preferences(
            commuter.user_id,
            list(commuter.preferred_categories),
            list(commuter.disliked_categories),
        )
        _seed_feedback_history(
            server,
            commuter,
            clips_by_category,
            events=config.feedback_events_per_user,
            rng=rng.fork("feedback", commuter.user_id),
        )

    # 5. Load the GPS history and build mobility models.
    if config.load_gps_history:
        for commuter in commuters:
            fixes = commuter_generator.historical_fixes(commuter)
            server.users.ingest_fixes(fixes)
            if len(fixes) >= 2:
                server.rebuild_mobility_model(commuter.user_id)

    return SyntheticWorld(
        config=config,
        city=city,
        server=server,
        catalogue=catalogue,
        commuters=commuters,
        commuter_generator=commuter_generator,
        clips_by_id=clips_by_id,
    )


def _seed_feedback_history(
    server: PphcrServer,
    commuter: Commuter,
    clips_by_category: Dict[str, List[AudioClip]],
    *,
    events: int,
    rng: DeterministicRng,
) -> None:
    """Simulate past listening: likes on preferred categories, skips on disliked.

    Only the older half of each category's clips is used for history, so the
    newer half stays unheard and remains eligible for recommendation (the
    candidate filter excludes already-heard content).
    """
    if events <= 0:
        return

    def history_pool(category: str):
        clips = sorted(clips_by_category[category], key=lambda c: c.published_s)
        half = max(1, len(clips) // 2)
        return clips[:half]

    preferred = [c for c in commuter.preferred_categories if c in clips_by_category]
    disliked = [c for c in commuter.disliked_categories if c in clips_by_category]
    history_span_s = SECONDS_PER_DAY * 5.0
    for index in range(events):
        timestamp = rng.uniform(0.0, history_span_s)
        if preferred and rng.bernoulli(0.7):
            category = rng.choice(preferred)
            clip = rng.choice(history_pool(category))
            kind = FeedbackKind.LIKE if rng.bernoulli(0.4) else FeedbackKind.COMPLETED
            listened = clip.duration_s
        elif disliked:
            category = rng.choice(disliked)
            clip = rng.choice(history_pool(category))
            kind = FeedbackKind.SKIP if rng.bernoulli(0.8) else FeedbackKind.DISLIKE
            listened = rng.uniform(5.0, min(60.0, clip.duration_s))
        else:
            continue
        server.users.record_feedback(
            commuter.user_id,
            clip.clip_id,
            kind,
            timestamp_s=timestamp,
            listened_s=listened,
        )

"""Great-circle geodesy on the WGS84 sphere approximation.

The accuracy of the spherical model (a few meters over the distances that
matter for commuting trajectories) is more than sufficient for the
trajectory mining and geographic relevance computations the paper performs.
"""

from __future__ import annotations

import math
from typing import Iterable, List

from repro.errors import GeometryError
from repro.geo.point import GeoPoint

#: Mean Earth radius in meters (IUGG).
EARTH_RADIUS_M = 6371008.8


def haversine_m(a: GeoPoint, b: GeoPoint) -> float:
    """Great-circle distance between two points in meters."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2.0) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2.0) ** 2
    h = min(1.0, h)
    return 2.0 * EARTH_RADIUS_M * math.asin(math.sqrt(h))


def initial_bearing_deg(a: GeoPoint, b: GeoPoint) -> float:
    """Initial bearing from ``a`` to ``b`` in degrees clockwise from north."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlon = lon2 - lon1
    x = math.sin(dlon) * math.cos(lat2)
    y = math.cos(lat1) * math.sin(lat2) - math.sin(lat1) * math.cos(lat2) * math.cos(dlon)
    bearing = math.degrees(math.atan2(x, y))
    return bearing % 360.0


def destination_point(origin: GeoPoint, bearing_deg: float, distance_m: float) -> GeoPoint:
    """Point reached travelling ``distance_m`` from ``origin`` at ``bearing_deg``."""
    if distance_m < 0:
        raise GeometryError(f"distance_m must be >= 0, got {distance_m}")
    angular = distance_m / EARTH_RADIUS_M
    bearing = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular) + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    lon2_deg = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat2), lon2_deg)


def midpoint(a: GeoPoint, b: GeoPoint) -> GeoPoint:
    """Geographic midpoint of two points."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlon = lon2 - lon1
    bx = math.cos(lat2) * math.cos(dlon)
    by = math.cos(lat2) * math.sin(dlon)
    lat3 = math.atan2(
        math.sin(lat1) + math.sin(lat2),
        math.sqrt((math.cos(lat1) + bx) ** 2 + by**2),
    )
    lon3 = lon1 + math.atan2(by, math.cos(lat1) + bx)
    lon3_deg = (math.degrees(lon3) + 540.0) % 360.0 - 180.0
    return GeoPoint(math.degrees(lat3), lon3_deg)


def centroid(points: Iterable[GeoPoint]) -> GeoPoint:
    """Arithmetic centroid of a set of nearby points (planar approximation)."""
    point_list: List[GeoPoint] = list(points)
    if not point_list:
        raise GeometryError("centroid requires at least one point")
    lat = sum(p.lat for p in point_list) / len(point_list)
    lon = sum(p.lon for p in point_list) / len(point_list)
    return GeoPoint(lat, lon)


def path_length_m(points: Iterable[GeoPoint]) -> float:
    """Total length of a polyline described by consecutive points."""
    total = 0.0
    previous: GeoPoint = None  # type: ignore[assignment]
    for point in points:
        if previous is not None:
            total += haversine_m(previous, point)
        previous = point
    return total

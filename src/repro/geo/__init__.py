"""Geospatial primitives used by the tracking DB and trajectory mining.

This package is the reproduction's substitute for the PostGIS geometry layer
the paper relies on: geographic points, haversine geodesy, bounding boxes,
polylines with projection/interpolation, Ramer-Douglas-Peucker
simplification and a uniform grid spatial index.
"""

from repro.geo.bbox import BoundingBox
from repro.geo.geodesy import (
    EARTH_RADIUS_M,
    destination_point,
    haversine_m,
    initial_bearing_deg,
    midpoint,
)
from repro.geo.grid_index import GridIndex
from repro.geo.point import GeoPoint
from repro.geo.polyline import Polyline
from repro.geo.projection import LocalProjection
from repro.geo.rdp import rdp_indices, rdp_simplify

__all__ = [
    "BoundingBox",
    "EARTH_RADIUS_M",
    "GeoPoint",
    "GridIndex",
    "LocalProjection",
    "Polyline",
    "destination_point",
    "haversine_m",
    "initial_bearing_deg",
    "midpoint",
    "rdp_indices",
    "rdp_simplify",
]

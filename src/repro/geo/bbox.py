"""Axis-aligned geographic bounding boxes."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import GeometryError
from repro.geo.point import GeoPoint


@dataclass(frozen=True)
class BoundingBox:
    """An axis-aligned box in latitude/longitude space.

    Longitude wrap-around at the antimeridian is not supported: the synthetic
    cities used by the reproduction are far from ±180°, matching the paper's
    Italian deployment.
    """

    min_lat: float
    min_lon: float
    max_lat: float
    max_lon: float

    def __post_init__(self) -> None:
        if self.min_lat > self.max_lat or self.min_lon > self.max_lon:
            raise GeometryError(
                "bounding box min corner must be <= max corner: "
                f"({self.min_lat}, {self.min_lon}) vs ({self.max_lat}, {self.max_lon})"
            )

    @classmethod
    def from_points(cls, points: Iterable[GeoPoint]) -> "BoundingBox":
        """Smallest box containing every point."""
        point_list: List[GeoPoint] = list(points)
        if not point_list:
            raise GeometryError("cannot build a bounding box from zero points")
        lats = [p.lat for p in point_list]
        lons = [p.lon for p in point_list]
        return cls(min(lats), min(lons), max(lats), max(lons))

    @classmethod
    def around(cls, center: GeoPoint, half_side_m: float) -> "BoundingBox":
        """A box roughly ``2*half_side_m`` wide centred on ``center``."""
        import math

        from repro.geo.geodesy import EARTH_RADIUS_M

        if half_side_m < 0:
            raise GeometryError(f"half_side_m must be >= 0, got {half_side_m}")
        dlat = math.degrees(half_side_m / EARTH_RADIUS_M)
        cos_lat = max(0.01, math.cos(math.radians(center.lat)))
        dlon = math.degrees(half_side_m / (EARTH_RADIUS_M * cos_lat))
        return cls(
            max(-90.0, center.lat - dlat),
            center.lon - dlon,
            min(90.0, center.lat + dlat),
            center.lon + dlon,
        )

    @property
    def center(self) -> GeoPoint:
        """Geometric center of the box."""
        return GeoPoint(
            (self.min_lat + self.max_lat) / 2.0,
            (self.min_lon + self.max_lon) / 2.0,
        )

    def contains(self, point: GeoPoint) -> bool:
        """Whether the point lies inside or on the border of the box."""
        return (
            self.min_lat <= point.lat <= self.max_lat
            and self.min_lon <= point.lon <= self.max_lon
        )

    def intersects(self, other: "BoundingBox") -> bool:
        """Whether the two boxes overlap (touching counts)."""
        return not (
            other.min_lat > self.max_lat
            or other.max_lat < self.min_lat
            or other.min_lon > self.max_lon
            or other.max_lon < self.min_lon
        )

    def expanded(self, degrees: float) -> "BoundingBox":
        """A copy grown by ``degrees`` on every side."""
        if degrees < 0:
            raise GeometryError(f"degrees must be >= 0, got {degrees}")
        return BoundingBox(
            max(-90.0, self.min_lat - degrees),
            self.min_lon - degrees,
            min(90.0, self.max_lat + degrees),
            self.max_lon + degrees,
        )

    def union(self, other: "BoundingBox") -> "BoundingBox":
        """Smallest box containing both boxes."""
        return BoundingBox(
            min(self.min_lat, other.min_lat),
            min(self.min_lon, other.min_lon),
            max(self.max_lat, other.max_lat),
            max(self.max_lon, other.max_lon),
        )

"""Geographic point primitive."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

from repro.errors import GeometryError


@dataclass(frozen=True)
class GeoPoint:
    """A WGS84 latitude/longitude pair in decimal degrees.

    The class is immutable and hashable so points can be used as dictionary
    keys (e.g. stay-point centroids keyed by location).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        lat = float(self.lat)
        lon = float(self.lon)
        if math.isnan(lat) or math.isnan(lon) or math.isinf(lat) or math.isinf(lon):
            raise GeometryError(f"coordinates must be finite, got ({self.lat}, {self.lon})")
        if not -90.0 <= lat <= 90.0:
            raise GeometryError(f"latitude out of range [-90, 90]: {lat}")
        if not -180.0 <= lon <= 180.0:
            raise GeometryError(f"longitude out of range [-180, 180]: {lon}")
        object.__setattr__(self, "lat", lat)
        object.__setattr__(self, "lon", lon)

    def as_tuple(self) -> Tuple[float, float]:
        """Return ``(lat, lon)``."""
        return (self.lat, self.lon)

    def distance_m(self, other: "GeoPoint") -> float:
        """Great-circle distance to ``other`` in meters."""
        from repro.geo.geodesy import haversine_m

        return haversine_m(self, other)

    def offset(self, dlat: float, dlon: float) -> "GeoPoint":
        """Return a new point displaced by degree offsets (clamped to range)."""
        new_lat = min(90.0, max(-90.0, self.lat + dlat))
        new_lon = self.lon + dlon
        # Wrap longitude into [-180, 180].
        while new_lon > 180.0:
            new_lon -= 360.0
        while new_lon < -180.0:
            new_lon += 360.0
        return GeoPoint(new_lat, new_lon)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lat:.6f}, {self.lon:.6f})"

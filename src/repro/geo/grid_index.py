"""Uniform grid spatial index.

A simple but effective substitute for PostGIS' GiST index: points are hashed
into fixed-size latitude/longitude cells; radius and bounding-box queries
only visit the cells that can contain matches.  Cell size defaults to about
one kilometre, appropriate for city-scale listener tracking.
"""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Dict, Generic, Iterable, List, Optional, Set, Tuple, TypeVar

from repro.errors import GeometryError, NotFoundError
from repro.geo.bbox import BoundingBox
from repro.geo.geodesy import haversine_m
from repro.geo.point import GeoPoint

T = TypeVar("T")

#: Approximate meters per degree of latitude.
_METERS_PER_DEGREE_LAT = 111320.0


class GridIndex(Generic[T]):
    """Maps items with a geographic position into uniform grid cells."""

    def __init__(self, cell_size_m: float = 1000.0) -> None:
        if cell_size_m <= 0:
            raise GeometryError(f"cell_size_m must be > 0, got {cell_size_m}")
        self._cell_deg = cell_size_m / _METERS_PER_DEGREE_LAT
        self._cells: Dict[Tuple[int, int], Set[T]] = defaultdict(set)
        self._positions: Dict[T, GeoPoint] = {}

    def __len__(self) -> int:
        return len(self._positions)

    def __contains__(self, item: T) -> bool:
        return item in self._positions

    @property
    def cell_size_m(self) -> float:
        """The configured cell size (meters), recoverable for snapshots."""
        return self._cell_deg * _METERS_PER_DEGREE_LAT

    def _cell_of(self, point: GeoPoint) -> Tuple[int, int]:
        return (
            int(math.floor(point.lat / self._cell_deg)),
            int(math.floor(point.lon / self._cell_deg)),
        )

    def insert(self, item: T, position: GeoPoint) -> None:
        """Insert or move ``item`` to ``position``."""
        cell = self._cell_of(position)
        previous = self._positions.get(item)
        if previous is not None:
            # Moving items (latest-position tracking) overwhelmingly stay in
            # their current cell between updates; skip the bucket churn then.
            if self._cell_of(previous) == cell:
                self._positions[item] = position
                return
            self.remove(item)
        self._cells[cell].add(item)
        self._positions[item] = position

    def remove(self, item: T) -> None:
        """Remove ``item``; raises :class:`NotFoundError` if absent."""
        position = self._positions.pop(item, None)
        if position is None:
            raise NotFoundError(f"item {item!r} is not in the index")
        cell = self._cell_of(position)
        bucket = self._cells.get(cell)
        if bucket is not None:
            bucket.discard(item)
            if not bucket:
                del self._cells[cell]

    def position_of(self, item: T) -> GeoPoint:
        """Current position of ``item``."""
        position = self._positions.get(item)
        if position is None:
            raise NotFoundError(f"item {item!r} is not in the index")
        return position

    def clear(self) -> None:
        """Remove every item, in place.

        In place matters: long-lived callers (the context scorer's route
        pruning) capture the index object once, so clearing must never
        swap it for a fresh instance.
        """
        self._cells.clear()
        self._positions.clear()

    def items(self) -> Iterable[Tuple[T, GeoPoint]]:
        """Iterate over ``(item, position)`` pairs."""
        return list(self._positions.items())

    def _scan_extents(self, center: GeoPoint, radius_m: float) -> Tuple[int, int]:
        """How many cells either side of ``center`` a radius query must visit.

        A degree of longitude shrinks by cos(latitude), so a fixed metric
        radius spans more lon cells away from the equator; the lon extent is
        widened by 1/cos(lat) or high-latitude matches would be missed.
        """
        lat_cells = int(math.ceil((radius_m / _METERS_PER_DEGREE_LAT) / self._cell_deg)) + 1
        cos_lat = max(0.01, math.cos(math.radians(center.lat)))
        lon_cells = (
            int(math.ceil((radius_m / (_METERS_PER_DEGREE_LAT * cos_lat)) / self._cell_deg)) + 1
        )
        return lat_cells, lon_cells

    def _scan_radius(self, center: GeoPoint, radius_m: float) -> List[Tuple[T, float]]:
        """Unsorted ``(item, distance)`` pairs within ``radius_m`` of ``center``."""
        if radius_m < 0:
            raise GeometryError(f"radius_m must be >= 0, got {radius_m}")
        lat_cells, lon_cells = self._scan_extents(center, radius_m)
        center_cell = self._cell_of(center)
        results: List[Tuple[T, float]] = []
        for d_lat in range(-lat_cells, lat_cells + 1):
            for d_lon in range(-lon_cells, lon_cells + 1):
                cell = (center_cell[0] + d_lat, center_cell[1] + d_lon)
                for item in self._cells.get(cell, ()):
                    distance = haversine_m(center, self._positions[item])
                    if distance <= radius_m:
                        results.append((item, distance))
        return results

    def query_radius(self, center: GeoPoint, radius_m: float) -> List[Tuple[T, float]]:
        """All items within ``radius_m`` of ``center``, with distances, sorted."""
        results = self._scan_radius(center, radius_m)
        results.sort(key=lambda pair: pair[1])
        return results

    def query_radius_items(self, center: GeoPoint, radius_m: float) -> List[T]:
        """Items within ``radius_m`` of ``center`` — no distances, no sort.

        The cheap variant for density counting (e.g. DBSCAN region queries),
        where the caller only needs the members of an eps-neighbourhood and
        ordering them by distance would be wasted work.
        """
        return [item for item, _distance in self._scan_radius(center, radius_m)]

    def query_bbox(self, box: BoundingBox) -> List[T]:
        """All items whose position falls inside ``box``."""
        min_cell = (
            int(math.floor(box.min_lat / self._cell_deg)),
            int(math.floor(box.min_lon / self._cell_deg)),
        )
        max_cell = (
            int(math.floor(box.max_lat / self._cell_deg)),
            int(math.floor(box.max_lon / self._cell_deg)),
        )
        results: List[T] = []
        for cell_lat in range(min_cell[0], max_cell[0] + 1):
            for cell_lon in range(min_cell[1], max_cell[1] + 1):
                for item in self._cells.get((cell_lat, cell_lon), ()):
                    if box.contains(self._positions[item]):
                        results.append(item)
        return results

    def nearest(self, center: GeoPoint, *, max_radius_m: float = 50000.0) -> Optional[Tuple[T, float]]:
        """The closest item to ``center`` within ``max_radius_m`` (or ``None``).

        The search expands the radius geometrically, so a nearby hit is found
        without scanning the whole index.
        """
        if max_radius_m < 0:
            raise GeometryError(f"max_radius_m must be >= 0, got {max_radius_m}")
        if not self._positions:
            return None
        center_cell = self._cell_of(center)
        best: Optional[Tuple[T, float]] = None
        radius = min(1000.0, max_radius_m)
        # Extents (inclusive) already visited; each doubling only scans the
        # new ring of cells instead of re-querying the whole disc.
        seen_lat, seen_lon = -1, -1
        while True:
            lat_cells, lon_cells = self._scan_extents(center, radius)
            for d_lat in range(-lat_cells, lat_cells + 1):
                if abs(d_lat) <= seen_lat:
                    lon_range: Iterable[int] = list(range(-lon_cells, -seen_lon)) + list(
                        range(seen_lon + 1, lon_cells + 1)
                    )
                else:
                    lon_range = range(-lon_cells, lon_cells + 1)
                for d_lon in lon_range:
                    cell = (center_cell[0] + d_lat, center_cell[1] + d_lon)
                    for item in self._cells.get(cell, ()):
                        distance = haversine_m(center, self._positions[item])
                        if distance <= max_radius_m and (best is None or distance < best[1]):
                            best = (item, distance)
            seen_lat, seen_lon = lat_cells, lon_cells
            # Everything closer than ``radius`` has been visited, so a hit
            # inside it is guaranteed to be the global minimum.
            if best is not None and best[1] <= radius:
                return best
            if radius >= max_radius_m:
                return best
            radius = min(radius * 2.0, max_radius_m)

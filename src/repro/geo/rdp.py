"""Ramer-Douglas-Peucker polyline simplification.

The paper simplifies raw GPS trajectories with RDP before computing the
trajectory *complexity* feature and before storing the compact route model
in the tracking database.  The implementation works on geographic points by
projecting them into a local planar frame first, so the tolerance is
expressed in meters.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.errors import GeometryError
from repro.geo.point import GeoPoint
from repro.geo.projection import LocalProjection, point_segment_distance_m


def _rdp_xy(points: Sequence[Tuple[float, float]], tolerance_m: float) -> List[int]:
    """Iterative RDP on planar points, returning kept indices (sorted)."""
    n = len(points)
    if n <= 2:
        return list(range(n))
    keep = [False] * n
    keep[0] = True
    keep[n - 1] = True
    # Explicit stack instead of recursion: GPS traces can be tens of
    # thousands of fixes long and Python's recursion limit is shallow.
    stack: List[Tuple[int, int]] = [(0, n - 1)]
    while stack:
        start, end = stack.pop()
        if end <= start + 1:
            continue
        max_distance = -1.0
        max_index = start
        for index in range(start + 1, end):
            distance = point_segment_distance_m(points[index], points[start], points[end])
            if distance > max_distance:
                max_distance = distance
                max_index = index
        if max_distance > tolerance_m:
            keep[max_index] = True
            stack.append((start, max_index))
            stack.append((max_index, end))
    return [index for index, kept in enumerate(keep) if kept]


def rdp_indices(points: Sequence[GeoPoint], tolerance_m: float) -> List[int]:
    """Indices of the points kept by RDP with a tolerance in meters."""
    if tolerance_m < 0:
        raise GeometryError(f"tolerance_m must be >= 0, got {tolerance_m}")
    if len(points) == 0:
        return []
    projection = LocalProjection(points[0])
    planar = projection.project_all(points)
    return _rdp_xy(planar, tolerance_m)


def rdp_simplify(points: Sequence[GeoPoint], tolerance_m: float) -> List[GeoPoint]:
    """Return the simplified polyline (subset of the input points, in order)."""
    return [points[index] for index in rdp_indices(points, tolerance_m)]


def compression_ratio(original_count: int, simplified_count: int) -> float:
    """Fraction of points removed by simplification (0 = none, 1 = all)."""
    if original_count <= 0:
        raise GeometryError("original_count must be positive")
    if simplified_count < 0 or simplified_count > original_count:
        raise GeometryError("simplified_count must be in [0, original_count]")
    return 1.0 - (simplified_count / original_count)

"""Polylines (ordered point sequences) with length, interpolation and sampling."""

from __future__ import annotations

from bisect import bisect_right
from typing import Iterator, List, Optional, Sequence

from repro.errors import GeometryError
from repro.geo.bbox import BoundingBox
from repro.geo.geodesy import haversine_m, initial_bearing_deg
from repro.geo.point import GeoPoint


class Polyline:
    """An immutable ordered sequence of geographic points.

    Used to represent route geometries on the road network and planned
    driving paths handed to the proactive recommender.
    """

    def __init__(self, points: Sequence[GeoPoint]) -> None:
        if len(points) < 1:
            raise GeometryError("a polyline requires at least one point")
        self._points: List[GeoPoint] = list(points)
        self._cumulative: List[float] = [0.0]
        for previous, current in zip(self._points, self._points[1:]):
            self._cumulative.append(self._cumulative[-1] + haversine_m(previous, current))

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[GeoPoint]:
        return iter(self._points)

    def __getitem__(self, index: int) -> GeoPoint:
        return self._points[index]

    @property
    def points(self) -> List[GeoPoint]:
        """A copy of the underlying points."""
        return list(self._points)

    @property
    def length_m(self) -> float:
        """Total length along the polyline in meters."""
        return self._cumulative[-1]

    @property
    def start(self) -> GeoPoint:
        """First point."""
        return self._points[0]

    @property
    def end(self) -> GeoPoint:
        """Last point."""
        return self._points[-1]

    def bounding_box(self) -> BoundingBox:
        """Smallest box containing the polyline."""
        return BoundingBox.from_points(self._points)

    def distance_along(self, index: int) -> float:
        """Cumulative distance from the start to the point at ``index``."""
        return self._cumulative[index]

    def point_at_distance(self, distance_m: float) -> GeoPoint:
        """Interpolated point at a given distance from the start.

        Distances are clamped to ``[0, length_m]``.
        """
        if len(self._points) == 1 or self.length_m == 0.0:
            return self._points[0]
        distance = max(0.0, min(self.length_m, distance_m))
        # O(log n) lookup in the cumulative arc-length table.
        low = bisect_right(self._cumulative, distance) - 1
        low = max(0, min(low, len(self._cumulative) - 2))
        high = low + 1
        segment_start = self._points[low]
        segment_end = self._points[high]
        segment_length = self._cumulative[high] - self._cumulative[low]
        if segment_length == 0.0:
            return segment_start
        fraction = (distance - self._cumulative[low]) / segment_length
        lat = segment_start.lat + fraction * (segment_end.lat - segment_start.lat)
        lon = segment_start.lon + fraction * (segment_end.lon - segment_start.lon)
        return GeoPoint(lat, lon)

    def sample_points(self, count: int) -> List[GeoPoint]:
        """``count`` points evenly spaced in arc length from start to end.

        Materializes the sampled route once so callers scoring many
        candidates against the same route do not re-interpolate it per
        candidate.  The points are exactly those that repeated
        ``point_at_distance(i / (count - 1) * length_m)`` calls would yield.
        """
        if count < 1:
            raise GeometryError(f"count must be >= 1, got {count}")
        if count == 1 or len(self._points) == 1 or self.length_m == 0.0:
            return [self._points[0]]
        return [
            self.point_at_distance(index / (count - 1) * self.length_m)
            for index in range(count)
        ]

    def resample(self, spacing_m: float) -> "Polyline":
        """Return a polyline with points every ``spacing_m`` along the path."""
        if spacing_m <= 0:
            raise GeometryError(f"spacing_m must be > 0, got {spacing_m}")
        if self.length_m == 0.0:
            return Polyline([self._points[0]])
        samples: List[GeoPoint] = []
        distance = 0.0
        while distance < self.length_m:
            samples.append(self.point_at_distance(distance))
            distance += spacing_m
        samples.append(self.end)
        return Polyline(samples)

    def nearest_point_index(self, target: GeoPoint) -> int:
        """Index of the vertex closest to ``target``."""
        best_index = 0
        best_distance = float("inf")
        for index, point in enumerate(self._points):
            distance = haversine_m(point, target)
            if distance < best_distance:
                best_distance = distance
                best_index = index
        return best_index

    def distance_to_point_m(self, target: GeoPoint) -> float:
        """Distance from ``target`` to the nearest vertex (vertex-level accuracy)."""
        index = self.nearest_point_index(target)
        return haversine_m(self._points[index], target)

    def heading_at_distance(self, distance_m: float) -> Optional[float]:
        """Bearing of travel at the given distance, or None for a single point."""
        if len(self._points) < 2 or self.length_m == 0.0:
            return None
        before = self.point_at_distance(max(0.0, distance_m - 1.0))
        after = self.point_at_distance(min(self.length_m, distance_m + 1.0))
        if before == after:
            return None
        return initial_bearing_deg(before, after)

    def reversed(self) -> "Polyline":
        """The same geometry traversed in the opposite direction."""
        return Polyline(list(reversed(self._points)))

    def concat(self, other: "Polyline") -> "Polyline":
        """Concatenate two polylines (dropping a duplicated join point)."""
        points = list(self._points)
        other_points = other.points
        if points and other_points and points[-1] == other_points[0]:
            other_points = other_points[1:]
        return Polyline(points + other_points)

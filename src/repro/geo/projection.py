"""Local tangent-plane projection.

Trajectory geometry (RDP simplification, point-to-segment distances,
complexity analysis) is much simpler in a planar metric frame.
:class:`LocalProjection` maps latitude/longitude to local east/north meters
around a reference point using the equirectangular approximation, which is
accurate to well under a meter over a metropolitan area.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Tuple

from repro.errors import GeometryError
from repro.geo.geodesy import EARTH_RADIUS_M
from repro.geo.point import GeoPoint


class LocalProjection:
    """Equirectangular projection centred on a reference point."""

    def __init__(self, reference: GeoPoint) -> None:
        self._reference = reference
        self._cos_lat = math.cos(math.radians(reference.lat))
        if self._cos_lat <= 1e-6:
            raise GeometryError(
                "LocalProjection reference too close to a pole for a planar frame"
            )

    @property
    def reference(self) -> GeoPoint:
        """The origin of the local frame."""
        return self._reference

    def to_xy(self, point: GeoPoint) -> Tuple[float, float]:
        """Project a point to ``(east_m, north_m)`` relative to the reference."""
        x = (
            math.radians(point.lon - self._reference.lon)
            * self._cos_lat
            * EARTH_RADIUS_M
        )
        y = math.radians(point.lat - self._reference.lat) * EARTH_RADIUS_M
        return (x, y)

    def to_point(self, x: float, y: float) -> GeoPoint:
        """Inverse projection from local meters back to latitude/longitude."""
        lat = self._reference.lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self._reference.lon + math.degrees(x / (EARTH_RADIUS_M * self._cos_lat))
        return GeoPoint(lat, lon)

    def project_all(self, points: Iterable[GeoPoint]) -> List[Tuple[float, float]]:
        """Project a sequence of points."""
        return [self.to_xy(point) for point in points]


def point_segment_distance_m(
    point: Tuple[float, float],
    start: Tuple[float, float],
    end: Tuple[float, float],
) -> float:
    """Distance from ``point`` to segment ``start``–``end`` in local meters."""
    px, py = point
    sx, sy = start
    ex, ey = end
    dx = ex - sx
    dy = ey - sy
    length_sq = dx * dx + dy * dy
    if length_sq == 0.0:
        return math.hypot(px - sx, py - sy)
    t = ((px - sx) * dx + (py - sy) * dy) / length_sq
    t = max(0.0, min(1.0, t))
    closest_x = sx + t * dx
    closest_y = sy + t * dy
    return math.hypot(px - closest_x, py - closest_y)

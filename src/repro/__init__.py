"""PPHCR — Proactive Personalized Hybrid Content Radio.

A from-scratch reproduction of *"Context-Aware Proactive Personalization of
Linear Audio Content"* (Casagranda, Sapino, Candan — EDBT 2017): a platform
that enriches linear broadcast radio by proactively replacing parts of the
live audio with context-relevant clips, driven by the listener's location,
trajectory, predicted destination and travel time, and learned content
preferences.

The public API is organised by subsystem (see ``DESIGN.md`` for the full
inventory); the names re-exported here are the ones most applications need:

* build a synthetic world and server: :func:`repro.datasets.build_world`,
  :class:`repro.pipeline.PphcrServer`, :class:`repro.pipeline.PublicApi`;
* run the paper's scenarios: :mod:`repro.simulation`;
* use the recommender directly: :mod:`repro.recommender`.
"""

from repro.datasets import WorldConfig, build_world
from repro.errors import ReproError
from repro.pipeline import PphcrServer, PublicApi, ServerConfig
from repro.recommender import (
    CompoundScorer,
    ListenerContext,
    ProactiveEngine,
    RecommendationPlan,
    Scheduler,
)
from repro.simulation import (
    PersonalizationStrategy,
    SimulationRunner,
    run_manual_skip_scenario,
    run_proactive_commute_scenario,
)

__version__ = "1.0.0"

__all__ = [
    "CompoundScorer",
    "ListenerContext",
    "PersonalizationStrategy",
    "PphcrServer",
    "ProactiveEngine",
    "PublicApi",
    "RecommendationPlan",
    "ReproError",
    "Scheduler",
    "ServerConfig",
    "SimulationRunner",
    "WorldConfig",
    "build_world",
    "run_manual_skip_scenario",
    "run_proactive_commute_scenario",
    "__version__",
]
